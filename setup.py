"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e . --no-use-pep517``) work in
offline environments that lack the ``wheel`` package required by PEP 660
editable builds.
"""

from setuptools import setup

setup()
