"""Setuptools configuration.

Kept as ``setup.py`` (rather than ``pyproject.toml``) so legacy editable
installs (``pip install -e . --no-use-pep517``) work in offline
environments that lack the ``wheel`` package required by PEP 660 editable
builds.  The console scripts mirror the ``python -m`` entry points:

* ``repro-serve`` → :mod:`repro.serve.http.cli`
* ``repro-fleet`` → :mod:`repro.serve.fleet.cli`
* ``repro-lint``  → :mod:`repro.devtools.cli`
* ``repro-trace`` → :mod:`repro.obs.render`
"""

from setuptools import find_packages, setup

setup(
    name="repro-cfd",
    version="0.8.0",
    description=(
        "Reproduction of conditional functional dependency discovery "
        "(CFDMiner / CTANE / FastCFD) with a serving and tooling stack"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serve.http.cli:main",
            "repro-fleet=repro.serve.fleet.cli:main",
            "repro-lint=repro.devtools.cli:main",
            "repro-trace=repro.obs.render:main",
        ]
    },
)
