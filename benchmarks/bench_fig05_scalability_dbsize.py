"""Fig. 5: scalability w.r.t. DBSIZE (Tax, ARITY 7, CF 0.7).

Paper: DBSIZE 20K-1M, SUP 0.1 %, five curves (CFDMiner, CFDMiner(2), CTANE,
NaiveFast, FastCFD).  Here: scaled-down DBSIZE sweep, same five curves.
Expected shape: CFDMiner orders of magnitude faster than the general
algorithms; NaiveFast competitive at small sizes but degrading fastest;
FastCFD ahead of NaiveFast throughout.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig05_runtime_vs_dbsize(benchmark):
    result = benchmark.pedantic(figures.figure5, rounds=1, iterations=1)
    record_result(result)

    def total(algorithm):
        return sum(seconds for _, seconds in result.series(algorithm, "dbsize"))

    # Shape check 1: CFDMiner is far faster than every general algorithm.
    assert total("cfdminer") * 5 < min(total("ctane"), total("fastcfd"), total("naivefast"))
    # Shape check 2: the closed-item-set provider beats the pairwise provider.
    assert total("fastcfd") < total("naivefast")
    # Shape check 3: NaiveFast degrades faster than FastCFD as DBSIZE grows.
    naive = dict(result.series("naivefast", "dbsize"))
    fast = dict(result.series("fastcfd", "dbsize"))
    largest = max(naive)
    smallest = min(naive)
    assert naive[largest] / max(naive[smallest], 1e-9) > fast[largest] / max(
        fast[smallest], 1e-9
    ) * 0.8
