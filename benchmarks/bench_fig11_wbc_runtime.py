"""Fig. 11: Wisconsin breast cancer — response time versus k (CTANE, FastCFD).

Paper: on the real WBC data (699 x 11) CTANE is sensitive to k and improves
as k grows; FastCFD is less sensitive.  The WBC stand-in has the same shape
and cardinalities (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig11_wbc_runtime_vs_k(benchmark):
    result = benchmark.pedantic(figures.figure11, rounds=1, iterations=1)
    record_result(result)

    ctane = dict(result.series("ctane", "k"))
    fastcfd = dict(result.series("fastcfd", "k"))
    low, high = min(ctane), max(ctane)
    assert ctane[high] < ctane[low]          # CTANE improves with k
    assert set(fastcfd) == set(ctane)        # both algorithms ran every k
