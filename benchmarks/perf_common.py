"""Shared plumbing for the tracked perf-benchmark suite.

The figure benchmarks (``bench_fig*.py``) regenerate the paper's evaluation
through pytest-benchmark; this module instead backs the *tracked* suite
(``bench_perf_suite.py``) that every PR runs to keep a performance
trajectory: plain ``perf_counter`` timings, a machine fingerprint, and the
single JSON document written to ``BENCH_perf.json`` at the repository root.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.datagen import generate_tax
from repro.relational.relation import Relation

#: Repository root — BENCH_perf.json lives here so the trajectory is visible.
REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"


def time_best(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def tax_relation(db_size: int, arity: int = 7, cf: float = 0.7, seed: int = 3) -> Relation:
    """The paper's synthetic Tax/cust relation (deterministic per seed)."""
    return generate_tax(db_size, arity=arity, cf=cf, seed=seed)


def machine_info() -> Dict[str, str]:
    """Fingerprint of the interpreter/host the numbers were taken on."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
    }


def write_report(document: Dict, output: Path) -> None:
    """Write the benchmark document as stable, diff-friendly JSON."""
    output.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")


def render_rows(rows: List[Dict], columns: List[str]) -> str:
    """A minimal fixed-width text table (printed to the console log)."""
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


__all__ = [
    "REPO_ROOT",
    "DEFAULT_OUTPUT",
    "time_best",
    "tax_relation",
    "machine_info",
    "write_report",
    "render_rows",
]
