"""Ablation E-A1: closed-item-set difference sets vs pairwise difference sets.

The paper attributes a 5-10x speed-up of FastCFD over NaiveFast to deriving
difference sets from 2-frequent closed item sets (Section 5.5 / Section 6.3
point 4).  Both variants must produce the same canonical cover.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_ablation_closed_set_difference_sets(benchmark):
    result = benchmark.pedantic(figures.ablation_closed_sets, rounds=1, iterations=1)
    record_result(result)

    naive = dict(result.series("naivefast", "dbsize"))
    fast = dict(result.series("fastcfd", "dbsize"))
    largest = max(naive)
    # The optimisation pays off, and increasingly so at larger sizes.
    assert fast[largest] < naive[largest]
    # Identical covers: same CFD counts per size.
    naive_counts = dict(result.series("naivefast", "dbsize", y_key="cfds"))
    fast_counts = dict(result.series("fastcfd", "dbsize", y_key="cfds"))
    assert naive_counts == fast_counts
