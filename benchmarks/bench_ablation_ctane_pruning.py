"""Ablation E-A2: CTANE's empty-C+ element pruning.

Lemma 2 of the paper makes the C+ sets both a minimality test and a pruning
device (empty-C+ elements cannot contribute minimal CFDs and are removed from
the level).  Disabling the pruning must keep the output identical while
exploring at least as many lattice elements.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_ablation_ctane_cplus_pruning(benchmark):
    result = benchmark.pedantic(figures.ablation_ctane_pruning, rounds=1, iterations=1)
    record_result(result)

    by_size = {}
    for run in result.runs:
        by_size.setdefault(run.parameters["dbsize"], {})[run.algorithm] = run
    for size, runs in by_size.items():
        with_pruning = runs["ctane"]
        without_pruning = runs["ctane(no-pruning)"]
        # Same canonical cover.
        assert with_pruning.n_cfds == without_pruning.n_cfds
        # Pruning never makes CTANE slower by more than noise.
        assert with_pruning.seconds <= without_pruning.seconds * 1.5
