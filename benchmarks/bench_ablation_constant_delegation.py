"""Ablation E-A3: FastCFD constant-CFD handling (CFDMiner delegation vs inline).

Section 5.5 of the paper recommends delegating constant CFD discovery to
CFDMiner and reusing its closed item sets; the alternative discovers constant
CFDs inline through FindMin's base case (a).  Both configurations must produce
the same cover; the benchmark records their relative cost.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_ablation_constant_cfd_delegation(benchmark):
    result = benchmark.pedantic(
        figures.ablation_constant_delegation, rounds=1, iterations=1
    )
    record_result(result)

    delegated = dict(result.series("fastcfd(cfdminer)", "dbsize", y_key="cfds"))
    inline = dict(result.series("fastcfd(inline)", "dbsize", y_key="cfds"))
    assert delegated == inline
    delegated_constant = dict(
        result.series("fastcfd(cfdminer)", "dbsize", y_key="constant")
    )
    inline_constant = dict(result.series("fastcfd(inline)", "dbsize", y_key="constant"))
    assert delegated_constant == inline_constant
