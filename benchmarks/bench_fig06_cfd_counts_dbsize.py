"""Fig. 6: number of constant/variable CFDs found w.r.t. DBSIZE (Tax).

Paper: counts of constant and variable CFDs for the Fig. 5 sweep (all general
algorithms find about the same number).  Expected shape: non-trivial numbers
of both classes at every size.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig06_cfd_counts_vs_dbsize(benchmark):
    result = benchmark.pedantic(figures.figure6, rounds=1, iterations=1)
    record_result(result)
    for run in result.runs:
        assert run.n_cfds == run.n_constant + run.n_variable
        assert run.n_constant > 0
        assert run.n_variable > 0
