"""Table 1 (Section 6.1): the experiment data sets and their shapes.

Regenerates the data-set parameter table (name, number of tuples, arity,
per-attribute domain sizes) for the three workloads of the evaluation and
times how long materialising each data set takes.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments.datasets import dataset_registry
from repro.experiments.reporting import format_table
from repro.experiments.runner import AlgorithmRun, ExperimentResult


def _build_table() -> ExperimentResult:
    result = ExperimentResult(
        figure="table1", description="data sets used in the evaluation (Table 1)"
    )
    for spec in dataset_registry().values():
        relation = spec.load()
        result.add(
            AlgorithmRun(
                figure="table1",
                algorithm=spec.name,
                parameters={
                    "paper_size": spec.paper_size,
                    "paper_arity": spec.paper_arity,
                    "our_size": relation.n_rows,
                    "our_arity": relation.arity,
                    "max_domain": max(relation.domain_sizes().values()),
                },
                seconds=0.0,
                n_cfds=0,
                n_constant=0,
                n_variable=0,
            )
        )
    return result


def test_table1_dataset_registry(benchmark):
    """Materialise every registered data set once and record its shape."""
    result = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    record_result(result)
    assert {run.algorithm for run in result.runs} == {"wbc", "chess", "tax"}
    for run in result.runs:
        assert run.parameters["our_size"] > 0
        assert run.parameters["our_arity"] == run.parameters["paper_arity"]
