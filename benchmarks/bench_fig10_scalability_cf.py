"""Fig. 10: scalability w.r.t. the correlation factor CF (Tax).

Paper: CF 0.3-0.7 at DBSIZE 50K, k 50, ARITY 9; smaller CF means smaller
active domains, hence more frequent item sets, which hurts CTANE far more
than the depth-first algorithms.  Expected shape: CTANE's runtime increases
as CF decreases, and the increase is steeper than FastCFD's.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig10_runtime_vs_cf(benchmark):
    result = benchmark.pedantic(figures.figure10, rounds=1, iterations=1)
    record_result(result)

    ctane = dict(result.series("ctane", "cf"))
    fastcfd = dict(result.series("fastcfd", "cf"))
    low_cf, high_cf = min(ctane), max(ctane)
    # CTANE suffers when CF shrinks (more frequent patterns).
    assert ctane[low_cf] > ctane[high_cf]
    # And it suffers more than FastCFD does.
    ctane_ratio = ctane[low_cf] / max(ctane[high_cf], 1e-9)
    fastcfd_ratio = fastcfd[low_cf] / max(fastcfd[high_cf], 1e-9)
    assert ctane_ratio > fastcfd_ratio * 0.9
