"""The tracked perf-benchmark suite → ``BENCH_perf.json`` at the repo root.

Ten sections, re-measured on every run so the numbers never rot:

1. **Partition microbenchmarks** — construction of the single-attribute
   partitions and a full product chain across the schema, timed for the
   label-array substrate (:mod:`repro.relational.partition`) *and* for the
   original tuple-of-tuples implementation
   (:mod:`repro.relational._reference`).  The reported speedup is the
   substrate's improvement over the reference, i.e. over the pre-change
   baseline.
2. **CTANE partition ablation** — end-to-end CTANE with incremental pattern
   partitions (the default) against ``incremental_partitions=False`` (the
   pre-change per-candidate matrix re-scans), at a fixed support.
3. **End-to-end discovery** — CFDMiner, CTANE and FastCFD on generated Tax
   data across a support sweep, the trajectory future PRs compare against.
4. **Serving throughput** — a mixed batch of requests (two algorithms × a
   support sweep) pushed through :class:`repro.serve.DiscoveryService` with
   a pooled session, reported as requests/sec against the same batch run
   sequentially one-shot (no session, no pool) — the serving layer's
   cache-reuse win.
5. **Persistence** — the CTANE end-to-end configuration served cold versus
   warm-started from a :class:`repro.serve.CacheStore` dumped by a previous
   session (fresh ``Profiler`` + store load + run, i.e. exactly what a
   restarted worker pays), plus the store's entry count and on-disk size;
   the cover must round-trip byte-identically.
6. **HTTP serving** — the ``repro-serve`` stack on a real ephemeral-port
   socket: steady-state requests/sec through upload → discover, and the
   first-request latency of a cold server versus one restarted over a
   ``--cache-dir`` store seeded by a previous server's graceful drain.
7. **Fleet serving** — two store-sharing workers behind the ``repro-fleet``
   router: the same warm request timed direct against the ring owner and
   through the router (the forwarding overhead, asserted ≤ 30% in CI), and
   the recovery latency of killing the owner mid-traffic (mark-dead → ring
   successor → cached-upload replay → warm-start), which must reproduce the
   owner's cover byte-identically.
8. **Fault recovery** — time-to-result after a mid-lattice crash:
   checkpointed resume (fresh ``Profiler`` over the store holding the
   crashed run's last durable level frontier) against a cold restart from
   scratch — both sides store-attached, so both pay the per-level
   checkpoint persistence a production worker pays — byte-identical covers
   required; plus the fault-free cost of the injection hooks themselves —
   an armed :class:`repro.serve.FaultPlan` whose rules match no injection
   point versus no plan at all, asserted ≤ 2% overhead in CI.
9. **Wide relations** — the schema-width axis the walk engine opened: on a
   seeded :mod:`repro.datagen.wide` relation at CTANE-feasible arity every
   wide-capable engine (CTANE, FastCFD, ``dfd``) is timed and their covers
   asserted identical (the oracle criterion, gated in CI); at 120 columns —
   far beyond CTANE's declared ``max_auto_arity`` of 17, so its levelwise
   sweep is recorded as not-attempted (``None``) rather than timed — the
   random-walk ``dfd`` engine completes in seconds, with its walk counters
   (partitions computed, restarts) recorded alongside the runtime.
10. **Tracing overhead** — the cost of the :mod:`repro.obs` instrumentation
    when it records nothing: a fully-disabled tracer against an enabled
    tracer at ``sample_rate=0`` (every ``start_span`` site pays the check
    and takes the shared no-op fast path), interleaved back-to-back pairs
    through the most span-dense path (CTANE with its per-level spans),
    overhead taken as the median per-pair ratio and asserted ≤ 2% in CI.

Run ``python benchmarks/bench_perf_suite.py`` for the tracked numbers or
``--smoke`` for the tiny CI configuration (same shape, toy sizes).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_common import (
    DEFAULT_OUTPUT,
    machine_info,
    render_rows,
    tax_relation,
    time_best,
    write_report,
)
from repro.api import DiscoveryRequest, execute
from repro.core.cfdminer import CFDMiner
from repro.core.ctane import CTane
from repro.core.fastcfd import FastCFD
from repro.relational._reference import reference_attribute_partition
from repro.relational.partition import attribute_partition
from repro.serve import DiscoveryService, SessionPool


# ---------------------------------------------------------------------- #
# section 1: partition microbenchmarks
# ---------------------------------------------------------------------- #
def bench_partitions(db_size: int, arity: int, repeats: int) -> dict:
    relation = tax_relation(db_size, arity=arity, seed=7)
    matrix = relation.encoded_matrix()

    def construct_labels():
        return [attribute_partition(matrix, [a]) for a in range(arity)]

    def construct_reference():
        return [reference_attribute_partition(matrix, [a]) for a in range(arity)]

    label_singles = construct_labels()
    reference_singles = construct_reference()

    def chain(singles):
        def run():
            partition = singles[0]
            for other in singles[1:]:
                partition = partition.product(other)
            return partition

        return run

    construct = {
        "label_array_s": time_best(construct_labels, repeats),
        "reference_s": time_best(construct_reference, repeats),
    }
    construct["speedup"] = construct["reference_s"] / construct["label_array_s"]
    product = {
        "label_array_s": time_best(chain(label_singles), repeats),
        "reference_s": time_best(chain(reference_singles), repeats),
    }
    product["speedup"] = product["reference_s"] / product["label_array_s"]
    return {
        "rows": db_size,
        "arity": arity,
        "partition_construct": construct,
        "partition_product_chain": product,
    }


# ---------------------------------------------------------------------- #
# section 2: CTANE incremental-partition ablation
# ---------------------------------------------------------------------- #
def bench_ctane_ablation(db_size: int, support: int, repeats: int) -> dict:
    relation = tax_relation(db_size, seed=3)
    incremental = time_best(
        lambda: CTane(relation, support).discover(), repeats
    )
    legacy = time_best(
        lambda: CTane(relation, support, incremental_partitions=False).discover(),
        repeats,
    )
    n_cfds = len(CTane(relation, support).discover())
    return {
        "db_size": db_size,
        "support": support,
        "incremental_s": incremental,
        "legacy_s": legacy,
        "speedup": legacy / incremental,
        "n_cfds": n_cfds,
    }


# ---------------------------------------------------------------------- #
# section 3: end-to-end discovery across supports
# ---------------------------------------------------------------------- #
def bench_end_to_end(db_size: int, supports: list, repeats: int) -> list:
    relation = tax_relation(db_size, seed=3)
    engines = {
        "cfdminer": lambda k: CFDMiner(relation, k).discover(),
        "ctane": lambda k: CTane(relation, k).discover(),
        "fastcfd": lambda k: FastCFD(relation, k).discover(),
    }
    rows = []
    for support in supports:
        for name, run in engines.items():
            seconds = time_best(lambda: run(support), repeats)
            rows.append(
                {
                    "algorithm": name,
                    "db_size": db_size,
                    "support": support,
                    "seconds": seconds,
                    "n_cfds": len(run(support)),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# section 4: serving throughput through the session pool
# ---------------------------------------------------------------------- #
def bench_serving(db_size: int, supports: list, workers: int, repeats: int) -> dict:
    relation = tax_relation(db_size, seed=3)
    requests = [
        DiscoveryRequest(min_support=support, algorithm=algorithm)
        for support in supports
        for algorithm in ("cfdminer", "fastcfd")
    ]

    def concurrent():
        with DiscoveryService(
            pool=SessionPool(max_sessions=4), max_workers=workers
        ) as service:
            service.run_batch([(relation, request) for request in requests])

    def sequential():
        for request in requests:
            execute(relation, request)

    concurrent_s = time_best(concurrent, repeats)
    sequential_s = time_best(sequential, repeats)
    return {
        "db_size": db_size,
        "workers": workers,
        "n_requests": len(requests),
        "concurrent_s": concurrent_s,
        "sequential_oneshot_s": sequential_s,
        "requests_per_second": round(len(requests) / concurrent_s, 2),
        "speedup": sequential_s / concurrent_s,
    }


# ---------------------------------------------------------------------- #
# section 5: persistence — cold vs store-loaded warm start
# ---------------------------------------------------------------------- #
def bench_persistence(db_size: int, support: int, repeats: int) -> dict:
    """Cold vs warm-start wall time of the CTANE end-to-end configuration.

    The warm timing includes *everything* a restarted worker pays: creating
    a fresh ``Profiler``, loading the store entries, and serving the run —
    against a cold run that builds every structure from scratch.  The cover
    must round-trip byte-identically through the store.
    """
    import json as json_mod
    import tempfile

    from repro.api import Profiler
    from repro.serve import CacheStore

    relation = tax_relation(db_size, seed=3)
    relation.encoded_matrix()
    relation.fingerprint()
    request = DiscoveryRequest(min_support=support, algorithm="ctane")

    def cold():
        return Profiler(relation).run(request)

    cold_s = time_best(cold, repeats)
    cold_result = cold()

    with tempfile.TemporaryDirectory() as tmp:
        store = CacheStore(tmp)
        seeder = Profiler(relation)
        seeder.run(request)
        entries = seeder.dump_caches(store)
        store_bytes = store.size_bytes()

        warm_results = []

        def warm():
            profiler = Profiler(relation)
            profiler.warm_from(store)
            warm_results.append(profiler.run(request))

        warm_s = time_best(warm, repeats)

    cold_rules = json_mod.dumps(cold_result.to_json_dict()["rules"])
    warm_rules = json_mod.dumps(warm_results[-1].to_json_dict()["rules"])
    return {
        "db_size": db_size,
        "support": support,
        "algorithm": "ctane",
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "store_entries": entries,
        "store_bytes": store_bytes,
        "byte_identical_output": cold_rules == warm_rules,
    }


# ---------------------------------------------------------------------- #
# section 6: HTTP serving — requests/sec over a real socket, warm vs cold
# ---------------------------------------------------------------------- #
def bench_http_serving(
    db_size: int, support: int, n_requests: int, workers: int = 4
) -> dict:
    """Throughput and first-request latency of the ``repro-serve`` stack.

    Three servers on real ephemeral-port sockets, talked to via
    ``http.client`` (upload CSV → discover):

    * **cold** — no store: the first ``POST /v1/discover`` pays the full
      engine build, then ``n_requests`` identical requests measure the
      steady-state requests/sec of the HTTP + session-pool path;
    * **seed** — a store-backed server serves one discovery and drains,
      spilling its warmed session into the cache store (the production
      shutdown path);
    * **warm** — a *restarted* store-backed server: its first request
      warm-starts from the store, which must beat the cold first request.
    """
    import http.client
    import json as json_mod
    import tempfile
    from pathlib import Path as PathLib

    from repro.relational.io import write_csv
    from repro.serve import CacheStore, DiscoveryService, SessionPool
    from repro.serve.http import ServerConfig, ServerThread

    relation = tax_relation(db_size, seed=3)
    discover_body = json_mod.dumps(
        {"relation": "tax", "support": support, "algorithm": "ctane"}
    ).encode()

    def exchange(connection, method, path, body=None, content_type=None):
        headers = {"Content-Type": content_type} if content_type else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        payload = response.read()
        assert response.status in (200, 201), (response.status, payload[:200])
        return payload

    def boot(store_dir=None):
        store = CacheStore(store_dir) if store_dir is not None else None
        service = DiscoveryService(
            pool=SessionPool(store=store), max_workers=workers
        )
        return ServerThread(service, ServerConfig(port=0, request_timeout=300))

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = PathLib(tmp) / "tax.csv"
        write_csv(relation, csv_path)
        csv_bytes = csv_path.read_bytes()
        store_dir = PathLib(tmp) / "store"

        with boot() as server:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=300
            )
            exchange(
                connection, "POST", "/v1/relations?name=tax",
                body=csv_bytes, content_type="text/csv",
            )
            started = time.perf_counter()
            exchange(
                connection, "POST", "/v1/discover",
                body=discover_body, content_type="application/json",
            )
            cold_first_s = time.perf_counter() - started
            started = time.perf_counter()
            for _ in range(n_requests):
                exchange(
                    connection, "POST", "/v1/discover",
                    body=discover_body, content_type="application/json",
                )
            steady_s = time.perf_counter() - started
            connection.close()

        # Seed the store through the production path: serve once, drain
        # (the graceful shutdown spills the warmed session to the store).
        with boot(store_dir) as server:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=300
            )
            exchange(
                connection, "POST", "/v1/relations?name=tax",
                body=csv_bytes, content_type="text/csv",
            )
            exchange(
                connection, "POST", "/v1/discover",
                body=discover_body, content_type="application/json",
            )
            connection.close()
        store_bytes = CacheStore(store_dir).size_bytes()

        # The restarted worker: first request warm-starts from the store.
        with boot(store_dir) as server:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=300
            )
            exchange(
                connection, "POST", "/v1/relations?name=tax",
                body=csv_bytes, content_type="text/csv",
            )
            started = time.perf_counter()
            exchange(
                connection, "POST", "/v1/discover",
                body=discover_body, content_type="application/json",
            )
            warm_first_s = time.perf_counter() - started
            connection.close()

    return {
        "db_size": db_size,
        "support": support,
        "algorithm": "ctane",
        "workers": workers,
        "n_requests": n_requests,
        "requests_per_second": round(n_requests / steady_s, 2),
        "steady_state_s": steady_s,
        "first_request_cold_s": cold_first_s,
        "first_request_warm_s": warm_first_s,
        "warm_speedup": cold_first_s / warm_first_s,
        "store_bytes": store_bytes,
    }


# ---------------------------------------------------------------------- #
# section 7: fleet serving — router overhead and failover recovery
# ---------------------------------------------------------------------- #
def bench_fleet_serving(
    db_size: int, support: int, n_requests: int, workers: int = 2
) -> dict:
    """The cost of the ``repro-fleet`` hop and the price of a failover.

    Two store-sharing workers behind one router, all on real sockets.  The
    same warm discover request is timed ``n_requests`` times straight
    against the ring owner and then through the router — the throughput
    delta is the router's forwarding overhead (CI asserts it stays under
    30%).  Then the owner is stopped mid-traffic and the next request
    through the router times the full failover: mark-dead, retry on the
    ring successor, replay the cached upload, warm-start from the shared
    store — and its rules payload must be byte-identical to the owner's.
    """
    import http.client
    import json as json_mod
    import tempfile
    from pathlib import Path as PathLib

    from repro.relational.io import write_csv
    from repro.serve import CacheStore, DiscoveryService, SessionPool
    from repro.serve.fleet import RouterConfig, RouterThread
    from repro.serve.http import ServerConfig, ServerThread

    relation = tax_relation(db_size, seed=3)
    discover_body = json_mod.dumps(
        {"relation": "tax", "support": support, "algorithm": "ctane"}
    ).encode()

    def exchange(connection, method, path, body=None, content_type=None):
        headers = {"Content-Type": content_type} if content_type else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        payload = response.read()
        assert response.status in (200, 201), (response.status, payload[:200])
        return payload

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = PathLib(tmp) / "tax.csv"
        write_csv(relation, csv_path)
        csv_bytes = csv_path.read_bytes()
        store_dir = PathLib(tmp) / "store"

        fleet = [
            ServerThread(
                DiscoveryService(
                    pool=SessionPool(store=CacheStore(store_dir)), max_workers=4
                ),
                ServerConfig(port=0, request_timeout=300),
            ).start()
            for _ in range(workers)
        ]
        router = RouterThread(RouterConfig(
            port=0,
            workers=[worker.address for worker in fleet],
            health_interval=0.5,
            request_timeout=300.0,
        )).start()
        try:
            via_router = http.client.HTTPConnection(
                router.host, router.port, timeout=300
            )
            exchange(
                via_router, "POST", "/v1/relations?name=tax",
                body=csv_bytes, content_type="text/csv",
            )
            baseline = json_mod.loads(exchange(
                via_router, "POST", "/v1/discover",
                body=discover_body, content_type="application/json",
            ))
            owner_url = router.router.ring.assign(
                router.router._resolve_key("tax")
            )
            owner = next(w for w in fleet if w.address == owner_url)
            direct = http.client.HTTPConnection(
                owner.host, owner.port, timeout=300
            )
            # Warm both paths past connection setup and first-hit effects.
            for _ in range(3):
                exchange(direct, "POST", "/v1/discover",
                         body=discover_body, content_type="application/json")
                exchange(via_router, "POST", "/v1/discover",
                         body=discover_body, content_type="application/json")

            started = time.perf_counter()
            for _ in range(n_requests):
                exchange(direct, "POST", "/v1/discover",
                         body=discover_body, content_type="application/json")
            direct_s = time.perf_counter() - started
            direct.close()

            started = time.perf_counter()
            for _ in range(n_requests):
                exchange(via_router, "POST", "/v1/discover",
                         body=discover_body, content_type="application/json")
            router_s = time.perf_counter() - started

            # Failover: stop the owner (graceful — it spills to the shared
            # store) and time the next request through the router.
            owner.stop()
            started = time.perf_counter()
            failed_over = json_mod.loads(exchange(
                via_router, "POST", "/v1/discover",
                body=discover_body, content_type="application/json",
            ))
            failover_recovery_s = time.perf_counter() - started
            via_router.close()

            identical = json_mod.dumps(
                failed_over["rules"], sort_keys=True
            ) == json_mod.dumps(baseline["rules"], sort_keys=True)
        finally:
            router.stop()
            for worker in fleet:
                worker.stop()

    return {
        "db_size": db_size,
        "support": support,
        "algorithm": "ctane",
        "workers": workers,
        "n_requests": n_requests,
        "requests_per_second_direct": round(n_requests / direct_s, 2),
        "requests_per_second_router": round(n_requests / router_s, 2),
        "router_overhead_pct": round((router_s - direct_s) / direct_s * 100, 1),
        "failover_recovery_s": failover_recovery_s,
        "failover_byte_identical": identical,
    }


# ---------------------------------------------------------------------- #
# section 8: fault recovery — checkpointed resume vs cold restart, and the
# fault-free cost of the injection hooks themselves
# ---------------------------------------------------------------------- #
def bench_fault_recovery(db_size: int, support: int, repeats: int) -> dict:
    """Time-to-result after a mid-lattice crash, resume vs cold restart.

    Each timed resume is seeded by an untimed crashed run: a victim
    ``Profiler`` armed with ``engine.level:error:after=1,times=1`` dies at
    the level-3 checkpoint, leaving the level frontier durable in a
    ``CacheStore``.  The resume timing is then everything a restarted
    worker pays — fresh ``Profiler``, ``attach_store``, run — against a
    cold restart that rebuilds the lattice from scratch.  Both sides run
    store-attached (a production worker always does), so both pay the
    per-level checkpoint persistence; the resume's win is the skipped
    level computation.  The resumed cover must match the cold cover
    byte-identically.

    The second half prices the hooks when nothing is injected: the same
    cold run with no plan versus with an armed plan whose rules match no
    injection point, interleaved best-of so CI can hold the overhead to
    ≤ 2% without flaking on scheduler noise.
    """
    import json as json_mod
    import tempfile

    from repro.api import Profiler
    from repro.serve import CacheStore, FaultPlan
    from repro.serve.faults import FaultInjected

    relation = tax_relation(db_size, seed=3)
    relation.encoded_matrix()
    relation.fingerprint()
    request = DiscoveryRequest(min_support=support, algorithm="ctane")

    resume_s = float("inf")
    resumed = None
    with tempfile.TemporaryDirectory() as tmp:
        cold_store = CacheStore(Path(tmp) / "cold")

        def cold():
            profiler = Profiler(relation)
            profiler.attach_store(cold_store)
            return profiler.run(request)

        cold_s = time_best(cold, repeats)
        cold_rules = json_mod.dumps(cold().to_json_dict()["rules"])

        store = CacheStore(Path(tmp) / "crash")
        for _ in range(max(1, repeats)):
            # Seed the crash (untimed): the victim dies mid-lattice but the
            # completed level frontier is already durable in the store.
            victim = Profiler(relation, faults=FaultPlan.from_specs(
                ["engine.level:error:after=1,times=1"], seed=7
            ))
            victim.attach_store(store)
            try:
                victim.run(request)
            except FaultInjected:
                pass
            survivor = Profiler(relation)
            survivor.attach_store(store)
            started = time.perf_counter()
            resumed = survivor.run(request)
            resume_s = min(resume_s, time.perf_counter() - started)
    resumed_rules = json_mod.dumps(resumed.to_json_dict()["rules"])

    # Hook overhead: an armed plan that never matches, against no plan at
    # all.  Interleaved back-to-back pairs, overhead taken as the median
    # of the per-pair ratios — the two runs of a pair share the machine's
    # load conditions, so slow load drift cancels out of each ratio where
    # it would poison a best-of or a pooled median.
    import statistics

    idle_plan = FaultPlan.from_specs(["no.such.point:error"], seed=7)
    baseline_times, armed_times, ratios = [], [], []
    for _ in range(max(7, repeats)):
        started = time.perf_counter()
        Profiler(relation).run(request)
        baseline_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        Profiler(relation, faults=idle_plan).run(request)
        armed_times.append(time.perf_counter() - started)
        ratios.append(armed_times[-1] / baseline_times[-1])
    assert not idle_plan.describe()["injected"], "idle plan must stay idle"
    baseline_s = min(baseline_times)
    armed_s = min(armed_times)
    hook_overhead_pct = round((statistics.median(ratios) - 1.0) * 100, 2)

    return {
        "db_size": db_size,
        "support": support,
        "algorithm": "ctane",
        "cold_restart_s": cold_s,
        "resume_s": resume_s,
        "resume_speedup": cold_s / resume_s,
        "resumed_level": resumed.stats.extras["resumed_level"],
        "resume_levels_skipped": resumed.stats.extras["resume_levels_skipped"],
        "byte_identical_output": resumed_rules == cold_rules,
        "hook_baseline_s": baseline_s,
        "hook_armed_s": armed_s,
        "hook_overhead_pct": hook_overhead_pct,
    }


# ---------------------------------------------------------------------- #
# ---------------------------------------------------------------------- #
# section 9: wide relations (the dfd walk engine's scenario class)
# ---------------------------------------------------------------------- #
def bench_wide_relations(narrow_cols: int, wide_cols: int, n_rows: int,
                         wide_cfds: int, repeats: int) -> dict:
    """Schema-wide profiling: the walk engine against the levelwise sweep.

    Two seeded :class:`~repro.datagen.wide.WideRelationGenerator` relations
    with embedded FDs/CFDs at the generator's derived support threshold:

    * at ``narrow_cols`` (CTANE-feasible) every wide-capable engine runs and
      the covers must match rule for rule — the oracle criterion;
    * at ``wide_cols`` CTANE's levelwise lattice is infeasible (the paper
      reports failure beyond arity 17; its ``max_auto_arity`` declares it,
      so ``auto`` never sends such a relation there) — recorded as ``None``
      rather than timed — while ``dfd`` and FastCFD complete; ``dfd`` is
      the engine whose runtime scales with the dependency boundary.
    """
    from repro.core.dfd import DFD
    from repro.datagen.wide import WideRelationGenerator

    def canonical(cfds):
        return sorted(repr(cfd) for cfd in cfds)

    narrow_gen = WideRelationGenerator(
        n_cols=narrow_cols, n_rows=n_rows, seed=0, n_fds=3, n_cfds=2
    )
    narrow = narrow_gen.generate()
    narrow_k = narrow_gen.min_support
    ctane_s = time_best(
        lambda: CTane(narrow, narrow_k).discover(), repeats
    )
    fastcfd_narrow_s = time_best(
        lambda: FastCFD(narrow, narrow_k).discover(), repeats
    )
    dfd_narrow_s = time_best(
        lambda: DFD(narrow, narrow_k, seed=0).discover(), repeats
    )
    ctane_cover = canonical(CTane(narrow, narrow_k).discover())
    dfd_cover = canonical(DFD(narrow, narrow_k, seed=0).discover())
    fastcfd_cover = canonical(FastCFD(narrow, narrow_k).discover())

    wide_gen = WideRelationGenerator(
        n_cols=wide_cols, n_rows=n_rows, seed=0, n_fds=4, n_cfds=wide_cfds
    )
    wide = wide_gen.generate()
    wide_k = wide_gen.min_support
    wide_engine = DFD(wide, wide_k, seed=0)
    started = time.perf_counter()
    wide_cover = wide_engine.discover()
    dfd_wide_s = time.perf_counter() - started

    return {
        "rows": n_rows,
        "narrow": {
            "arity": narrow_cols,
            "support": narrow_k,
            "ctane_s": ctane_s,
            "fastcfd_s": fastcfd_narrow_s,
            "dfd_s": dfd_narrow_s,
            "n_cfds": len(ctane_cover),
            "covers_match": ctane_cover == dfd_cover == fastcfd_cover,
        },
        "wide": {
            "arity": wide_cols,
            "support": wide_k,
            # Levelwise CTANE is infeasible at this arity (its declared
            # max_auto_arity is 17) — not attempted, recorded as None.
            "ctane_s": None,
            "dfd_s": dfd_wide_s,
            "dfd_n_cfds": len(wide_cover),
            "dfd_partitions_computed": wide_engine.partitions_computed,
            "dfd_restarts": wide_engine.restarts,
        },
    }


# ---------------------------------------------------------------------- #
# section 10: tracing overhead (the sampled-out no-op fast path)
# ---------------------------------------------------------------------- #
def bench_tracing_overhead(db_size: int, support: int, pairs: int) -> dict:
    """The cost of instrumentation that records nothing.

    Two process-global tracer states, interleaved back-to-back so machine
    load drift cancels out of each per-pair ratio (the same methodology as
    the idle-fault-hook overhead in section 8):

    * **untraced** — a disabled tracer: every ``start_*`` short-circuits on
      the ``enabled`` flag;
    * **sampled-out** — an enabled tracer at ``sample_rate=0``: the root
      roll fails, children find an unsampled context, and every site gets
      the shared :data:`~repro.obs.NOOP_SPAN` — the state a production
      worker is in for every unsampled request.

    CTANE is the workload because its per-level spans make it the most
    span-dense instrumented path per unit of work.
    """
    import gc
    import statistics

    from repro import obs

    relation = tax_relation(db_size)
    request = DiscoveryRequest(min_support=support, algorithm="ctane")
    execute(relation, request)  # warm-up: page in the caches and code paths

    untraced = obs.Tracer(enabled=False)
    sampled_out = obs.Tracer(service="bench", sample_rate=0.0)

    def run(tracer) -> float:
        obs.set_tracer(tracer)
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        with tracer.start_trace("repro.bench.request"):
            execute(relation, request)
        elapsed = time.perf_counter() - started
        gc.enable()
        return elapsed

    untraced_times, sampled_out_times, ratios = [], [], []
    try:
        # ABBA ordering: alternate which side of the pair runs first, so a
        # monotonic load or thermal drift cancels out of the pair ratios
        # instead of biasing them all one way.
        for pair in range(max(9, pairs)):
            if pair % 2 == 0:
                off, on = run(untraced), run(sampled_out)
            else:
                on, off = run(sampled_out), run(untraced)
            untraced_times.append(off)
            sampled_out_times.append(on)
            ratios.append(on / off)
    finally:
        obs.disable()
    assert len(sampled_out.ring) == 0, "sampled-out tracer must record nothing"

    return {
        "db_size": db_size,
        "support": support,
        "algorithm": "ctane",
        "pairs": len(ratios),
        "untraced_s": min(untraced_times),
        "sampled_out_s": min(sampled_out_times),
        "overhead_ratio": round(statistics.median(ratios), 4),
        "overhead_pct": round((statistics.median(ratios) - 1.0) * 100, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: same document shape, seconds of runtime",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON document (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        micro_rows, ablation_db, ablation_k = 400, 300, 5
        e2e_db, supports, repeats = 300, [5], 1
        serving_db, serving_supports = 300, [3, 5, 8]
        http_requests = 20
        wide_cfds = 0  # FD-only at 120 columns keeps the smoke run short
    else:
        micro_rows, ablation_db, ablation_k = 5000, 2000, 20
        e2e_db, supports, repeats = 2000, [10, 20, 50], 3
        serving_db, serving_supports = 2000, [10, 20, 50]
        http_requests = 50
        wide_cfds = 2
    if args.repeats is not None:
        repeats = args.repeats

    started = time.perf_counter()
    micro = bench_partitions(micro_rows, 7, repeats)
    ablation = bench_ctane_ablation(ablation_db, ablation_k, max(1, repeats - 1))
    end_to_end = bench_end_to_end(e2e_db, supports, max(1, repeats - 1))
    serving = bench_serving(
        serving_db, serving_supports, workers=4, repeats=max(1, repeats - 1)
    )
    persistence = bench_persistence(
        ablation_db, ablation_k, max(1, repeats - 1)
    )
    http_serving = bench_http_serving(
        ablation_db, ablation_k, n_requests=http_requests
    )
    fleet_serving = bench_fleet_serving(
        ablation_db, ablation_k, n_requests=http_requests
    )
    fault_recovery = bench_fault_recovery(
        ablation_db, ablation_k, max(1, repeats - 1)
    )
    wide_relations = bench_wide_relations(
        narrow_cols=30, wide_cols=120, n_rows=96,
        wide_cfds=wide_cfds, repeats=max(1, repeats - 1),
    )
    tracing_overhead = bench_tracing_overhead(
        ablation_db, ablation_k, pairs=max(7, repeats)
    )

    document = {
        "suite": "bench_perf_suite",
        "mode": "smoke" if args.smoke else "full",
        **machine_info(),
        "total_seconds": round(time.perf_counter() - started, 3),
        "micro": micro,
        "ctane_partition_ablation": ablation,
        "end_to_end": end_to_end,
        "serving": serving,
        "persistence": persistence,
        "http_serving": http_serving,
        "fleet_serving": fleet_serving,
        "fault_recovery": fault_recovery,
        "wide_relations": wide_relations,
        "tracing_overhead": tracing_overhead,
        # Pre-substrate numbers measured on the PR-1 tree (same machine
        # class, db_size=2000/k=20 and the 5000-row product chain), kept as
        # the fixed origin of the trajectory.
        "recorded_seed_baseline": {
            "partition_product_chain_s": 0.0313,
            "partition_construct_s": 0.0145,
            "ctane_2000_k20_s": 1.136,
            "fastcfd_2000_k20_s": 0.646,
            "cfdminer_2000_k20_s": 0.042,
        },
    }
    write_report(document, args.output)

    print(f"wrote {args.output}")
    print("\npartition microbenchmarks "
          f"({micro['rows']} rows, arity {micro['arity']}):")
    micro_rows_table = [
        {"benchmark": key, **values}
        for key, values in micro.items()
        if isinstance(values, dict)
    ]
    print(render_rows(
        micro_rows_table, ["benchmark", "label_array_s", "reference_s", "speedup"]
    ))
    print(f"\nCTANE ablation (db={ablation['db_size']}, k={ablation['support']}): "
          f"incremental {ablation['incremental_s']:.3f}s vs "
          f"legacy {ablation['legacy_s']:.3f}s "
          f"({ablation['speedup']:.2f}x, {ablation['n_cfds']} CFDs)")
    print("\nend-to-end discovery:")
    print(render_rows(
        end_to_end, ["algorithm", "db_size", "support", "seconds", "n_cfds"]
    ))
    print(f"\nserving throughput (db={serving['db_size']}, "
          f"{serving['n_requests']} requests, {serving['workers']} workers): "
          f"{serving['requests_per_second']} req/s pooled vs "
          f"{serving['sequential_oneshot_s']:.3f}s sequential one-shot "
          f"({serving['speedup']:.2f}x)")
    print(f"\npersistence (db={persistence['db_size']}, "
          f"k={persistence['support']}, ctane): cold {persistence['cold_s']:.3f}s "
          f"vs warm-start {persistence['warm_s']:.3f}s "
          f"({persistence['speedup']:.1f}x, store "
          f"{persistence['store_entries']} entries / "
          f"{persistence['store_bytes']} bytes, byte-identical="
          f"{persistence['byte_identical_output']})")
    print(f"\nhttp serving (db={http_serving['db_size']}, "
          f"k={http_serving['support']}, ctane over a real socket): "
          f"{http_serving['requests_per_second']} req/s steady-state, "
          f"first request cold {http_serving['first_request_cold_s']:.3f}s vs "
          f"warm-start {http_serving['first_request_warm_s']:.3f}s "
          f"({http_serving['warm_speedup']:.1f}x)")
    print(f"\nfleet serving (db={fleet_serving['db_size']}, "
          f"k={fleet_serving['support']}, {fleet_serving['workers']} workers): "
          f"{fleet_serving['requests_per_second_router']} req/s through the "
          f"router vs {fleet_serving['requests_per_second_direct']} req/s "
          f"direct ({fleet_serving['router_overhead_pct']}% overhead), "
          f"failover recovery "
          f"{fleet_serving['failover_recovery_s']:.3f}s "
          f"(byte-identical={fleet_serving['failover_byte_identical']})")
    print(f"\nfault recovery (db={fault_recovery['db_size']}, "
          f"k={fault_recovery['support']}, ctane): checkpointed resume "
          f"{fault_recovery['resume_s']:.3f}s vs cold restart "
          f"{fault_recovery['cold_restart_s']:.3f}s "
          f"({fault_recovery['resume_speedup']:.1f}x, resumed at level "
          f"{fault_recovery['resumed_level']} skipping "
          f"{fault_recovery['resume_levels_skipped']}, byte-identical="
          f"{fault_recovery['byte_identical_output']}); idle fault hooks "
          f"{fault_recovery['hook_overhead_pct']}% overhead")
    narrow_w = wide_relations["narrow"]
    wide_w = wide_relations["wide"]
    print(f"\nwide relations ({wide_relations['rows']} rows): at arity "
          f"{narrow_w['arity']} ctane {narrow_w['ctane_s']:.3f}s vs "
          f"fastcfd {narrow_w['fastcfd_s']:.3f}s vs "
          f"dfd {narrow_w['dfd_s']:.3f}s "
          f"({narrow_w['n_cfds']} CFDs, covers_match="
          f"{narrow_w['covers_match']}); at arity {wide_w['arity']} "
          f"ctane N/A, dfd {wide_w['dfd_s']:.3f}s "
          f"({wide_w['dfd_n_cfds']} CFDs, "
          f"{wide_w['dfd_partitions_computed']} partitions, "
          f"{wide_w['dfd_restarts']} restarts)")
    print(f"\ntracing overhead (db={tracing_overhead['db_size']}, "
          f"k={tracing_overhead['support']}, ctane, "
          f"{tracing_overhead['pairs']} interleaved pairs): sampled-out "
          f"{tracing_overhead['sampled_out_s']:.3f}s vs untraced "
          f"{tracing_overhead['untraced_s']:.3f}s "
          f"({tracing_overhead['overhead_pct']}% overhead)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
