"""Fig. 8: scalability w.r.t. the support threshold k (Tax).

Paper: k 50-150 at DBSIZE 100K; CTANE is highly sensitive to k (faster as k
grows) while NaiveFast/FastCFD improve only slightly.  Expected shape here:
CTANE's runtime drops substantially from the smallest to the largest k, the
depth-first algorithms change much less.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig08_runtime_vs_support(benchmark):
    result = benchmark.pedantic(figures.figure8, rounds=1, iterations=1)
    record_result(result)

    ctane = dict(result.series("ctane", "k"))
    fastcfd = dict(result.series("fastcfd", "k"))
    low, high = min(ctane), max(ctane)
    # CTANE improves as k grows.
    assert ctane[high] < ctane[low]
    # CTANE's relative improvement is larger than FastCFD's.
    ctane_ratio = ctane[low] / max(ctane[high], 1e-9)
    fastcfd_ratio = fastcfd[low] / max(fastcfd[high], 1e-9)
    assert ctane_ratio >= fastcfd_ratio * 0.9
