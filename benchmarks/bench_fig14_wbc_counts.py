"""Fig. 14: Wisconsin breast cancer — number of CFDs found versus k.

Paper: the number of discovered CFDs decreases as k increases.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig14_wbc_counts_vs_k(benchmark):
    result = benchmark.pedantic(figures.figure14, rounds=1, iterations=1)
    record_result(result)
    series = dict(result.series("fastcfd", "k", y_key="cfds"))
    ks = sorted(series)
    assert [series[k] for k in ks] == sorted((series[k] for k in ks), reverse=True)
