"""Fig. 13: Tax — response time versus k (CTANE, FastCFD).

Paper: same experiment as Figs. 11-12 on the synthetic Tax data.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig13_tax_runtime_vs_k(benchmark):
    result = benchmark.pedantic(figures.figure13, rounds=1, iterations=1)
    record_result(result)

    ctane = dict(result.series("ctane", "k"))
    fastcfd = dict(result.series("fastcfd", "k"))
    low, high = min(ctane), max(ctane)
    assert ctane[high] <= ctane[low] * 1.1
    assert set(fastcfd) == set(ctane)
