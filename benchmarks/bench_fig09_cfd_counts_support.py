"""Fig. 9: number of CFDs found w.r.t. the support threshold k (Tax).

Paper: the number of discovered minimal CFDs decreases as k increases.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig09_cfd_counts_vs_support(benchmark):
    result = benchmark.pedantic(figures.figure9, rounds=1, iterations=1)
    record_result(result)
    series = dict(result.series("fastcfd", "k", y_key="cfds"))
    ks = sorted(series)
    counts = [series[k] for k in ks]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] >= 0
