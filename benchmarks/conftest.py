"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one figure (or ablation) of the paper's
evaluation.  Besides the pytest-benchmark timing, each module renders the
series the figure plots as a text table, prints it, and records it under
``benchmarks/results/`` so that EXPERIMENTS.md can be refreshed from a single
run of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentResult

#: Where the rendered per-figure tables are written.
RESULTS_DIR = Path(__file__).parent / "results"


def record_result(result: ExperimentResult) -> str:
    """Print and persist the table of an experiment; return the rendering."""
    table = result.to_table()
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{result.figure}.txt"
    path.write_text(table + "\n", encoding="utf-8")
    print()
    print(table)
    return table


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
