"""Fig. 7: scalability w.r.t. ARITY (Tax, CF 0.7).

Paper: ARITY 7-31 at DBSIZE 20K; CTANE degrades exponentially and cannot run
to completion above arity 17, while NaiveFast/FastCFD scale well.  Here:
ARITY 7-15 at a scaled DBSIZE, with CTANE capped at a configurable arity.
Expected shape: CTANE's runtime grows much faster with arity than FastCFD's.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig07_runtime_vs_arity(benchmark):
    result = benchmark.pedantic(figures.figure7, rounds=1, iterations=1)
    record_result(result)

    ctane = dict(result.series("ctane", "arity"))
    fastcfd = dict(result.series("fastcfd", "arity"))
    assert fastcfd, "FastCFD must run at every arity"
    # CTANE only runs up to the cutoff arity (the paper's completion wall).
    assert max(ctane) <= figures.CTANE_MAX_ARITY
    assert max(fastcfd) > max(ctane)
    # Shape: CTANE's growth factor across its arity range exceeds FastCFD's
    # growth factor over the same range.
    lo, hi = min(ctane), max(ctane)
    ctane_growth = ctane[hi] / max(ctane[lo], 1e-9)
    fastcfd_growth = fastcfd[hi] / max(fastcfd[lo], 1e-9)
    assert ctane_growth > fastcfd_growth
