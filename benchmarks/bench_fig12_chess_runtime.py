"""Fig. 12: Chess (KRK) — response time versus k (CTANE, FastCFD).

Paper: same experiment as Fig. 11 on the Chess data set (28 056 x 7).  The
stand-in computes legal KRK positions with a deterministic depth label.
"""

from __future__ import annotations

from benchmarks.conftest import record_result
from repro.experiments import figures


def test_fig12_chess_runtime_vs_k(benchmark):
    result = benchmark.pedantic(figures.figure12, rounds=1, iterations=1)
    record_result(result)

    ctane = dict(result.series("ctane", "k"))
    fastcfd = dict(result.series("fastcfd", "k"))
    low, high = min(ctane), max(ctane)
    assert ctane[high] <= ctane[low] * 1.1   # CTANE does not get worse with k
    assert set(fastcfd) == set(ctane)
