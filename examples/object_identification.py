#!/usr/bin/env python3
"""Constant CFDs for object identification.

The paper stresses that constant CFDs are "particularly important for object
identification, which is essential to data cleaning and data integration"
(Section 1).  This example plays that scenario out: two customer feeds use
different conventions, and the constant CFDs mined from the merged feed expose
value-level correspondences (area code ⇔ city ⇔ state) that can be used as
matching rules when linking records.

The mining goes through the unified front door: a ``constant_only``
:class:`repro.DiscoveryRequest` is dispatched by the registry straight to a
constant-only engine (CFDMiner) — no variable CFDs are mined and discarded.

Run with::

    python examples/object_identification.py
"""

from __future__ import annotations

from repro import DiscoveryRequest, Profiler, Relation
from repro.core.implication import minimise_constant_cover

#: A merged feed of customer records from two sources.  Both sources describe
#: the same three metropolitan areas, with consistent (AC, CT, ST) values but
#: source-specific formatting of names and phones.
MERGED_ROWS = [
    ("src1", "908", "MH", "NJ", "Mike", "555-0101"),
    ("src1", "908", "MH", "NJ", "Rick", "555-0102"),
    ("src1", "212", "NYC", "NY", "Joe", "555-0103"),
    ("src1", "212", "NYC", "NY", "Ann", "555-0104"),
    ("src1", "131", "EDI", "SC", "Ben", "555-0105"),
    ("src2", "908", "MH", "NJ", "MIKE T.", "(908) 555 0101"),
    ("src2", "908", "MH", "NJ", "JIM P.", "(908) 555 0106"),
    ("src2", "212", "NYC", "NY", "JOE W.", "(212) 555 0103"),
    ("src2", "131", "EDI", "SC", "IAN M.", "(131) 555 0107"),
    ("src2", "131", "EDI", "SC", "BEN K.", "(131) 555 0105"),
]


def main() -> None:
    relation = Relation.from_rows(
        ["SRC", "AC", "CT", "ST", "NM", "PN"], MERGED_ROWS
    )
    print("merged customer feed:")
    print(relation.pretty())
    print()

    # Mine constant CFDs that hold across both sources (support >= 3 tuples).
    result = Profiler(relation).run(
        DiscoveryRequest(min_support=3, constant_only=True)
    )
    print(f"{result.n_cfds} minimal 3-frequent constant CFDs "
          f"(served by {result.algorithm}):")
    for cfd in sorted(result.cfds, key=str):
        print(f"    {cfd}")
    print()

    # Keep only the rules that link identifying attributes (drop SRC-specific
    # ones) and remove logically redundant rules.
    identifying = [
        cfd
        for cfd in result.cfds
        if "SRC" not in cfd.lhs and cfd.rhs != "SRC"
    ]
    minimal_rules = minimise_constant_cover(identifying)
    print("object-identification rules (non-redundant, source-independent):")
    for cfd in sorted(minimal_rules, key=str):
        print(f"    {cfd}")
    print()

    # Use them as matching evidence: records that agree on the LHS of a rule
    # can be assumed to agree on the RHS, even when one feed omits the value.
    print("example use: a src2 record with AC=908 can be completed/linked with")
    print("CT=MH and ST=NJ even if those fields are missing or differently coded.")


if __name__ == "__main__":
    main()
