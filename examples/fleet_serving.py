#!/usr/bin/env python3
"""A discovery fleet: one router, two workers, one shared cache store.

PR 5 put one ``repro-serve`` worker on a socket; :mod:`repro.serve.fleet`
scales that worker out.  This walkthrough boots two workers over one shared
:class:`~repro.serve.CacheStore` directory and one ``repro-fleet`` router in
front of them (all on ephemeral ports, all stdlib), then shows the three
fleet behaviours end to end:

1. **placement** — uploads and discover requests route by relation
   fingerprint on the consistent-hash ring, so each relation's warm session
   lives on exactly one worker;
2. **failover** — stopping the owning worker mid-traffic re-routes its arc
   to the ring successor, which warm-starts from the shared store and
   serves the *identical* cover (the router replays the cached upload);
3. **fairness** — a greedy client exhausts its token bucket and gets
   ``429`` + an honest ``Retry-After`` while a light client keeps being
   admitted.

In production you would run the standalone processes instead::

    repro-serve --port 8321 --cache-dir /var/cache/repro &
    repro-serve --port 8322 --cache-dir /var/cache/repro &
    python -m repro.serve.fleet --port 8400 \\
        --worker http://127.0.0.1:8321 --worker http://127.0.0.1:8322 \\
        --client-rate 50 --client-burst 100

Run with::

    python examples/fleet_serving.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

from repro.datagen import generate_tax
from repro.relational.io import write_csv
from repro.serve import CacheStore, DiscoveryService, SessionPool
from repro.serve.fleet import RouterConfig, RouterThread
from repro.serve.http import ServerConfig, ServerThread


def call(base: str, method: str, path: str, body=None, content_type=None,
         client_id=None):
    """One HTTP exchange; returns (status, headers, parsed-or-raw body)."""
    request = urllib.request.Request(base + path, data=body, method=method)
    if content_type:
        request.add_header("Content-Type", content_type)
    if client_id:
        request.add_header("X-Client-Id", client_id)
    try:
        with urllib.request.urlopen(request) as response:
            payload = response.read()
            headers = dict(response.headers)
            status = response.status
    except urllib.error.HTTPError as error:  # 4xx/5xx still carry a body
        payload = error.read()
        headers = dict(error.headers)
        status = error.code
    kind = headers.get("Content-Type", headers.get("content-type", ""))
    if kind.startswith("application/json"):
        return status, headers, json.loads(payload)
    return status, headers, payload.decode()


def start_worker(store_dir: Path) -> ServerThread:
    """One worker process-equivalent: own service, shared store directory."""
    service = DiscoveryService(
        pool=SessionPool(store=CacheStore(store_dir)), max_workers=2
    )
    return ServerThread(service, ServerConfig(port=0)).start()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "tax.csv"
        write_csv(generate_tax(400, arity=7, seed=11), csv_path)
        store_dir = Path(tmp) / "shared-cache"

        workers = [start_worker(store_dir) for _ in range(2)]
        router = RouterThread(RouterConfig(
            port=0,
            workers=[worker.address for worker in workers],
            health_interval=0.2,
            client_rate=2.0,       # 2 requests/second per client id ...
            client_burst=4.0,      # ... after a 4-request burst
        )).start()
        base = router.address
        print(f"router on {base} fronting "
              f"{', '.join(w.address for w in workers)}\n")

        # 1. placement ---------------------------------------------------- #
        status, _, uploaded = call(
            base, "POST", "/v1/relations?name=tax",
            body=csv_path.read_bytes(), content_type="text/csv",
        )
        fingerprint = uploaded["fingerprint"]
        owner_url, successor_url = router.router.ring.preference(
            fingerprint, limit=2
        )
        print(f"[{status}] uploaded tax ({uploaded['rows']} rows); "
              f"ring owner: {owner_url}")

        discover = json.dumps(
            {"relation": "tax", "support": 10, "algorithm": "ctane"}
        ).encode()
        status, _, before = call(
            base, "POST", "/v1/discover", body=discover,
            content_type="application/json",
        )
        print(f"[{status}] discover through router: "
              f"{before['counts']['total']} CFDs "
              f"in {before['elapsed_seconds']:.3f}s (cold, on the owner)")

        # 2. failover ----------------------------------------------------- #
        owner = next(w for w in workers if w.address == owner_url)
        owner.stop()  # graceful: spills its warm session into the store
        print(f"\nstopped the owner {owner_url} — its arc remaps to "
              f"{successor_url}")

        status, _, after = call(
            base, "POST", "/v1/discover", body=discover,
            content_type="application/json",
        )
        identical = json.dumps(after["rules"], sort_keys=True) == json.dumps(
            before["rules"], sort_keys=True
        )
        print(f"[{status}] discover again: {after['counts']['total']} CFDs "
              f"in {after['elapsed_seconds']:.3f}s on the successor "
              f"(byte-identical rules: {identical})")

        _, _, metrics = call(base, "GET", "/metrics")
        for line in metrics.splitlines():
            if line.startswith((
                "repro_fleet_failovers_total", "repro_fleet_reuploads_total",
            )) and not line.startswith("#"):
                print(f"  {line}")

        # 3. fairness ----------------------------------------------------- #
        print("\na greedy client vs the token bucket "
              "(rate 2/s, burst 4):")
        for attempt in range(1, 8):
            status, headers, _ = call(
                base, "GET", "/v1/relations", client_id="greedy"
            )
            hint = headers.get("Retry-After", "")
            note = f" Retry-After: {hint}s" if hint else ""
            print(f"  greedy #{attempt}: {status}{note}")
        status, _, _ = call(base, "GET", "/v1/relations", client_id="light")
        print(f"  light  #1: {status}  (unaffected by greedy's exhaustion)")

        router.stop()
        for worker in workers:
            worker.stop()
        print("\nfleet stopped")


if __name__ == "__main__":
    main()
