#!/usr/bin/env python3
"""Discovery over HTTP: the ``repro-serve`` subsystem, end to end.

PRs 3–4 made the serving substrate thread-safe and persistent;
:mod:`repro.serve.http` puts a network front end on it (stdlib asyncio, no
dependencies).  This walkthrough boots a real server on an ephemeral port —
the same :class:`~repro.serve.http.ServerThread` the integration tests and
the ``http_serving`` benchmark use — and drives it with plain
``urllib``/``http.client`` calls, exactly what any HTTP client would send:

1. ``POST /v1/relations`` — upload a CSV, get its content fingerprint;
2. ``POST /v1/discover`` — run a :class:`~repro.api.DiscoveryRequest` by
   name, fingerprint, or with inline rows;
3. ``POST /v1/discover?stream=jsonl`` — stream a large cover line by line;
4. ``POST /v1/batch`` — a concurrent batch with per-entry error isolation;
5. ``GET /metrics`` — Prometheus counters showing the dedup and the pool;
6. graceful drain — stopping the server spills the warmed session pool
   into the ``--cache-dir`` store so the next worker warm-starts.

In production you would run the standalone process instead::

    python -m repro.serve.http --port 8321 --workers 8 --cache-dir cache/

Run with::

    python examples/http_serving.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

from repro.datagen import generate_tax
from repro.relational.io import write_csv
from repro.serve import CacheStore, DiscoveryService, SessionPool
from repro.serve.http import ServerConfig, ServerThread


def call(base: str, method: str, path: str, body=None, content_type=None):
    """One HTTP exchange; returns (status, parsed-or-raw body)."""
    request = urllib.request.Request(base + path, data=body, method=method)
    if content_type:
        request.add_header("Content-Type", content_type)
    with urllib.request.urlopen(request) as response:
        payload = response.read()
        kind = response.headers.get("Content-Type", "")
        if kind.startswith("application/json"):
            return response.status, json.loads(payload)
        return response.status, payload.decode()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "tax.csv"
        write_csv(generate_tax(500, arity=7, seed=11), csv_path)
        store_dir = Path(tmp) / "cache"

        # The repro-serve CLI builds exactly this object graph from
        # --workers/--pool-bytes/--cache-dir.
        service = DiscoveryService(
            pool=SessionPool(store=CacheStore(store_dir)), max_workers=4
        )
        with ServerThread(service, ServerConfig(port=0)) as server:
            base = server.address
            print(f"serving on {base}\n")

            # 1. upload --------------------------------------------------- #
            status, uploaded = call(
                base, "POST", "/v1/relations?name=tax",
                body=csv_path.read_bytes(), content_type="text/csv",
            )
            print(f"[{status}] uploaded: {uploaded['rows']} rows, "
                  f"arity {uploaded['arity']}, "
                  f"fingerprint {uploaded['fingerprint'][:12]}…")

            # 2. discover by name ----------------------------------------- #
            status, result = call(
                base, "POST", "/v1/discover",
                body=json.dumps(
                    {"relation": "tax", "support": 10, "algorithm": "ctane"}
                ).encode(),
                content_type="application/json",
            )
            print(f"[{status}] discover k=10: {result['counts']['total']} CFDs "
                  f"({result['counts']['constant']} constant) "
                  f"in {result['elapsed_seconds']:.3f}s")

            # ... and again: the pooled session makes the replay instant.
            status, replay = call(
                base, "POST", "/v1/discover",
                body=json.dumps(
                    {"relation": "tax", "support": 10, "algorithm": "ctane"}
                ).encode(),
                content_type="application/json",
            )
            print(f"[{status}] replay:        same cover "
                  f"in {replay['elapsed_seconds']:.3f}s (warm session)")

            # 3. stream a cover as JSON Lines ----------------------------- #
            status, stream = call(
                base, "POST", "/v1/discover?stream=jsonl",
                body=json.dumps(
                    {"relation": "tax", "support": 10, "algorithm": "ctane"}
                ).encode(),
                content_type="application/json",
            )
            lines = stream.strip().splitlines()
            header = json.loads(lines[0])
            print(f"[{status}] jsonl stream: header + {header['n_rules']} "
                  f"rule lines ({len(lines) - 1} received)")

            # 4. a batch with one poisoned entry --------------------------- #
            status, batch = call(
                base, "POST", "/v1/batch",
                body=json.dumps({
                    "requests": [
                        {"relation": "tax", "support": k, "algorithm": "ctane"}
                        for k in (10, 20, 50)
                    ] + [{"relation": "no-such-relation", "support": 1}]
                }).encode(),
                content_type="application/json",
            )
            counts = [
                record["counts"]["total"] if "error" not in record
                else record["error"]["code"]
                for record in batch["results"]
            ]
            print(f"[{status}] batch: {batch['requests']} requests, "
                  f"{batch['failed']} failed -> {counts}")

            # 5. observability --------------------------------------------- #
            _, metrics = call(base, "GET", "/metrics")
            interesting = [
                line for line in metrics.splitlines()
                if line.startswith((
                    "repro_service_requests", "repro_service_deduplicated",
                    "repro_pool_sessions", "repro_pool_hits",
                ))
            ]
            print("\nmetrics excerpt:")
            for line in interesting:
                print(f"  {line}")

        # 6. the graceful drain spilled the pool into the store ----------- #
        store = CacheStore(store_dir)
        print(f"\nafter drain: store holds {len(store)} entries "
              f"({store.size_bytes()} bytes) — the next worker warm-starts")


if __name__ == "__main__":
    main()
