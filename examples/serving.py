#!/usr/bin/env python3
"""Serving discovery requests: session pool, dedup, concurrent batches.

The paper frames CFD discovery as the engine behind data-quality *services*
that profile many relations, repeatedly, at varying support thresholds.  The
serving layer (:mod:`repro.serve`) turns the library into exactly that:

* a :class:`~repro.serve.SessionPool` keeps one warmed
  :class:`~repro.api.Profiler` session per relation (recognised by content
  fingerprint), bounded by a capacity cap and a byte budget, evicting the
  cheapest-to-rebuild session first (observed build cost, LRU tiebreak);
* a :class:`~repro.serve.DiscoveryService` executes batches concurrently and
  coalesces identical in-flight requests onto one engine run;
* a :class:`~repro.serve.CacheStore` persists session caches on disk, so
  evicted sessions spill instead of vanishing, restarted workers warm-start
  instead of recomputing, and several workers share one warm substrate.

This example serves a mixed workload over two relations — support sweeps,
duplicate requests, a named relation — prints the counters that show the
sharing at work, then simulates a worker restart against the same store.

Run with::

    python examples/serving.py
"""

from __future__ import annotations

import tempfile
import time

from repro import DiscoveryRequest, DiscoveryService, Profiler, SessionPool
from repro.datagen import generate_tax
from repro.serve import CacheStore


def main() -> None:
    tax_small = generate_tax(db_size=400, arity=7, cf=0.7, seed=3)
    tax_large = generate_tax(db_size=800, arity=7, cf=0.7, seed=5)

    store_dir = tempfile.mkdtemp(prefix="repro-store-")
    store = CacheStore(store_dir)
    pool = SessionPool(
        max_sessions=4, max_bytes=64 << 20, store=store  # 64 MiB budget
    )
    with DiscoveryService(pool=pool, max_workers=4) as service:
        # Relations can be addressed by name — the serving pattern for front
        # ends that identify datasets rather than shipping them by value.
        service.register("tax-large", tax_large)

        # A concurrent support sweep over one relation: the four runs share
        # the session's k-independent difference-set provider (one build).
        sweep = service.sweep(
            tax_small, DiscoveryRequest(algorithm="fastcfd"), supports=[5, 10, 20, 40]
        )
        print("support sweep over tax-small (shared session):")
        for result in sweep:
            print(f"  {result.summary()}")

        # A mixed batch with duplicates: identical in-flight requests are
        # deduplicated onto a single engine run.
        request = DiscoveryRequest(min_support=10, algorithm="fastcfd")
        batch = service.run_batch(
            [
                ("tax-large", request),
                ("tax-large", request),
                ("tax-large", request.with_algorithm("cfdminer")),
            ]
        )
        print("\nmixed batch over tax-large:")
        for result in batch:
            print(f"  {result.summary()}")

        info = service.info()

    print("\nservice counters:")
    for key in ("requests", "deduplicated", "completed", "failed"):
        print(f"  {key:13s} {info[key]}")
    pool_info = info["pool"]
    print("\nsession pool:")
    print(
        f"  {pool_info['sessions']} sessions, "
        f"{pool_info['hits']} hits / {pool_info['misses']} misses, "
        f"{pool_info['evictions']} evictions, "
        f"~{pool_info['estimated_bytes'] / 1024:.0f} KiB cached"
    )
    for entry in pool_info["lru"]:
        print(
            f"    {entry['fingerprint'][:12]}…  rows={entry['rows']:4d} "
            f"uses={entry['uses']}  ~{entry['estimated_bytes'] / 1024:.0f} KiB "
            f"build={entry['build_seconds'] * 1000:.0f} ms"
        )

    # Persist the warmed sessions and simulate a worker restart: a fresh
    # session over the same relation warm-starts from the store instead of
    # recomputing — this is the cross-process sharing story.
    pool.persist()
    print(f"\ncache store: {len(store)} entries, "
          f"{store.size_bytes() / 1024:.0f} KiB at {store_dir}")
    request = DiscoveryRequest(min_support=10, algorithm="fastcfd")
    started = time.perf_counter()
    restarted = Profiler(tax_large)
    loaded = restarted.warm_from(CacheStore(store_dir))
    result = restarted.run(request)
    print(f"restarted worker: loaded {loaded} entries, served "
          f"{result.n_cfds} CFDs in {time.perf_counter() - started:.3f}s "
          f"(engine hits: {restarted.cache_info()['engine_results']['hits']})")


if __name__ == "__main__":
    main()
