#!/usr/bin/env python3
"""Choosing between CFDMiner, CTANE and FastCFD (Section 8 of the paper).

The paper's conclusion gives a decision guide:

* only constant CFDs needed            -> CFDMiner
* wide relations (large arity)         -> FastCFD
* large support threshold, small arity -> CTANE

In the unified API that guide is *capability metadata*: every engine in the
algorithm registry declares what it emits and where it scales, and
``algorithm="auto"`` dispatch reads those declarations.  This example prints
the registry's capability table, measures the engines on small synthetic
workloads that differ in arity and support threshold, and shows what the
registry selects for each workload.

Run with::

    python examples/algorithm_selection.py
"""

from __future__ import annotations

from repro import REGISTRY, DiscoveryRequest, execute_request
from repro.datagen import generate_tax
from repro.experiments.reporting import format_table


def capability_table() -> str:
    rows = []
    for name in REGISTRY.names():
        caps = REGISTRY.capabilities_of(name)
        rows.append(
            {
                "algorithm": name,
                "constant": caps.constant_cfds,
                "variable": caps.variable_cfds,
                "wide-arity": caps.handles_wide_relations,
                "high-k": caps.prefers_high_support,
                "auto": caps.auto_candidate,
            }
        )
    return format_table(rows)


def time_algorithms(relation, k, algorithms):
    rows = []
    for algorithm in algorithms:
        # One-shot runs (no shared session): each engine builds its own
        # structures, so the seconds compare the algorithms fairly.
        result = execute_request(
            relation, DiscoveryRequest(min_support=k, algorithm=algorithm)
        )
        rows.append(
            {
                "algorithm": algorithm,
                "arity": result.relation_arity,
                "dbsize": result.relation_size,
                "k": k,
                "seconds": round(result.elapsed_seconds, 3),
                "cfds": result.n_cfds,
            }
        )
    return rows


def main() -> None:
    print("== the algorithm registry's capability metadata ==")
    print(capability_table())
    print()

    workloads = [
        ("narrow relation, low support", generate_tax(1200, arity=7, seed=1), 6),
        ("narrow relation, high support", generate_tax(1200, arity=7, seed=1), 60),
        ("wide relation", generate_tax(400, arity=13, seed=1), 6),
    ]
    for label, relation, k in workloads:
        print(f"== {label} (arity={relation.arity}, |r|={relation.n_rows}, k={k}) ==")
        algorithms = ["cfdminer", "fastcfd", "naivefast"]
        # CTANE is excluded from the wide workload, mirroring the paper's
        # observation that it does not scale with the arity.
        if relation.arity <= 9:
            algorithms.insert(1, "ctane")
        print(format_table(time_algorithms(relation, k, algorithms)))
        request = DiscoveryRequest(min_support=k)
        print(f"auto mode would pick: {REGISTRY.select(relation, request)}")
        print()


if __name__ == "__main__":
    main()
