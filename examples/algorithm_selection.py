#!/usr/bin/env python3
"""Choosing between CFDMiner, CTANE and FastCFD (Section 8 of the paper).

The paper's conclusion gives a decision guide:

* only constant CFDs needed            -> CFDMiner
* wide relations (large arity)         -> FastCFD
* large support threshold, small arity -> CTANE

This example measures the three algorithms on small synthetic workloads that
differ in arity and support threshold, prints the timing table, and shows what
the library's ``algorithm="auto"`` mode picks for each workload.

Run with::

    python examples/algorithm_selection.py
"""

from __future__ import annotations

import time

from repro import discover
from repro.core.discovery import choose_algorithm
from repro.datagen import generate_tax
from repro.experiments.reporting import format_table


def time_algorithms(relation, k, algorithms):
    rows = []
    for algorithm in algorithms:
        start = time.perf_counter()
        result = discover(relation, k, algorithm=algorithm)
        rows.append(
            {
                "algorithm": algorithm,
                "arity": relation.arity,
                "dbsize": relation.n_rows,
                "k": k,
                "seconds": round(time.perf_counter() - start, 3),
                "cfds": result.n_cfds,
            }
        )
    return rows


def main() -> None:
    workloads = [
        ("narrow relation, low support", generate_tax(1200, arity=7, seed=1), 6),
        ("narrow relation, high support", generate_tax(1200, arity=7, seed=1), 60),
        ("wide relation", generate_tax(400, arity=13, seed=1), 6),
    ]
    for label, relation, k in workloads:
        print(f"== {label} (arity={relation.arity}, |r|={relation.n_rows}, k={k}) ==")
        algorithms = ["cfdminer", "fastcfd", "naivefast"]
        # CTANE is excluded from the wide workload, mirroring the paper's
        # observation that it does not scale with the arity.
        if relation.arity <= 9:
            algorithms.insert(1, "ctane")
        print(format_table(time_algorithms(relation, k, algorithms)))
        print(f"auto mode would pick: {choose_algorithm(relation, k)}")
        print()


if __name__ == "__main__":
    main()
