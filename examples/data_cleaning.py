#!/usr/bin/env python3
"""Data cleaning with discovered CFDs (the paper's motivating application).

Workflow, driven entirely through the unified discovery API:

1. generate a clean synthetic Tax relation (the paper's workload generator);
2. discover a canonical cover of constant CFDs on it through a
   :class:`repro.Profiler` session (``constant_only`` routes straight to
   CFDMiner via the registry's capability-driven dispatch);
3. corrupt a copy of the data with typo-style errors;
4. use the discovered rules to *detect* the dirty tuples
   (:func:`repro.cleaning.discover_and_detect` does 2+4 in one call);
5. *repair* the dirty relation and verify that it satisfies the rules again.

Run with::

    python examples/data_cleaning.py
"""

from __future__ import annotations

from repro import DiscoveryRequest
from repro.cleaning import discover_and_detect, detect_violations, repair
from repro.datagen import generate_tax, inject_errors


def main() -> None:
    # 1. a clean sample to learn rules from
    clean = generate_tax(db_size=800, arity=7, cf=0.7, seed=11)
    print(f"clean sample: {clean.n_rows} tuples, {clean.arity} attributes")

    # 3. corrupt city and street values
    dirty, corrupted_cells = inject_errors(
        clean, 0.02, seed=13, attributes=["CT", "STR"], use_domain_values=False
    )
    print(f"injected {len(corrupted_cells)} typo errors into CT / STR")
    print()

    # 2 + 4. profile the clean sample, audit the dirty copy — one call
    # through the front door (constant rules are the most actionable).
    request = DiscoveryRequest(min_support=8, constant_only=True)
    result, report = discover_and_detect(clean, dirty, request)
    rules = [cfd for cfd in result.cfds if len(cfd.lhs) >= 1]
    print(f"profiled with {result.algorithm} (capability-driven dispatch): "
          f"{result.n_cfds} constant rules, e.g.:")
    for cfd in sorted(rules, key=str)[:5]:
        print(f"    {cfd}")
    print()
    print("violation report on the dirty data:")
    print(report.summary())
    print()
    truly_dirty_rows = {row for row, _ in corrupted_cells}
    flagged = report.dirty_rows
    caught = len(flagged & truly_dirty_rows)
    print(f"rule-based detection flagged {len(flagged)} tuples, "
          f"{caught} of the {len(truly_dirty_rows)} corrupted tuples")
    print()

    # 5. repair
    outcome = repair(dirty, rules)
    print(outcome.summary())
    after = detect_violations(outcome.relation, rules)
    print(f"violations after repair: {after.total_violations}")
    restored = sum(
        1
        for row, attribute in corrupted_cells
        if outcome.relation.value(row, attribute) == clean.value(row, attribute)
    )
    print(f"{restored}/{len(corrupted_cells)} corrupted cells restored to their "
          f"original value")


if __name__ == "__main__":
    main()
