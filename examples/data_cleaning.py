#!/usr/bin/env python3
"""Data cleaning with discovered CFDs (the paper's motivating application).

Workflow:

1. generate a clean synthetic Tax relation (the paper's workload generator);
2. discover a canonical cover of CFDs on it with FastCFD;
3. corrupt a copy of the data with typo-style errors;
4. use the discovered rules to *detect* the dirty tuples;
5. *repair* the dirty relation and verify that it satisfies the rules again.

Run with::

    python examples/data_cleaning.py
"""

from __future__ import annotations

from repro import FastCFD
from repro.cleaning import detect_violations, repair
from repro.datagen import generate_tax, inject_errors


def main() -> None:
    # 1. a clean sample to learn rules from
    clean = generate_tax(db_size=800, arity=7, cf=0.7, seed=11)
    print(f"clean sample: {clean.n_rows} tuples, {clean.arity} attributes")

    # 2. discover data-quality rules (constant rules are the most actionable)
    cover = FastCFD(clean, min_support=8).discover()
    rules = [cfd for cfd in cover if cfd.is_constant and len(cfd.lhs) >= 1]
    print(f"discovered {len(cover)} CFDs, keeping {len(rules)} constant rules "
          f"as cleaning rules, e.g.:")
    for cfd in sorted(rules, key=str)[:5]:
        print(f"    {cfd}")
    print()

    # 3. corrupt city and street values
    dirty, corrupted_cells = inject_errors(
        clean, 0.02, seed=13, attributes=["CT", "STR"], use_domain_values=False
    )
    print(f"injected {len(corrupted_cells)} typo errors into CT / STR")

    # 4. detect
    report = detect_violations(dirty, rules)
    print("violation report on the dirty data:")
    print(report.summary())
    print()
    truly_dirty_rows = {row for row, _ in corrupted_cells}
    flagged = report.dirty_rows
    caught = len(flagged & truly_dirty_rows)
    print(f"rule-based detection flagged {len(flagged)} tuples, "
          f"{caught} of the {len(truly_dirty_rows)} corrupted tuples")
    print()

    # 5. repair
    result = repair(dirty, rules)
    print(result.summary())
    after = detect_violations(result.relation, rules)
    print(f"violations after repair: {after.total_violations}")
    restored = sum(
        1
        for row, attribute in corrupted_cells
        if result.relation.value(row, attribute) == clean.value(row, attribute)
    )
    print(f"{restored}/{len(corrupted_cells)} corrupted cells restored to their "
          f"original value")


if __name__ == "__main__":
    main()
