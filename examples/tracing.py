#!/usr/bin/env python3
"""Tracing an embedded discovery run with ``repro.obs``.

The serving CLIs trace by default, but the tracer is just as usable from a
library embedding: install one with ``obs.configure``, wrap your unit of
work in ``start_trace``, and every instrumented layer underneath — the
profiler's structure caches, the engine, its lattice levels — lands in the
same trace.  This example:

1. configures a fully-sampling process tracer with a slow-trace hook,
2. runs one CTANE discovery inside an application root span, with an
   application child span around the part worth timing,
3. carries the trace across a thread-pool hop with ``obs.bind_context``,
4. renders the captured trace as a waterfall (the same renderer behind
   the ``repro-trace`` console script).

Run with::

    python examples/tracing.py
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro import DiscoveryRequest, Profiler, obs
from repro.datagen import generate_tax
from repro.obs.render import render_waterfall

#: Application spans follow the same ``repro.<layer>.<step>`` convention as
#: the built-in taxonomy in :mod:`repro.obs.names`.
SPAN_EXAMPLE_REQUEST = "repro.example.request"
SPAN_EXAMPLE_DISCOVER = "repro.example.discover"
SPAN_EXAMPLE_SUMMARISE = "repro.example.summarise"


def summarise(result) -> str:
    """Runs on a worker thread; traced only because the caller bound it."""
    with obs.get_tracer().start_span(SPAN_EXAMPLE_SUMMARISE):
        counts = result.to_json_dict()["counts"]
        return f"{counts['total']} CFDs ({counts['constant']} constant)"


def main() -> int:
    slow_documents = []
    tracer = obs.configure(
        service="example",
        sample_rate=1.0,
        slow_threshold=0.0,  # everything is "slow": capture every tree
        on_slow=slow_documents.append,
    )

    relation = generate_tax(400, arity=7, seed=3)
    request = DiscoveryRequest(min_support=5, algorithm="ctane")

    with tracer.start_trace(SPAN_EXAMPLE_REQUEST, rows=relation.n_rows) as root:
        with tracer.start_span(SPAN_EXAMPLE_DISCOVER, algorithm="ctane"):
            result = Profiler(relation).run(request)
        # The bare callable would run uninstrumented on the pool thread;
        # bind_context snapshots this thread's span context into it.
        with ThreadPoolExecutor(max_workers=1) as executor:
            summary = executor.submit(obs.bind_context(summarise), result).result()
        root.set_attr("summary", summary)

    print(f"discovered {summary}\n")
    print(render_waterfall(tracer.ring.trace(root.trace_id)))
    print(
        f"\nslow-trace hook fired {len(slow_documents)} time(s); "
        f"the document holds the full tree "
        f"({len(slow_documents[0]['spans'][0]['children'])} direct children "
        f"under the root)."
    )
    obs.disable()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
