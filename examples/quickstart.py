#!/usr/bin/env python3
"""Quickstart: discover CFDs on the paper's cust relation (Fig. 1).

The script rebuilds the running example of the paper and drives the unified
discovery API: one :class:`repro.Profiler` session over the relation, one
:class:`repro.DiscoveryRequest` per run.  All three discovery algorithms
(CFDMiner, CTANE, FastCFD) are served through the algorithm registry; because
the session caches the shared per-relation structures (dictionary encoding,
free/closed item sets), the later runs reuse the earlier runs' mining work.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CFD, WILDCARD, DiscoveryRequest, Profiler, Relation

#: The cust relation of Fig. 1 of the paper (reconstructed).
CUST_ROWS = [
    ("01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"),
    ("01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"),
    ("01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"),
    ("01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"),
    ("44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"),
    ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ("44", "908", "4444444", "Ian", "Port PI", "MH", "W1B 1JH"),
    ("01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"),
]


def build_cust_relation() -> Relation:
    """The sample instance r0 used throughout the paper."""
    return Relation.from_rows(
        ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"], CUST_ROWS
    )


def main() -> None:
    relation = build_cust_relation()
    print("The cust relation (Fig. 1 of the paper):")
    print(relation.pretty())
    print()

    profiler = Profiler(relation)
    for algorithm in ("cfdminer", "ctane", "fastcfd"):
        result = profiler.run(DiscoveryRequest(min_support=2, algorithm=algorithm))
        print(result.summary())
        for cfd in sorted(result.cfds, key=str)[:10]:
            print(f"    {cfd}")
        if result.n_cfds > 10:
            print(f"    ... and {result.n_cfds - 10} more")
        print()

    info = profiler.cache_info()["free_closed"]
    print(f"session cache: free/closed mining hit {info['hits']} time(s) "
          f"across the runs")
    print()

    # The rules the paper singles out.
    highlights = [
        CFD(("AC",), ("908",), "CT", "MH"),                      # phi1, left-reduced
        CFD(("CC", "AC"), ("44", "131"), "CT", "EDI"),           # phi2
        CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD),   # phi0
        CFD(("CC", "AC"), (WILDCARD, WILDCARD), "CT", WILDCARD), # f1
    ]
    found = set(
        profiler.run(DiscoveryRequest(min_support=2, algorithm="ctane")).cfds
    )
    print("Rules highlighted in the paper:")
    for cfd in highlights:
        marker = "found" if cfd in found else "not in the k=2 cover"
        print(f"    {cfd}   [{marker}]")


if __name__ == "__main__":
    main()
