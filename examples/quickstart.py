#!/usr/bin/env python3
"""Quickstart: discover CFDs on the paper's cust relation (Fig. 1).

The script rebuilds the running example of the paper, runs all three
discovery algorithms (CFDMiner, CTANE, FastCFD) and prints the rules each of
them finds, highlighting the CFDs the paper discusses in Examples 1-7.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CFD, WILDCARD, Relation, discover

#: The cust relation of Fig. 1 of the paper (reconstructed).
CUST_ROWS = [
    ("01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"),
    ("01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"),
    ("01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"),
    ("01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"),
    ("44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"),
    ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ("44", "908", "4444444", "Ian", "Port PI", "MH", "W1B 1JH"),
    ("01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"),
]


def build_cust_relation() -> Relation:
    """The sample instance r0 used throughout the paper."""
    return Relation.from_rows(
        ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"], CUST_ROWS
    )


def main() -> None:
    relation = build_cust_relation()
    print("The cust relation (Fig. 1 of the paper):")
    print(relation.pretty())
    print()

    support = 2
    for algorithm in ("cfdminer", "ctane", "fastcfd"):
        result = discover(relation, min_support=support, algorithm=algorithm)
        print(result.summary())
        for cfd in sorted(result.cfds, key=str)[:10]:
            print(f"    {cfd}")
        if result.n_cfds > 10:
            print(f"    ... and {result.n_cfds - 10} more")
        print()

    # The rules the paper singles out.
    highlights = [
        CFD(("AC",), ("908",), "CT", "MH"),                      # phi1, left-reduced
        CFD(("CC", "AC"), ("44", "131"), "CT", "EDI"),           # phi2
        CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD),   # phi0
        CFD(("CC", "AC"), (WILDCARD, WILDCARD), "CT", WILDCARD), # f1
    ]
    found = set(discover(relation, min_support=2, algorithm="ctane").cfds)
    print("Rules highlighted in the paper:")
    for cfd in highlights:
        marker = "found" if cfd in found else "not in the k=2 cover"
        print(f"    {cfd}   [{marker}]")


if __name__ == "__main__":
    main()
