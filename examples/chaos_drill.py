#!/usr/bin/env python3
"""A seeded chaos drill against the serving stack, end to end.

Everything that makes the stack chaos-ready in one walkthrough, driven by
:class:`~repro.serve.faults.FaultPlan` — the deterministic fault harness
behind ``repro-serve --fault`` / ``repro-fleet --fault``:

1. **torn writes** — a store write is cut short mid-entry; the startup
   sweep quarantines the damage (with its reason on record) instead of
   tripping over it forever;
2. **checkpointed discovery** — a CTANE run is crashed mid-lattice; a
   fresh profiler sharing the store resumes from the last durably
   checkpointed level and produces the identical cover;
3. **transport flaps** — an injected connection reset trips the owner's
   circuit breaker; the router fails over, the cover stays correct, and
   the breaker/retry/fault counters show up in ``/metrics``.

In production the same plans are armed from the CLI::

    repro-serve --port 8321 --cache-dir /var/cache/repro \\
        --fault 'engine.level:kill:after=1,times=1' --fault-seed 7

Run with::

    python examples/chaos_drill.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

from repro.api import DiscoveryRequest, Profiler
from repro.datagen import generate_tax
from repro.exceptions import CacheStoreError
from repro.serve import CacheStore, DiscoveryService, FaultPlan, SessionPool
from repro.serve.faults import FaultInjected
from repro.serve.fleet import RouterConfig, RouterThread
from repro.serve.http import ServerConfig, ServerThread

SEED = 7


def call(base: str, method: str, path: str, body=None, content_type=None):
    request = urllib.request.Request(base + path, data=body, method=method)
    if content_type:
        request.add_header("Content-Type", content_type)
    try:
        with urllib.request.urlopen(request) as response:
            payload, status = response.read(), response.status
            kind = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        payload, status, kind = error.read(), error.code, ""
    if kind.startswith("application/json"):
        return status, json.loads(payload)
    return status, payload.decode()


def drill_torn_write(tmp: Path) -> None:
    print("1. torn writes " + "-" * 50)
    plan = FaultPlan.from_specs(
        ["store.put:torn_write:fraction=0.4,times=1"], seed=SEED
    )
    relation = generate_tax(200, arity=7, seed=11)
    store = CacheStore(tmp / "torn-store", faults=plan)
    profiler = Profiler(relation)
    profiler.run(DiscoveryRequest(min_support=10, algorithm="fastcfd"))
    try:
        profiler.dump_caches(store)
    except CacheStoreError as exc:
        print(f"   injected: {exc}")
    # A restarted worker sweeps before serving: damage is quarantined.
    swept = CacheStore(tmp / "torn-store", sweep=True)
    report = swept.fsck()
    print(f"   startup sweep: {swept.quarantined} entry quarantined, "
          f"{report['checked']} healthy entries kept")
    for reason_file in sorted(swept.quarantine_dir.glob("*.reason")):
        print(f"   {reason_file.name}: "
              f"{reason_file.read_text().splitlines()[-1]}")


def drill_checkpoint_resume(tmp: Path) -> None:
    print("\n2. checkpointed discovery " + "-" * 39)
    relation = generate_tax(400, arity=7, seed=11)
    request = DiscoveryRequest(min_support=10, algorithm="ctane")
    expected = Profiler(relation).run(request)

    store = CacheStore(tmp / "shared-store")
    plan = FaultPlan.from_specs(["engine.level:error:after=1,times=1"], seed=SEED)
    victim = Profiler(relation, faults=plan)
    victim.attach_store(store)
    try:
        victim.run(request)
    except FaultInjected as exc:
        print(f"   injected mid-lattice: {exc}")

    survivor = Profiler(relation)
    survivor.attach_store(store)
    result = survivor.run(request)
    identical = (
        result.to_json_dict()["rules"] == expected.to_json_dict()["rules"]
    )
    print(f"   resumed at level {result.stats.extras['resumed_level']} "
          f"({result.stats.extras['resume_levels_skipped']} levels skipped); "
          f"cover byte-identical: {identical}")


def drill_transport_flap(tmp: Path) -> None:
    print("\n3. transport flaps " + "-" * 46)
    store_dir = tmp / "fleet-store"
    workers = [
        ServerThread(
            DiscoveryService(
                pool=SessionPool(store=CacheStore(store_dir)), max_workers=2
            ),
            ServerConfig(port=0),
        ).start()
        for _ in range(2)
    ]
    plan = FaultPlan.from_specs(["fleet.send:reset:times=1"], seed=SEED)
    router = RouterThread(RouterConfig(
        port=0,
        workers=[worker.address for worker in workers],
        health_interval=0.2,
        breaker_fail_threshold=1,
        breaker_reset_seconds=30.0,
        faults=plan,
    )).start()
    try:
        relation = generate_tax(200, arity=7, seed=11)
        rows_doc = json.dumps({
            "name": "tax",
            "attributes": list(relation.attributes),
            "rows": [[str(v) for v in row] for row in relation.rows()],
        }).encode()
        status, uploaded = call(
            router.address, "POST", "/v1/relations",
            body=rows_doc, content_type="application/json",
        )
        print(f"   [{status}] upload survived an injected reset "
              f"(failover to the ring successor)")
        status, result = call(
            router.address, "POST", "/v1/discover",
            body=json.dumps({"relation": "tax", "support": 10}).encode(),
            content_type="application/json",
        )
        print(f"   [{status}] discover: {result['counts']['total']} CFDs")
        _, metrics = call(router.address, "GET", "/metrics")
        for line in metrics.splitlines():
            if line.startswith((
                "repro_faults_injected_total", "repro_breaker_state",
                "repro_fleet_breaker_opened_total", "repro_fleet_retries_total",
            )) and not line.startswith("#"):
                print(f"   {line}")
    finally:
        router.stop()
        for worker in workers:
            worker.stop()


def main() -> None:
    print(f"chaos drill, seed={SEED} (every schedule replays from it)\n")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        drill_torn_write(root)
        drill_checkpoint_resume(root)
        drill_transport_flap(root)
    print("\ndrill complete")


if __name__ == "__main__":
    main()
