"""Unit tests for the experiment dataset registry and scaling policy."""

import pytest

from repro.exceptions import DataGenerationError
from repro.experiments.datasets import (
    SCALE_ENV_VAR,
    dataset_registry,
    load_dataset,
    scale_factor,
    scaled,
)


class TestScaleFactor:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert scale_factor() == 1.0

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.5")
        assert scale_factor() == 0.5

    def test_invalid_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "abc")
        with pytest.raises(DataGenerationError):
            scale_factor()

    def test_non_positive_rejected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0")
        with pytest.raises(DataGenerationError):
            scale_factor()

    def test_scaled_respects_minimum(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.001")
        assert scaled(1000, minimum=50) == 50

    def test_scaled_multiplies(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "2.0")
        assert scaled(100) == 200


class TestRegistry:
    def test_registry_contains_paper_datasets(self):
        registry = dataset_registry()
        assert set(registry) == {"wbc", "chess", "tax"}

    def test_paper_shapes_recorded(self):
        registry = dataset_registry()
        assert registry["wbc"].paper_size == 699
        assert registry["wbc"].paper_arity == 11
        assert registry["chess"].paper_size == 28056
        assert registry["chess"].paper_arity == 7

    def test_load_dataset_by_name(self):
        relation = load_dataset("wbc", n_rows=120)
        assert relation.n_rows == 120
        assert relation.arity == 11

    def test_load_dataset_default_size_is_scaled(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.2")
        relation = load_dataset("tax")
        assert relation.n_rows == scaled(dataset_registry()["tax"].default_size)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DataGenerationError):
            load_dataset("nope")

    def test_spec_load(self):
        spec = dataset_registry()["chess"]
        assert spec.load(n_rows=80).n_rows == 80
