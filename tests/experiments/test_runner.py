"""Unit tests for the experiment timing runner and reporting helpers."""

import pytest

from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import AlgorithmRun, ExperimentResult, run_algorithms
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B"],
        [(1, "x"), (1, "x"), (2, "y"), (2, "y")],
    )


class TestRunAlgorithms:
    def test_one_record_per_algorithm(self, relation):
        records = run_algorithms(
            "figX", relation, 2, {"dbsize": 4}, algorithms=("cfdminer", "fastcfd")
        )
        assert [record.algorithm for record in records] == ["cfdminer", "fastcfd"]

    def test_records_carry_parameters_and_counts(self, relation):
        (record,) = run_algorithms(
            "figX", relation, 2, {"dbsize": 4, "k": 2}, algorithms=("fastcfd",)
        )
        assert record.parameters == {"dbsize": 4, "k": 2}
        assert record.n_cfds == record.n_constant + record.n_variable
        assert record.seconds >= 0

    def test_pooled_sweep_reuses_one_session_across_points(self, relation):
        from repro.serve import SessionPool

        pool = SessionPool()
        for support in (1, 2):
            run_algorithms(
                "figX", relation, support, {"k": support},
                algorithms=("fastcfd",), pool=pool,
            )
        info = pool.info()
        assert info["sessions"] == 1
        assert info["hits"] == 1 and info["misses"] == 1
        session = pool.session(relation)
        # Both sweep points shared the k-independent provider build.
        assert session.cache_info()["closed_difference_sets"]["misses"] == 1

    def test_store_round_trips_across_runner_invocations(self, relation, tmp_path):
        from repro.serve import CacheStore

        store = CacheStore(tmp_path / "cache")
        first = run_algorithms(
            "figX", relation, 2, {}, algorithms=("fastcfd",), store=store
        )
        assert len(store) > 0
        # A second invocation (a fresh "process") warm-starts from the store
        # and reports the identical cover.
        second = run_algorithms(
            "figX", relation, 2, {}, algorithms=("fastcfd",),
            store=CacheStore(tmp_path / "cache"),
        )
        assert second[0].n_cfds == first[0].n_cfds

    def test_labels_override_names(self, relation):
        (record,) = run_algorithms(
            "figX", relation, 2, {}, algorithms=("cfdminer",),
            labels={"cfdminer": "CFDMiner(2)"},
        )
        assert record.algorithm == "CFDMiner(2)"

    def test_as_row_flattens(self, relation):
        (record,) = run_algorithms(
            "figX", relation, 2, {"dbsize": 4}, algorithms=("fastcfd",)
        )
        row = record.as_row()
        assert row["algorithm"] == "fastcfd"
        assert row["dbsize"] == 4
        assert "seconds" in row and "cfds" in row


class TestExperimentResult:
    def test_rows_series_and_table(self, relation):
        result = ExperimentResult(figure="figX", description="demo")
        for size in (2, 4):
            for record in run_algorithms(
                "figX", relation.head(size), 1, {"dbsize": size}, algorithms=("fastcfd",)
            ):
                result.add(record)
        assert len(result.rows()) == 2
        series = result.series("fastcfd", "dbsize")
        assert [x for x, _ in series] == [2, 4]
        assert result.algorithms() == ["fastcfd"]
        table = result.to_table()
        assert "figX" in table and "dbsize" in table

    def test_series_on_counts(self, relation):
        result = ExperimentResult(figure="figX", description="demo")
        for record in run_algorithms("figX", relation, 1, {"k": 1}, algorithms=("fastcfd",)):
            result.add(record)
        assert result.series("fastcfd", "k", y_key="cfds")[0][1] == result.runs[0].n_cfds


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table([{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_missing_keys(self):
        table = format_table([{"a": 1}, {"b": 2}])
        assert "a" in table and "b" in table

    def test_format_table_explicit_columns(self):
        table = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_format_series(self):
        text = format_series([(1, 0.5), (2, 0.7)], "k", "seconds")
        assert "k" in text and "seconds" in text and "0.7" in text
