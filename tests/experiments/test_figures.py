"""Smoke tests for the per-figure experiment definitions (tiny workloads).

The real sweeps live in ``benchmarks/``; here every figure function is run at
a deliberately tiny size to verify that it assembles the right algorithms,
parameters and output structure.
"""

import pytest

from repro.experiments import figures


class TestSyntheticFigures:
    def test_figure5_contains_all_algorithm_variants(self):
        result = figures.figure5(sizes=[60])
        assert set(result.algorithms()) == {
            "cfdminer", "ctane", "naivefast", "fastcfd", "cfdminer(2)"
        }
        assert all(run.parameters["dbsize"] == 60 for run in result.runs)

    def test_figure6_counts_only_fastcfd(self):
        result = figures.figure6(sizes=[60])
        assert result.algorithms() == ["fastcfd"]
        assert all(run.n_cfds == run.n_constant + run.n_variable for run in result.runs)

    def test_figure7_excludes_ctane_beyond_cutoff(self):
        result = figures.figure7(arities=[7, 9], db_size=60, ctane_max_arity=7)
        by_arity = {}
        for run in result.runs:
            by_arity.setdefault(run.parameters["arity"], set()).add(run.algorithm)
        assert "ctane" in by_arity[7]
        assert "ctane" not in by_arity[9]

    def test_figure8_sweeps_support(self):
        result = figures.figure8(ks=[2, 4], db_size=60)
        assert sorted({run.parameters["k"] for run in result.runs}) == [2, 4]

    def test_figure9_counts_decrease_with_k(self):
        result = figures.figure9(ks=[2, 8], db_size=80)
        series = dict(result.series("fastcfd", "k", y_key="cfds"))
        assert series[8] <= series[2]

    def test_figure10_sweeps_cf(self):
        result = figures.figure10(cfs=[0.5, 0.7], db_size=60, k=2)
        assert sorted({run.parameters["cf"] for run in result.runs}) == [0.5, 0.7]


class TestRealDataFigures:
    @pytest.mark.parametrize(
        "figure, algorithms",
        [
            (figures.figure11, {"ctane", "fastcfd"}),
            (figures.figure12, {"ctane", "fastcfd"}),
            (figures.figure13, {"ctane", "fastcfd"}),
            (figures.figure14, {"fastcfd"}),
            (figures.figure15, {"fastcfd"}),
            (figures.figure16, {"fastcfd"}),
        ],
    )
    def test_dataset_sweeps_run(self, figure, algorithms, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        result = figure(ks=[4])
        assert set(result.algorithms()) == algorithms
        assert all(run.parameters["k"] == 4 for run in result.runs)


class TestAblations:
    def test_closed_set_ablation(self):
        result = figures.ablation_closed_sets(sizes=[60])
        assert set(result.algorithms()) == {"naivefast", "fastcfd"}

    def test_ctane_pruning_ablation_same_counts(self):
        result = figures.ablation_ctane_pruning(sizes=[60])
        counts = {}
        for run in result.runs:
            counts.setdefault(run.parameters["dbsize"], set()).add(run.n_cfds)
        assert all(len(values) == 1 for values in counts.values())

    def test_constant_delegation_ablation_same_counts(self):
        result = figures.ablation_constant_delegation(sizes=[60])
        totals = {run.algorithm: run.n_cfds for run in result.runs}
        assert totals["fastcfd(cfdminer)"] == totals["fastcfd(inline)"]
