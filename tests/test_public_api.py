"""Tests for the package-level public API surface."""

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        r = repro.Relation.from_rows(
            ["CC", "AC", "CT"],
            [
                ("01", "908", "MH"),
                ("01", "908", "MH"),
                ("01", "212", "NYC"),
                ("44", "131", "EDI"),
                ("44", "131", "EDI"),
            ],
        )
        result = repro.discover(r, min_support=2, algorithm="fastcfd")
        assert any(str(cfd) == "([AC] -> CT, (908 || MH))" for cfd in result.cfds)

    def test_discover_constant_helpers(self):
        r = repro.Relation.from_rows(["A", "B"], [(1, 2), (1, 2), (3, 4)])
        constant = repro.discover_constant_cfds(r, 2)
        assert all(cfd.is_constant for cfd in constant)

    def test_fd_baselines_exposed(self):
        r = repro.Relation.from_rows(["A", "B"], [(1, 2), (1, 2), (3, 4)])
        assert set(repro.Tane(r).discover()) == set(repro.FastFDAlgorithm(r).discover())
