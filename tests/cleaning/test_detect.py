"""Unit tests for CFD-based violation detection."""

import pytest

from repro.cleaning.detect import detect_violations, dirty_rows
from repro.core.cfd import CFD, cfd_from_fd
from repro.core.pattern import WILDCARD
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["AC", "CT", "ST"],
        [
            ("908", "MH", "NJ"),
            ("908", "MH", "NJ"),
            ("908", "XX", "NJ"),   # violates (AC -> CT, (908 || MH))
            ("212", "NYC", "NY"),
            ("212", "BRX", "NY"),  # violates (AC -> CT, (_ || _)) pairs
        ],
    )


@pytest.fixture
def rules():
    return [
        CFD(("AC",), ("908",), "CT", "MH"),
        cfd_from_fd(("AC",), "CT"),
        cfd_from_fd(("CT",), "AC"),  # satisfied
    ]


class TestDetectViolations:
    def test_total_and_per_rule_counts(self, relation, rules):
        report = detect_violations(relation, rules)
        assert report.total_violations > 0
        assert len(report.per_cfd) == 3
        assert report.per_cfd[rules[2]] == []

    def test_violated_cfds(self, relation, rules):
        report = detect_violations(relation, rules)
        assert rules[0] in report.violated_cfds
        assert rules[2] not in report.violated_cfds

    def test_dirty_rows(self, relation, rules):
        report = detect_violations(relation, rules)
        assert 2 in report.dirty_rows
        assert report.dirty_rows <= set(range(relation.n_rows))

    def test_is_clean_on_satisfied_rules(self, relation, rules):
        report = detect_violations(relation, [rules[2]])
        assert report.is_clean
        assert report.dirty_rows == set()

    def test_summary_mentions_counts(self, relation, rules):
        summary = detect_violations(relation, rules).summary()
        assert "violations" in summary
        assert "tuples affected" in summary

    def test_max_violations_cap(self, relation, rules):
        report = detect_violations(relation, rules, max_violations_per_cfd=1)
        assert all(len(found) <= 1 for found in report.per_cfd.values())

    def test_dirty_rows_helper(self, relation, rules):
        assert dirty_rows(relation, rules) == detect_violations(relation, rules).dirty_rows

    def test_clean_relation_report(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (1, 2)])
        report = detect_violations(r, [cfd_from_fd(("A",), "B")])
        assert report.is_clean
        assert report.total_violations == 0


class TestDiscoverAndDetect:
    def test_profile_then_audit(self):
        from repro.api import DiscoveryRequest
        from repro.cleaning.detect import discover_and_detect

        clean = Relation.from_rows(
            ["AC", "CT"],
            [("908", "MH"), ("908", "MH"), ("908", "MH"), ("212", "NYC")],
        )
        dirty = clean.with_value(1, "CT", "XX")
        result, report = discover_and_detect(
            clean, dirty, DiscoveryRequest(min_support=2, constant_only=True)
        )
        assert result.algorithm == "cfdminer"  # capability-driven default
        assert all(cfd.is_constant for cfd in result.cfds)
        assert not report.is_clean
        assert 1 in report.dirty_rows

    def test_default_request_is_constant_only(self):
        from repro.cleaning.detect import discover_and_detect

        clean = Relation.from_rows(
            ["AC", "CT"], [("908", "MH"), ("908", "MH"), ("212", "NYC")]
        )
        result, report = discover_and_detect(clean, clean)
        assert all(cfd.is_constant for cfd in result.cfds)
        assert report.is_clean


class TestSessionFastPath:
    def test_session_report_identical(self, relation, rules):
        from repro.api import Profiler

        plain = detect_violations(relation, rules)
        with_session = detect_violations(relation, rules, session=Profiler(relation))
        assert {c: len(v) for c, v in plain.per_cfd.items()} == {
            c: len(v) for c, v in with_session.per_cfd.items()
        }
        assert plain.dirty_rows == with_session.dirty_rows

    def test_session_must_profile_the_relation(self, relation, rules):
        from repro.api import Profiler
        from repro.exceptions import DiscoveryError

        other = Relation.from_rows(["AC", "CT", "ST"], [("1", "2", "3")])
        with pytest.raises(DiscoveryError):
            detect_violations(relation, rules, session=Profiler(other))

    def test_clean_wildcard_rules_use_partition_cache(self, relation):
        from repro.api import Profiler

        profiler = Profiler(relation)
        report = detect_violations(
            relation, [cfd_from_fd(("CT",), "AC")], session=profiler
        )
        assert report.is_clean
        assert profiler.cache_info()["attribute_partitions"]["misses"] > 0

    def test_ctane_and_discover_and_detect_share_one_cache(self):
        """Acceptance criterion: attribute-partition hits across the session."""
        from repro.api import DiscoveryRequest, Profiler
        from repro.cleaning.detect import discover_and_detect

        sample = Relation.from_rows(
            ["AC", "CT", "ST"],
            [
                ("908", "MH", "NJ"),
                ("908", "MH", "NJ"),
                ("212", "NYC", "NY"),
                ("212", "NYC", "NY"),
            ],
        )
        profiler = Profiler(sample)
        request = DiscoveryRequest(min_support=2, algorithm="ctane")
        profiler.run(request)  # CTANE warms the shared partition cache
        result, report = discover_and_detect(
            sample, sample, request, session=profiler
        )
        assert result.cfds
        info = profiler.cache_info()["attribute_partitions"]
        assert info["hits"] > 0
