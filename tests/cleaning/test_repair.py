"""Unit tests for the greedy CFD repair engine."""

import pytest

from repro.cleaning.detect import detect_violations
from repro.cleaning.repair import repair
from repro.core.cfd import CFD, cfd_from_fd
from repro.core.fastcfd import FastCFD
from repro.core.validation import satisfies_all
from repro.datagen.noise import inject_errors
from repro.datagen.tax import generate_tax
from repro.exceptions import RepairError
from repro.relational.relation import Relation


class TestRepairBasics:
    def test_invalid_max_passes(self):
        r = Relation.from_rows(["A", "B"], [(1, 2)])
        with pytest.raises(RepairError):
            repair(r, [], max_passes=0)

    def test_clean_relation_untouched(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (1, 2)])
        result = repair(r, [cfd_from_fd(("A",), "B")])
        assert result.clean
        assert result.n_changes == 0
        assert result.relation == r

    def test_constant_rule_repair(self):
        r = Relation.from_rows(
            ["AC", "CT"],
            [("908", "MH"), ("908", "XX"), ("212", "NYC")],
        )
        rule = CFD(("AC",), ("908",), "CT", "MH")
        result = repair(r, [rule])
        assert result.clean
        assert result.relation.value(1, "CT") == "MH"
        assert result.n_changes == 1

    def test_variable_rule_repair_uses_majority(self):
        r = Relation.from_rows(
            ["A", "B"],
            [(1, "x"), (1, "x"), (1, "y"), (2, "z")],
        )
        result = repair(r, [cfd_from_fd(("A",), "B")])
        assert result.clean
        assert result.relation.value(2, "B") == "x"

    def test_change_log_records_old_and_new_values(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, "y")])
        result = repair(r, [cfd_from_fd(("A",), "B")])
        assert result.n_changes == 1
        row, attribute, old, new = result.changed_cells[0]
        assert attribute == "B"
        assert old != new

    def test_summary_mentions_status(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, "y")])
        assert "clean" in repair(r, [cfd_from_fd(("A",), "B")]).summary()

    def test_interacting_rules_need_multiple_passes(self):
        # Repairing B with the first rule creates input for the second rule.
        r = Relation.from_rows(
            ["A", "B", "C"],
            [(1, "b", "c"), (1, "b", "c"), (1, "x", "c"), (1, "b", "z")],
        )
        rules = [
            CFD(("A",), (1,), "B", "b"),
            CFD(("B",), ("b",), "C", "c"),
        ]
        result = repair(r, rules)
        assert result.clean
        assert satisfies_all(result.relation, rules)


class TestRepairEndToEnd:
    def test_discovered_rules_repair_typo_errors(self):
        """Typo-style errors never collide with rule patterns, so the greedy
        RHS repair converges to a relation satisfying every rule."""
        clean = generate_tax(db_size=300, seed=7)
        rules = [
            cfd for cfd in FastCFD(clean, min_support=6).discover()
            if cfd.is_constant and len(cfd.lhs) >= 1
        ]
        assert rules, "expected some constant rules to be discovered"
        dirty, _ = inject_errors(
            clean, 0.01, seed=8, attributes=["CT", "STR"], use_domain_values=False
        )
        result = repair(dirty, rules)
        report = detect_violations(result.relation, rules)
        assert report.is_clean
        assert result.clean

    def test_domain_value_errors_never_increase_violations(self):
        """Domain-value swaps can put rules in conflict; the engine must then
        terminate gracefully (bounded passes) without making things worse."""
        clean = generate_tax(db_size=300, seed=7)
        rules = [
            cfd for cfd in FastCFD(clean, min_support=6).discover()
            if cfd.is_constant and len(cfd.lhs) >= 1
        ]
        dirty, _ = inject_errors(clean, 0.01, seed=8, attributes=["CT", "STR"])
        before = detect_violations(dirty, rules).total_violations
        result = repair(dirty, rules, max_passes=3)
        after = detect_violations(result.relation, rules).total_violations
        assert after <= before
        assert result.passes <= 3
