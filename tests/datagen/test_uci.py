"""Unit tests for the UCI data-set stand-ins (WBC and Chess)."""

import pytest

from repro.core.cfd import cfd_from_fd
from repro.core.validation import satisfies
from repro.datagen.uci import (
    CHESS_ATTRIBUTES,
    WBC_ATTRIBUTES,
    chess,
    wisconsin_breast_cancer,
)
from repro.exceptions import DataGenerationError


class TestWisconsinBreastCancer:
    def test_default_shape_matches_uci(self):
        relation = wisconsin_breast_cancer()
        assert relation.n_rows == 699
        assert relation.arity == 11
        assert relation.attributes == WBC_ATTRIBUTES

    def test_feature_domains_are_one_to_ten(self):
        relation = wisconsin_breast_cancer(n_rows=300)
        for attribute in WBC_ATTRIBUTES[1:-1]:
            values = set(relation.column(attribute))
            assert values <= set(range(1, 11))

    def test_class_is_binary(self):
        relation = wisconsin_breast_cancer(n_rows=300)
        assert set(relation.active_domain("class")) <= {"benign", "malignant"}

    def test_class_is_function_of_features(self):
        relation = wisconsin_breast_cancer(n_rows=300)
        fd = cfd_from_fd(("cell_size", "cell_shape", "bare_nuclei"), "class")
        assert satisfies(relation, fd)

    def test_deterministic(self):
        assert wisconsin_breast_cancer(n_rows=100) == wisconsin_breast_cancer(n_rows=100)

    def test_invalid_size(self):
        with pytest.raises(DataGenerationError):
            wisconsin_breast_cancer(n_rows=0)


class TestChess:
    def test_shape(self):
        relation = chess(n_rows=500)
        assert relation.n_rows == 500
        assert relation.attributes == CHESS_ATTRIBUTES

    def test_files_and_ranks_are_board_coordinates(self):
        relation = chess(n_rows=300)
        assert set(relation.active_domain("wk_file")) <= set("abcdefgh")
        assert set(relation.active_domain("wk_rank")) <= set(range(1, 9))

    def test_kings_are_never_adjacent_or_overlapping(self):
        relation = chess(n_rows=300)
        files = "abcdefgh"
        for row in relation.rows():
            wkf, wkr, _, _, bkf, bkr = (
                files.index(row[0]), row[1], row[2], row[3], files.index(row[4]), row[5]
            )
            assert max(abs(wkf - bkf), abs(wkr - bkr)) > 1

    def test_depth_is_function_of_position(self):
        relation = chess(n_rows=400)
        fd = cfd_from_fd(tuple(CHESS_ATTRIBUTES[:-1]), "depth")
        assert satisfies(relation, fd)

    def test_class_labels_come_from_the_krk_label_set(self):
        relation = chess(n_rows=400)
        labels = set(relation.active_domain("depth"))
        assert labels <= {
            "draw", "zero", "one", "two", "three", "four", "five", "six", "seven",
            "eight", "nine", "ten", "eleven", "twelve", "thirteen", "fourteen",
            "fifteen", "sixteen",
        }

    def test_deterministic(self):
        assert chess(n_rows=200) == chess(n_rows=200)

    def test_invalid_size(self):
        with pytest.raises(DataGenerationError):
            chess(n_rows=0)
