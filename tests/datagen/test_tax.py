"""Unit tests for the Tax/cust synthetic data generator."""

import pytest

from repro.core.cfd import CFD, cfd_from_fd
from repro.core.pattern import WILDCARD
from repro.core.validation import satisfies
from repro.datagen.tax import BASE_ATTRIBUTES, TaxGenerator, generate_tax
from repro.exceptions import DataGenerationError


class TestParameters:
    def test_invalid_db_size(self):
        with pytest.raises(DataGenerationError):
            TaxGenerator(db_size=0)

    def test_invalid_arity(self):
        with pytest.raises(DataGenerationError):
            TaxGenerator(db_size=10, arity=5)

    def test_invalid_cf(self):
        with pytest.raises(DataGenerationError):
            TaxGenerator(db_size=10, cf=0.0)
        with pytest.raises(DataGenerationError):
            TaxGenerator(db_size=10, cf=1.5)

    def test_attribute_names_base(self):
        assert TaxGenerator(db_size=10).attribute_names() == list(BASE_ATTRIBUTES)

    def test_attribute_names_extended(self):
        names = TaxGenerator(db_size=10, arity=10).attribute_names()
        assert len(names) == 10
        assert names[:7] == list(BASE_ATTRIBUTES)
        assert names[7:] == ["X01", "X02", "X03"]


class TestGeneratedData:
    def test_shape(self):
        relation = generate_tax(db_size=200, arity=9, cf=0.5, seed=1)
        assert relation.n_rows == 200
        assert relation.arity == 9

    def test_deterministic_given_seed(self):
        assert generate_tax(100, seed=3) == generate_tax(100, seed=3)

    def test_different_seeds_differ(self):
        assert generate_tax(100, seed=3) != generate_tax(100, seed=4)

    def test_country_codes_are_binary(self):
        relation = generate_tax(db_size=300, seed=0)
        assert set(relation.active_domain("CC")) <= {"01", "44"}

    def test_embedded_conditional_dependency_us_area_to_city(self):
        relation = generate_tax(db_size=400, seed=0)
        phi = CFD(("CC", "AC"), ("01", WILDCARD), "CT", WILDCARD)
        assert satisfies(relation, phi)

    def test_embedded_conditional_dependency_uk_zip_to_street(self):
        relation = generate_tax(db_size=400, seed=0)
        phi = CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD)
        assert satisfies(relation, phi)

    def test_dependencies_are_genuinely_conditional(self):
        """The embedded rules must not hold unconditionally (else they are FDs)."""
        relation = generate_tax(db_size=800, seed=0)
        assert not satisfies(relation, cfd_from_fd(("ZIP",), "STR"))

    def test_cf_controls_domain_sizes(self):
        small_cf = generate_tax(db_size=500, cf=0.3, seed=1)
        large_cf = generate_tax(db_size=500, cf=0.9, seed=1)
        assert small_cf.domain_size("PN") < large_cf.domain_size("PN")

    def test_extra_dependent_attribute_follows_area_code(self):
        relation = generate_tax(db_size=400, arity=9, seed=2)
        # X01 is a function of AC within the US partition by construction.
        phi = CFD(("CC", "AC"), ("01", WILDCARD), "X01", WILDCARD)
        assert satisfies(relation, phi)

    def test_dbsize_scales_rows_not_schema(self):
        small = generate_tax(db_size=50, seed=5)
        large = generate_tax(db_size=150, seed=5)
        assert small.arity == large.arity == 7
        assert large.n_rows == 3 * small.n_rows
