"""Tests for the wide-relation generator."""

from collections import Counter

import pytest

from repro.datagen.wide import WideRelationGenerator, wide_relation
from repro.exceptions import DataGenerationError


def functional(relation, lhs_names, rhs_name):
    """``True`` iff ``lhs_names → rhs_name`` holds exactly on the relation."""
    mapping = {}
    lhs_cols = [relation.column(a) for a in lhs_names]
    rhs_col = relation.column(rhs_name)
    for row in range(relation.n_rows):
        key = tuple(col[row] for col in lhs_cols)
        if mapping.setdefault(key, rhs_col[row]) != rhs_col[row]:
            return False
    return True


class TestShape:
    def test_dimensions_and_names(self):
        gen = WideRelationGenerator(n_cols=30, n_rows=96, seed=0, n_fds=3, n_cfds=2)
        relation = gen.generate()
        assert relation.arity == 30
        assert relation.n_rows == 96
        names = relation.attributes
        assert names[0] == "COND"
        assert names[-2:] == ("C00", "C01")
        assert tuple(gen.attribute_names()) == names

    def test_supports_hundred_plus_columns(self):
        relation = wide_relation(n_cols=150, n_rows=48, seed=1)
        assert relation.arity == 150
        assert relation.n_rows == 48

    def test_no_condition_column_without_cfds(self):
        gen = WideRelationGenerator(n_cols=12, n_rows=24, seed=0, n_fds=1, n_cfds=0)
        assert "COND" not in gen.attribute_names()


class TestDeterminism:
    def test_same_seed_same_relation(self):
        first = wide_relation(n_cols=40, n_rows=48, seed=9, n_fds=2, n_cfds=2)
        second = wide_relation(n_cols=40, n_rows=48, seed=9, n_fds=2, n_cfds=2)
        assert first.attributes == second.attributes
        assert list(first.rows()) == list(second.rows())

    def test_different_seed_different_relation(self):
        first = wide_relation(n_cols=40, n_rows=48, seed=0)
        second = wide_relation(n_cols=40, n_rows=48, seed=1)
        assert list(first.rows()) != list(second.rows())


class TestEmbeddedDependencies:
    def test_embedded_fds_hold(self):
        gen = WideRelationGenerator(n_cols=30, n_rows=96, seed=0, n_fds=3, n_cfds=2)
        relation = gen.generate()
        for lhs, rhs in gen.embedded_fds():
            assert functional(relation, lhs, rhs), f"{lhs} -> {rhs}"

    def test_embedded_cfds_hold_only_in_group(self):
        gen = WideRelationGenerator(n_cols=30, n_rows=96, seed=0, n_fds=3, n_cfds=2)
        relation = gen.generate()
        cond = relation.column("COND")
        for group, source, target in gen.embedded_cfds():
            src_col = relation.column(source)
            tgt_col = relation.column(target)
            in_group = [r for r in range(relation.n_rows) if cond[r] == group]
            assert len(in_group) >= gen.min_support
            mapping = {}
            for r in in_group:
                assert mapping.setdefault(src_col[r], tgt_col[r]) == tgt_col[r]
            outside = [tgt_col[r] for r in range(relation.n_rows) if cond[r] != group]
            # Row-unique sentinels outside the group: no accidental support.
            assert len(set(outside)) == len(outside)

    def test_base_column_is_not_globally_unique(self):
        gen = WideRelationGenerator(n_cols=30, n_rows=96, seed=0, n_fds=3, n_cfds=2)
        relation = gen.generate()
        counts = Counter(relation.column("B000"))
        assert max(counts.values()) >= 2


class TestMinSupport:
    def test_no_accidental_frequent_value(self):
        """At the derived threshold the only frequent values are the
        condition groups — every other column's counts stay below it."""
        gen = WideRelationGenerator(n_cols=30, n_rows=96, seed=0, n_fds=3, n_cfds=2)
        relation = gen.generate()
        k = gen.min_support
        for name in relation.attributes:
            counts = Counter(relation.column(name))
            if name == "COND":
                assert all(count >= k for count in counts.values())
            else:
                assert max(counts.values()) < k, name


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_cols=1, n_rows=10),
            dict(n_cols=10, n_rows=0),
            dict(n_cols=10, n_rows=10, n_fds=-1),
            dict(n_cols=10, n_rows=10, rows_per_value=0),
            dict(n_cols=10, n_rows=10, n_chains=1),
            dict(n_cols=4, n_rows=10, n_fds=3, n_cfds=2),
            dict(n_cols=30, n_rows=8, n_cfds=2),
        ],
    )
    def test_rejected_configurations(self, kwargs):
        with pytest.raises(DataGenerationError):
            WideRelationGenerator(**kwargs)
