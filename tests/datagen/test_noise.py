"""Unit tests for error injection."""

import pytest

from repro.datagen.noise import inject_errors
from repro.exceptions import DataGenerationError
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B"],
        [(i % 3, f"v{i % 4}") for i in range(40)],
    )


class TestInjectErrors:
    def test_zero_rate_returns_same_relation(self, relation):
        dirty, cells = inject_errors(relation, 0.0)
        assert dirty == relation
        assert cells == []

    def test_invalid_rate_rejected(self, relation):
        with pytest.raises(DataGenerationError):
            inject_errors(relation, 1.5)

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(DataGenerationError):
            inject_errors(relation, 0.1, attributes=["Z"])

    def test_number_of_errors_matches_rate(self, relation):
        _, cells = inject_errors(relation, 0.1, seed=1)
        assert len(cells) == int(round(0.1 * relation.n_rows * relation.arity))

    def test_modified_cells_actually_changed(self, relation):
        dirty, cells = inject_errors(relation, 0.1, seed=2)
        assert cells
        for row, attribute in cells:
            assert dirty.value(row, attribute) != relation.value(row, attribute)

    def test_untouched_cells_preserved(self, relation):
        dirty, cells = inject_errors(relation, 0.05, seed=3)
        touched = set(cells)
        for row in range(relation.n_rows):
            for attribute in relation.attributes:
                if (row, attribute) not in touched:
                    assert dirty.value(row, attribute) == relation.value(row, attribute)

    def test_restrict_to_attributes(self, relation):
        _, cells = inject_errors(relation, 0.2, seed=4, attributes=["B"])
        assert cells
        assert all(attribute == "B" for _, attribute in cells)

    def test_deterministic_given_seed(self, relation):
        first = inject_errors(relation, 0.1, seed=5)
        second = inject_errors(relation, 0.1, seed=5)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_typo_only_mode(self, relation):
        dirty, cells = inject_errors(
            relation, 0.1, seed=6, use_domain_values=False, typo_marker="!!"
        )
        for row, attribute in cells:
            assert str(dirty.value(row, attribute)).endswith("!!")
