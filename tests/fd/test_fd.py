"""Unit tests for repro.fd.fd (FD objects, satisfaction, g3 error, oracle)."""

import pytest

from repro.exceptions import DependencyError
from repro.fd.fd import FD, fd_error, fd_holds, is_minimal_fd, minimal_fds_bruteforce
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B", "C"],
        [
            (1, "x", 10),
            (1, "x", 20),
            (2, "y", 10),
            (3, "y", 30),
        ],
    )


class TestFDObject:
    def test_lhs_is_sorted(self):
        assert FD(("B", "A"), "C").lhs == ("A", "B")

    def test_duplicate_lhs_rejected(self):
        with pytest.raises(DependencyError):
            FD(("A", "A"), "B")

    def test_trivial_detection(self):
        assert FD(("A",), "A").is_trivial
        assert not FD(("A",), "B").is_trivial

    def test_str(self):
        assert str(FD(("A", "B"), "C")) == "[A, B] -> C"

    def test_equality_is_order_insensitive(self):
        assert FD(("A", "B"), "C") == FD(("B", "A"), "C")


class TestSatisfaction:
    def test_holding_fd(self, relation):
        assert fd_holds(relation, FD(("A",), "B"))

    def test_violated_fd(self, relation):
        assert not fd_holds(relation, FD(("B",), "A"))

    def test_empty_lhs_constant_column(self):
        r = Relation.from_rows(["A", "B"], [(1, "k"), (2, "k")])
        assert fd_holds(r, FD((), "B"))
        assert not fd_holds(r, FD((), "A"))

    def test_error_zero_for_exact_fd(self, relation):
        assert fd_error(relation, FD(("A",), "B")) == 0.0

    def test_error_counts_minimum_deletions(self, relation):
        # B -> A: group 'y' has values {2, 3}; deleting one of four tuples fixes it.
        assert fd_error(relation, FD(("B",), "A")) == pytest.approx(0.25)

    def test_error_on_empty_relation(self):
        empty = Relation(["A", "B"], [[], []])
        assert fd_error(empty, FD(("A",), "B")) == 0.0


class TestMinimality:
    def test_minimal_fd(self, relation):
        assert is_minimal_fd(relation, FD(("A",), "B"))

    def test_non_minimal_due_to_subset(self, relation):
        assert not is_minimal_fd(relation, FD(("A", "C"), "B"))

    def test_trivial_never_minimal(self, relation):
        assert not is_minimal_fd(relation, FD(("A",), "A"))

    def test_bruteforce_returns_only_minimal_fds(self, relation):
        for fd in minimal_fds_bruteforce(relation):
            assert is_minimal_fd(relation, fd)

    def test_bruteforce_known_fd_present(self, relation):
        assert FD(("A",), "B") in minimal_fds_bruteforce(relation)

    def test_bruteforce_respects_max_lhs(self, relation):
        for fd in minimal_fds_bruteforce(relation, max_lhs=1):
            assert len(fd.lhs) <= 1
