"""Unit tests for the classical FD discoverers (TANE and FastFD)."""

import pytest

from repro.fd.fastfd import FastFD, discover_fds_fastfd
from repro.fd.fd import FD, is_minimal_fd, minimal_fds_bruteforce
from repro.fd.tane import Tane, discover_fds_tane
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B", "C", "D"],
        [
            (1, "x", 10, "k"),
            (1, "x", 20, "k"),
            (2, "y", 10, "k"),
            (3, "y", 30, "k"),
            (3, "y", 30, "k"),
        ],
    )


class TestTane:
    def test_finds_known_fd(self, relation):
        assert FD(("A",), "B") in set(Tane(relation).discover())

    def test_finds_constant_column(self, relation):
        assert FD((), "D") in set(Tane(relation).discover())

    def test_output_is_minimal(self, relation):
        for fd in Tane(relation).discover():
            assert is_minimal_fd(relation, fd)

    def test_matches_bruteforce(self, relation):
        assert set(Tane(relation).discover()) == minimal_fds_bruteforce(relation)

    def test_max_lhs_size_limits_output(self, relation):
        limited = Tane(relation, max_lhs_size=1).discover()
        assert all(len(fd.lhs) <= 2 for fd in limited)

    def test_wrapper(self, relation):
        assert set(discover_fds_tane(relation)) == set(Tane(relation).discover())

    def test_counts_candidates(self, relation):
        tane = Tane(relation)
        tane.discover()
        assert tane.candidates_checked > 0


class TestFastFD:
    def test_finds_known_fd(self, relation):
        assert FD(("A",), "B") in set(FastFD(relation).discover())

    def test_finds_constant_column(self, relation):
        assert FD((), "D") in set(FastFD(relation).discover())

    def test_output_is_minimal(self, relation):
        for fd in FastFD(relation).discover():
            assert is_minimal_fd(relation, fd)

    def test_matches_bruteforce(self, relation):
        assert set(FastFD(relation).discover()) == minimal_fds_bruteforce(relation)

    def test_matches_tane(self, relation):
        assert set(FastFD(relation).discover()) == set(Tane(relation).discover())

    def test_reordering_does_not_change_output(self, relation):
        with_reordering = set(FastFD(relation, dynamic_reordering=True).discover())
        without = set(FastFD(relation, dynamic_reordering=False).discover())
        assert with_reordering == without

    def test_wrapper(self, relation):
        assert set(discover_fds_fastfd(relation)) == set(FastFD(relation).discover())


class TestKeyLikeRelations:
    def test_unique_column_determines_everything(self):
        r = Relation.from_rows(
            ["K", "V", "W"],
            [(1, "a", "p"), (2, "a", "q"), (3, "b", "p")],
        )
        tane_fds = set(Tane(r).discover())
        fastfd_fds = set(FastFD(r).discover())
        assert tane_fds == fastfd_fds
        assert FD(("K",), "V") in tane_fds
        assert FD(("K",), "W") in tane_fds

    def test_duplicate_rows_only(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (1, 2), (1, 2)])
        fds = set(Tane(r).discover())
        # Both columns are constant: the empty LHS determines each of them.
        assert FD((), "A") in fds and FD((), "B") in fds
        assert set(FastFD(r).discover()) == fds


class TestTaneSession:
    def test_session_partitions_shared_and_output_unchanged(self):
        from repro.api import Profiler

        r = Relation.from_rows(
            ["A", "B", "C"],
            [(1, 1, "x"), (1, 1, "x"), (2, 3, "x"), (2, 3, "y")],
        )
        profiler = Profiler(r)
        with_session = set(Tane(r, session=profiler).discover())
        assert with_session == set(Tane(r).discover())
        info = profiler.cache_info()["attribute_partitions"]
        assert info["misses"] > 0
        Tane(r, session=profiler).discover()
        assert profiler.cache_info()["attribute_partitions"]["hits"] > 0
