"""Unit tests for repro.fd.covers (minimal hypergraph covers)."""

import pytest

from repro.fd.covers import covers, is_minimal_cover, minimal_covers


class TestCovers:
    def test_covers_true(self):
        assert covers({1, 3}, [frozenset({1, 2}), frozenset({3})])

    def test_covers_false(self):
        assert not covers({1}, [frozenset({1, 2}), frozenset({3})])

    def test_empty_family_always_covered(self):
        assert covers(set(), [])

    def test_minimal_cover_true(self):
        family = [frozenset({1, 2}), frozenset({3})]
        assert is_minimal_cover({1, 3}, family)
        assert is_minimal_cover({2, 3}, family)

    def test_minimal_cover_false_for_superset(self):
        family = [frozenset({1, 2}), frozenset({3})]
        assert not is_minimal_cover({1, 2, 3}, family)

    def test_minimal_cover_false_when_not_covering(self):
        assert not is_minimal_cover({1}, [frozenset({2})])


class TestMinimalCoversEnumeration:
    def test_simple_family(self):
        family = [frozenset({0, 1}), frozenset({2})]
        found = set(minimal_covers(family, [0, 1, 2]))
        assert found == {frozenset({0, 2}), frozenset({1, 2})}

    def test_empty_family_yields_empty_cover(self):
        assert list(minimal_covers([], [0, 1])) == [frozenset()]

    def test_family_with_empty_member_has_no_cover(self):
        assert list(minimal_covers([frozenset()], [0, 1])) == []

    def test_attributes_outside_family_never_used(self):
        family = [frozenset({0})]
        found = set(minimal_covers(family, [0, 1, 2]))
        assert found == {frozenset({0})}

    def test_all_covers_are_minimal(self):
        family = [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})]
        for cover in minimal_covers(family, [0, 1, 2, 3]):
            assert is_minimal_cover(cover, family)

    def test_reordering_does_not_change_result_set(self):
        family = [frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 3})]
        with_reordering = set(minimal_covers(family, [0, 1, 2, 3], dynamic_reordering=True))
        without = set(minimal_covers(family, [0, 1, 2, 3], dynamic_reordering=False))
        assert with_reordering == without

    def test_no_duplicates(self):
        family = [frozenset({0, 1}), frozenset({1, 2})]
        found = list(minimal_covers(family, [0, 1, 2]))
        assert len(found) == len(set(found))

    def test_exhaustive_against_bruteforce(self):
        from itertools import combinations

        family = [frozenset({0, 1}), frozenset({2, 3}), frozenset({1, 3})]
        universe = [0, 1, 2, 3]
        expected = set()
        for size in range(len(universe) + 1):
            for subset in combinations(universe, size):
                if is_minimal_cover(set(subset), family):
                    expected.add(frozenset(subset))
        assert set(minimal_covers(family, universe)) == expected
