"""Property-based tests: TANE ≡ FastFD ≡ brute force on random relations."""

from hypothesis import given, settings, strategies as st

from repro.fd.fastfd import FastFD
from repro.fd.fd import is_minimal_fd, minimal_fds_bruteforce
from repro.fd.tane import Tane
from repro.relational.relation import Relation


def small_relations(max_rows: int = 7, n_cols: int = 4, domain: int = 2):
    names = [f"A{i}" for i in range(n_cols)]
    return st.lists(
        st.tuples(*[st.integers(0, domain - 1) for _ in range(n_cols)]),
        min_size=1,
        max_size=max_rows,
    ).map(lambda rows: Relation.from_rows(names, rows))


@settings(max_examples=40, deadline=None)
@given(relation=small_relations())
def test_tane_equals_fastfd(relation):
    assert set(Tane(relation).discover()) == set(FastFD(relation).discover())


@settings(max_examples=30, deadline=None)
@given(relation=small_relations(max_rows=6, n_cols=3, domain=2))
def test_tane_equals_bruteforce(relation):
    assert set(Tane(relation).discover()) == minimal_fds_bruteforce(relation)


@settings(max_examples=30, deadline=None)
@given(relation=small_relations(max_rows=6, n_cols=3, domain=3))
def test_fastfd_output_is_sound(relation):
    for fd in FastFD(relation).discover():
        assert is_minimal_fd(relation, fd)
