"""Unit tests for repro.fd.difference_sets."""

import numpy as np
import pytest

from repro.fd.difference_sets import (
    difference_sets,
    difference_sets_wrt,
    minimal_difference_sets_wrt,
    minimal_sets,
)
from repro.relational.relation import Relation


@pytest.fixture
def matrix() -> np.ndarray:
    relation = Relation.from_rows(
        ["A", "B", "C"],
        [
            (1, "x", 10),
            (1, "x", 20),
            (1, "y", 20),
            (2, "y", 20),
        ],
    )
    return relation.encoded_matrix()


class TestDifferenceSets:
    def test_all_pairs(self, matrix):
        expected = {
            frozenset({2}),          # rows 0-1 differ on C only
            frozenset({1, 2}),       # rows 0-2
            frozenset({0, 1, 2}),    # rows 0-3
            frozenset({1}),          # rows 1-2
            frozenset({0, 1}),       # rows 1-3
            frozenset({0}),          # rows 2-3
        }
        assert difference_sets(matrix) == expected

    def test_duplicate_rows_produce_no_empty_set(self):
        matrix = np.zeros((3, 2), dtype=np.int32)
        assert difference_sets(matrix) == set()

    def test_row_subset(self, matrix):
        assert difference_sets(matrix, rows=[0, 1]) == {frozenset({2})}

    def test_empty_matrix(self):
        assert difference_sets(np.empty((0, 3), dtype=np.int32)) == set()

    def test_wide_matrix_served_by_packbits_path(self):
        # 70 attributes exceeds the int64 bitmask ceiling; the packbits
        # path serves it through the same interface instead of raising.
        matrix = np.zeros((3, 70), dtype=np.int32)
        matrix[1, 5] = 1
        matrix[2, 5] = 1
        matrix[2, 69] = 2
        assert difference_sets(matrix) == {
            frozenset({5}),
            frozenset({69}),
            frozenset({5, 69}),
        }

    def test_wide_matrix_wrt_keeps_empty_member(self):
        # A pair differing only on the RHS must contribute frozenset().
        matrix = np.zeros((2, 70), dtype=np.int32)
        matrix[1, 7] = 1
        assert difference_sets_wrt(matrix, 7) == {frozenset()}


class TestDifferenceSetsWrt:
    def test_only_pairs_differing_on_rhs(self, matrix):
        # w.r.t. A (index 0): pairs (0,3), (1,3), (2,3)
        assert difference_sets_wrt(matrix, 0) == {
            frozenset({1, 2}),
            frozenset({1}),
            frozenset(),
        }

    def test_rhs_attribute_removed_from_sets(self, matrix):
        for diff in difference_sets_wrt(matrix, 2):
            assert 2 not in diff

    def test_minimal_variant(self, matrix):
        assert minimal_difference_sets_wrt(matrix, 0) == {frozenset()}
        # Rows 1 and 2 differ on B only, so the empty set dominates for RHS B.
        assert minimal_difference_sets_wrt(matrix, 1) == {frozenset()}

    def test_minimal_variant_on_row_subset(self, matrix):
        # Restricted to rows {0, 2, 3} the pairs differing on B also differ on
        # C (and possibly A), so {C} is the unique minimal difference set.
        assert minimal_difference_sets_wrt(matrix, 1, rows=[0, 2, 3]) == {
            frozenset({2})
        }

    def test_row_subset(self, matrix):
        assert difference_sets_wrt(matrix, 2, rows=[0, 1]) == {frozenset()}


class TestMinimalSets:
    def test_keeps_only_minimal_members(self):
        family = {frozenset({1}), frozenset({1, 2}), frozenset({3})}
        assert minimal_sets(family) == {frozenset({1}), frozenset({3})}

    def test_empty_set_dominates_everything(self):
        family = {frozenset(), frozenset({1})}
        assert minimal_sets(family) == {frozenset()}

    def test_idempotent(self):
        family = {frozenset({1}), frozenset({2})}
        assert minimal_sets(minimal_sets(family)) == family


class TestBlockedBitmasks:
    """The blocked pairwise computation agrees with a naive per-row scan."""

    @staticmethod
    def _naive(matrix, require=None):
        unique = np.unique(matrix, axis=0)
        weights = np.int64(1) << np.arange(unique.shape[1], dtype=np.int64)
        masks = set()
        for i in range(unique.shape[0] - 1):
            diffs = unique[i + 1:] != unique[i]
            if require is not None:
                diffs = diffs[diffs[:, require]]
            masks.update(int(c) for c in (diffs.astype(np.int64) @ weights))
        masks.discard(0)
        return masks

    def test_agreement_on_random_matrices(self):
        from repro.fd.difference_sets import _pairwise_difference_bitmasks

        rng = np.random.default_rng(7)
        for trial in range(25):
            n = int(rng.integers(0, 40))
            arity = int(rng.integers(1, 8))
            matrix = rng.integers(0, 3, size=(n, arity)).astype(np.int32)
            require = None if trial % 2 else int(rng.integers(0, arity))
            for block_rows in (1, 3, None):
                got = _pairwise_difference_bitmasks(
                    matrix, require, block_rows=block_rows
                )
                assert got == self._naive(matrix, require)

    def test_block_boundaries_do_not_lose_pairs(self, matrix):
        from repro.fd.difference_sets import _pairwise_difference_bitmasks

        full = _pairwise_difference_bitmasks(matrix)
        for block_rows in (1, 2, 3, 100):
            assert _pairwise_difference_bitmasks(matrix, block_rows=block_rows) == full


class TestPackbitsPath:
    """The width-unbounded packbits path agrees with the bitmask fast path."""

    @staticmethod
    def _via_bitrows(matrix, require=None, exclude=None, block_rows=None):
        from repro.fd.difference_sets import _pairwise_difference_bitrows

        arity = matrix.shape[1]
        packed = _pairwise_difference_bitrows(matrix, require, block_rows)
        out = set()
        for row in packed:
            bits = np.unpackbits(np.frombuffer(row, dtype=np.uint8), count=arity)
            attrs = {int(a) for a in np.nonzero(bits)[0] if a != exclude}
            out.add(frozenset(attrs))
        return out

    def test_agreement_with_bitmask_path_on_random_matrices(self):
        rng = np.random.default_rng(11)
        for trial in range(20):
            n = int(rng.integers(0, 30))
            arity = int(rng.integers(1, 10))
            matrix = rng.integers(0, 3, size=(n, arity)).astype(np.int32)
            require = None if trial % 2 else int(rng.integers(0, arity))
            expected = difference_sets(matrix) if require is None else {
                member | {require}
                for member in difference_sets_wrt(matrix, require)
            }
            for block_rows in (1, 4, None):
                got = self._via_bitrows(matrix, require, block_rows=block_rows)
                assert got == expected

    def test_block_boundaries_do_not_lose_pairs_wide(self):
        rng = np.random.default_rng(13)
        matrix = rng.integers(0, 2, size=(12, 70)).astype(np.int32)
        full = self._via_bitrows(matrix)
        for block_rows in (1, 2, 5, 100):
            assert self._via_bitrows(matrix, block_rows=block_rows) == full
