"""Property tests: the label-array Partition agrees with the reference one.

The reference is the original tuple-of-tuples implementation, preserved in
``repro.relational._reference``.  Agreement is checked through the
normalised ``classes`` view (sorted tuples of row indices, ordered by first
element), which both implementations define identically.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.pattern import WILDCARD
from repro.relational._reference import (
    ReferencePartition,
    reference_attribute_partition,
    reference_pattern_partition,
)
from repro.relational.partition import (
    Partition,
    attribute_partition,
    pattern_partition,
)


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
def matrices(max_rows: int = 12, max_cols: int = 4, min_cols: int = 1, domain: int = 3):
    return st.tuples(
        st.integers(1, max_rows),
        st.integers(min_cols, max_cols),
        st.integers(0, 10 ** 6),
    ).map(
        lambda args: np.random.default_rng(args[2]).integers(
            0, domain, size=(args[0], args[1])
        ).astype(np.int32)
    )


def partition_pairs(max_rows: int = 10):
    """A random disjoint family of row classes over 0..n-1, as both impls."""

    def build(args):
        n, seed = args
        rng = np.random.default_rng(seed)
        assignment = rng.integers(-1, n // 2 + 1, size=n)
        groups = {}
        for row, cls in enumerate(assignment.tolist()):
            if cls >= 0:
                groups.setdefault(cls, []).append(row)
        classes = list(groups.values())
        return Partition(classes, n_rows=n), ReferencePartition(classes, n_rows=n)

    return st.tuples(st.integers(1, max_rows), st.integers(0, 10 ** 6)).map(build)


def assert_same(label_partition: Partition, reference: ReferencePartition):
    assert label_partition.classes == reference.classes
    assert label_partition.n_classes == reference.n_classes
    assert label_partition.n_rows == reference.n_rows
    assert label_partition.covered_rows == reference.covered_rows
    assert label_partition.error() == reference.error()


# ---------------------------------------------------------------------- #
# constructions from matrices
# ---------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(matrix=matrices())
def test_attribute_partition_matches_reference(matrix):
    arity = matrix.shape[1]
    for attrs in ([0], list(range(arity)), [arity - 1], []):
        assert_same(
            attribute_partition(matrix, attrs),
            reference_attribute_partition(matrix, attrs),
        )


@settings(max_examples=60, deadline=None)
@given(matrix=matrices(), data=st.data())
def test_pattern_partition_matches_reference(matrix, data):
    arity = matrix.shape[1]
    attrs = list(range(arity))
    pattern = [
        data.draw(st.one_of(st.just(WILDCARD), st.integers(0, 2)), label=f"p{a}")
        for a in attrs
    ]
    assert_same(
        pattern_partition(matrix, attrs, pattern),
        reference_pattern_partition(matrix, attrs, pattern),
    )


# ---------------------------------------------------------------------- #
# operations on random partitions
# ---------------------------------------------------------------------- #
@settings(max_examples=80, deadline=None)
@given(pair=partition_pairs())
def test_stripped_matches_reference(pair):
    label_partition, reference = pair
    assert_same(label_partition.stripped(), reference.stripped())
    # n_rows is stable under stripping; covered_rows is what shrinks.
    assert label_partition.stripped().n_rows == label_partition.n_rows


@settings(max_examples=80, deadline=None)
@given(left=partition_pairs(), right=partition_pairs())
def test_product_matches_reference(left, right):
    label_left, reference_left = left
    label_right, reference_right = right
    assert_same(
        label_left.product(label_right),
        reference_left.product(reference_right),
    )


@settings(max_examples=80, deadline=None)
@given(left=partition_pairs(), right=partition_pairs())
def test_refines_matches_reference(left, right):
    label_left, reference_left = left
    label_right, reference_right = right
    assert label_left.refines(label_right) == reference_left.refines(reference_right)


@settings(max_examples=40, deadline=None)
@given(matrix=matrices(max_rows=10, max_cols=3, min_cols=2))
def test_product_of_attribute_partitions_is_joint_partition(matrix):
    joint = attribute_partition(matrix, [0, 1])
    product = attribute_partition(matrix, [0]).product(
        attribute_partition(matrix, [1])
    )
    assert product == joint


# ---------------------------------------------------------------------- #
# vectorized column helpers
# ---------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(matrix=matrices(max_cols=3, min_cols=2))
def test_column_constant_on_classes_matches_class_counts(matrix):
    lhs = attribute_partition(matrix, [0])
    rhs_column = matrix[:, 1]
    expected = all(
        len({int(rhs_column[row]) for row in cls}) == 1 for cls in lhs.classes
    )
    assert lhs.column_constant_on_classes(rhs_column) == expected
    # ... and agrees with CTANE's O(1) count-comparison formulation: the FD
    # holds iff adding the RHS attribute splits no class.
    joint = attribute_partition(matrix, [0, 1])
    assert lhs.column_constant_on_classes(rhs_column) == (
        lhs.n_classes == joint.n_classes
    )


@settings(max_examples=60, deadline=None)
@given(matrix=matrices(max_cols=2), code=st.integers(0, 2))
def test_column_all_equal(matrix, code):
    # the full attribute partition covers every row, so column_all_equal
    # reduces to a plain whole-column test
    partition = attribute_partition(matrix, [0])
    expected = bool((matrix[:, 0] == code).all())
    assert partition.column_all_equal(matrix[:, 0], code) == expected
