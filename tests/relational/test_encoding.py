"""Unit tests for repro.relational.encoding."""

import numpy as np
import pytest

from repro.exceptions import RelationError
from repro.relational.encoding import ColumnEncoder, RelationEncoding


class TestColumnEncoder:
    def test_codes_follow_first_appearance(self):
        encoder = ColumnEncoder()
        assert encoder.encode("x") == 0
        assert encoder.encode("y") == 1
        assert encoder.encode("x") == 0
        assert encoder.cardinality == 2

    def test_decode_round_trip(self):
        encoder = ColumnEncoder()
        for value in ["a", "b", "c"]:
            code = encoder.encode(value)
            assert encoder.decode(code) == value

    def test_decode_out_of_range(self):
        with pytest.raises(RelationError):
            ColumnEncoder().decode(0)

    def test_encode_existing_unknown_raises(self):
        with pytest.raises(RelationError):
            ColumnEncoder().encode_existing("missing")

    def test_try_encode_returns_minus_one_for_unknown(self):
        encoder = ColumnEncoder()
        encoder.encode("x")
        assert encoder.try_encode("x") == 0
        assert encoder.try_encode("nope") == -1

    def test_contains_and_values(self):
        encoder = ColumnEncoder()
        encoder.encode("x")
        assert "x" in encoder
        assert "y" not in encoder
        assert encoder.values() == ("x",)

    def test_encode_column_array(self):
        encoder = ColumnEncoder()
        array = encoder.encode_column(["p", "q", "p"])
        assert array.dtype == np.int32
        assert array.tolist() == [0, 1, 0]


class TestRelationEncoding:
    def test_from_columns_shape(self):
        encoding = RelationEncoding.from_columns([["a", "b"], ["x", "x"]])
        assert encoding.n_rows == 2
        assert encoding.arity == 2
        assert encoding.matrix.shape == (2, 2)

    def test_column_and_cardinality(self):
        encoding = RelationEncoding.from_columns([["a", "b", "a"], ["x", "x", "y"]])
        assert encoding.column(0).tolist() == [0, 1, 0]
        assert encoding.cardinality(0) == 2
        assert encoding.cardinality(1) == 2

    def test_decode_and_encode_value(self):
        encoding = RelationEncoding.from_columns([["a", "b"]])
        assert encoding.decode_value(0, 1) == "b"
        assert encoding.encode_value(0, "a") == 0
        assert encoding.encode_value(0, "zzz") == -1

    def test_decode_row(self):
        encoding = RelationEncoding.from_columns([["a", "b"], ["x", "y"]])
        assert encoding.decode_row(encoding.matrix[1]) == ("b", "y")

    def test_inconsistent_column_lengths_raise(self):
        with pytest.raises(RelationError):
            RelationEncoding.from_columns([["a"], ["x", "y"]])

    def test_mismatched_encoder_count_raises(self):
        with pytest.raises(RelationError):
            RelationEncoding(np.zeros((2, 2), dtype=np.int32), [ColumnEncoder()])

    def test_non_2d_matrix_rejected(self):
        with pytest.raises(RelationError):
            RelationEncoding(np.zeros(3, dtype=np.int32), [ColumnEncoder()])
