"""Unit tests for repro.relational.partition."""

import numpy as np
import pytest

from repro.core.pattern import WILDCARD
from repro.relational.partition import (
    Partition,
    attribute_partition,
    matching_rows,
    pattern_partition,
)
from repro.relational.relation import Relation


@pytest.fixture
def matrix() -> np.ndarray:
    relation = Relation.from_rows(
        ["A", "B", "C"],
        [
            ("a", "x", 1),
            ("a", "x", 2),
            ("a", "y", 1),
            ("b", "y", 1),
            ("b", "y", 1),
        ],
    )
    return relation.encoded_matrix()


class TestPartitionBasics:
    def test_normalisation_sorts_classes(self):
        partition = Partition([[3, 1], [0, 2]])
        assert partition.classes == ((0, 2), (1, 3))

    def test_counts(self):
        partition = Partition([[0, 1], [2]])
        assert partition.n_classes == 2
        assert partition.n_rows == 3

    def test_empty_classes_dropped(self):
        assert Partition([[], [1]]).n_classes == 1

    def test_equality_and_hash(self):
        assert Partition([[0, 1]]) == Partition([[1, 0]])
        assert hash(Partition([[0, 1]])) == hash(Partition([[1, 0]]))

    def test_stripped_removes_singletons(self):
        stripped = Partition([[0, 1], [2], [3, 4]]).stripped()
        assert stripped.classes == ((0, 1), (3, 4))

    def test_n_rows_uses_explicit_relation_size(self):
        partition = Partition([[0, 1], [2]], n_rows=10)
        assert partition.n_rows == 10
        assert partition.covered_rows == 3

    def test_stripping_keeps_n_rows_and_shrinks_covered_rows(self):
        partition = Partition([[0, 1], [2], [3, 4]], n_rows=5)
        stripped = partition.stripped()
        assert stripped.n_rows == 5          # relation size is stable
        assert stripped.covered_rows == 4    # the singleton dropped out
        assert partition.covered_rows == 5

    def test_labels_round_trip(self):
        partition = Partition([[0, 2], [1]], n_rows=4)
        assert partition.labels.tolist() == [0, 1, 0, -1]
        rebuilt = Partition.from_labels(partition.labels, 4, 2)
        assert rebuilt == partition
        assert rebuilt.covered_index.tolist() == [0, 1, 2]
        assert rebuilt.covered_labels.tolist() == [0, 1, 0]

    def test_error_measure(self):
        assert Partition([[0, 1], [2]]).error() == 1

    def test_repr(self):
        assert "n_classes=1" in repr(Partition([[0, 1]]))


class TestRefinesAndProduct:
    def test_refines_true(self):
        finer = Partition([[0], [1], [2, 3]])
        coarser = Partition([[0, 1], [2, 3]])
        assert finer.refines(coarser)

    def test_refines_false(self):
        assert not Partition([[0, 1]]).refines(Partition([[0], [1]]))

    def test_refines_requires_row_coverage(self):
        assert not Partition([[0, 5]]).refines(Partition([[0], [1]]))

    def test_product_intersects_classes(self):
        left = Partition([[0, 1, 2], [3, 4]])
        right = Partition([[0, 1], [2, 3, 4]])
        product = left.product(right)
        assert product.classes == ((0, 1), (2,), (3, 4))

    def test_product_drops_rows_missing_from_either_side(self):
        left = Partition([[0, 1, 2]])
        right = Partition([[1, 2]])
        assert left.product(right).classes == ((1, 2),)


class TestAttributePartition:
    def test_single_attribute(self, matrix):
        partition = attribute_partition(matrix, [0])
        assert partition.classes == ((0, 1, 2), (3, 4))

    def test_two_attributes(self, matrix):
        partition = attribute_partition(matrix, [0, 1])
        assert partition.classes == ((0, 1), (2,), (3, 4))

    def test_empty_attribute_list_single_class(self, matrix):
        assert attribute_partition(matrix, []).n_classes == 1

    def test_empty_matrix(self):
        empty = np.empty((0, 2), dtype=np.int32)
        assert attribute_partition(empty, [0]).n_classes == 0


class TestPatternPartition:
    def test_constant_pattern_filters_rows(self, matrix):
        partition = pattern_partition(matrix, [0], [0])  # A = 'a'
        assert partition.classes == ((0, 1, 2),)

    def test_wildcard_behaves_like_attribute_partition(self, matrix):
        assert pattern_partition(matrix, [0], [WILDCARD]) == attribute_partition(
            matrix, [0]
        )

    def test_mixed_pattern(self, matrix):
        # A = 'a' (code 0), group by B
        partition = pattern_partition(matrix, [0, 1], [0, WILDCARD])
        assert partition.classes == ((0, 1), (2,))

    def test_no_matching_rows(self, matrix):
        assert pattern_partition(matrix, [0], [99]).n_classes == 0

    def test_length_mismatch_raises(self, matrix):
        with pytest.raises(ValueError):
            pattern_partition(matrix, [0, 1], [0])

    def test_matching_rows_ignores_wildcards(self, matrix):
        rows = matching_rows(matrix, [0, 1], [0, WILDCARD])
        assert rows.tolist() == [0, 1, 2]
