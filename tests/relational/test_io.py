"""Unit tests for repro.relational.io (CSV round-trips)."""

import pytest

from repro.exceptions import RelationError
from repro.relational.io import read_csv, write_csv
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["CC", "AC", "CT"],
        [("01", "908", "MH"), ("44", "131", "EDI")],
    )


class TestCsvRoundTrip:
    def test_write_then_read(self, relation, tmp_path):
        path = tmp_path / "cust.csv"
        write_csv(relation, path)
        loaded = read_csv(path)
        assert loaded == relation

    def test_write_creates_parent_directories(self, relation, tmp_path):
        path = tmp_path / "nested" / "deep" / "cust.csv"
        write_csv(relation, path)
        assert path.exists()

    def test_read_without_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,2\n3,4\n", encoding="utf-8")
        loaded = read_csv(path, has_header=False, attribute_names=["A", "B"])
        assert loaded.to_rows() == [("1", "2"), ("3", "4")]

    def test_read_without_header_requires_names(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,2\n", encoding="utf-8")
        with pytest.raises(RelationError):
            read_csv(path, has_header=False)

    def test_explicit_names_override_header(self, relation, tmp_path):
        path = tmp_path / "cust.csv"
        write_csv(relation, path)
        loaded = read_csv(path, attribute_names=["X", "Y", "Z"])
        assert loaded.attributes == ("X", "Y", "Z")

    def test_limit_rows(self, relation, tmp_path):
        path = tmp_path / "cust.csv"
        write_csv(relation, path)
        assert read_csv(path, limit=1).n_rows == 1

    def test_custom_delimiter(self, relation, tmp_path):
        path = tmp_path / "cust.tsv"
        write_csv(relation, path, delimiter=";")
        loaded = read_csv(path, delimiter=";")
        assert loaded == relation

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A,B\n1,2\n\n3,4\n", encoding="utf-8")
        assert read_csv(path).n_rows == 2

    def test_values_are_stripped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A,B\n 1 , 2 \n", encoding="utf-8")
        assert read_csv(path).row(0) == ("1", "2")
