"""Unit tests for repro.relational.schema."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import Attribute, Schema


class TestSchemaConstruction:
    def test_basic_names(self):
        schema = Schema(["A", "B", "C"])
        assert schema.names == ("A", "B", "C")
        assert schema.arity == 3
        assert len(schema) == 3

    def test_attributes_expose_index(self):
        schema = Schema(["A", "B"])
        assert schema.attributes == (Attribute("A", 0), Attribute("B", 1))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", "A"])

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", 3])

    def test_empty_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", ""])

    def test_iteration_and_containment(self):
        schema = Schema(["A", "B"])
        assert list(schema) == ["A", "B"]
        assert "A" in schema
        assert "Z" not in schema

    def test_equality_and_hash(self):
        assert Schema(["A", "B"]) == Schema(["A", "B"])
        assert Schema(["A", "B"]) != Schema(["B", "A"])
        assert hash(Schema(["A"])) == hash(Schema(["A"]))


class TestSchemaTranslation:
    def test_index_of_name(self):
        schema = Schema(["A", "B", "C"])
        assert schema.index_of("B") == 1

    def test_index_of_attribute_object(self):
        schema = Schema(["A", "B"])
        assert schema.index_of(Attribute("B", 1)) == 1

    def test_index_of_integer_passthrough(self):
        schema = Schema(["A", "B"])
        assert schema.index_of(1) == 1

    def test_index_of_unknown_name_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).index_of("Z")

    def test_index_of_out_of_range_int_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).index_of(5)

    def test_index_of_invalid_type_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).index_of(3.5)

    def test_name_of(self):
        schema = Schema(["A", "B"])
        assert schema.name_of(1) == "B"
        assert schema.name_of("A") == "A"

    def test_indices_and_names_of(self):
        schema = Schema(["A", "B", "C"])
        assert schema.indices_of(["C", "A"]) == (2, 0)
        assert schema.names_of([2, 0]) == ("C", "A")

    def test_sorted_indices(self):
        schema = Schema(["A", "B", "C"])
        assert schema.sorted_indices(["C", "A"]) == (0, 2)


class TestSchemaDerivation:
    def test_project_keeps_requested_order(self):
        schema = Schema(["A", "B", "C"])
        assert schema.project(["C", "A"]).names == ("C", "A")

    def test_complement(self):
        schema = Schema(["A", "B", "C"])
        assert schema.complement(["B"]) == ("A", "C")
        assert schema.complement([]) == ("A", "B", "C")
