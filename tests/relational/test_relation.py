"""Unit tests for repro.relational.relation."""

import pytest

from repro.exceptions import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def small() -> Relation:
    return Relation.from_rows(
        ["A", "B", "C"],
        [("a", "x", 1), ("a", "y", 2), ("b", "x", 1)],
    )


class TestConstruction:
    def test_from_rows(self, small):
        assert small.n_rows == 3
        assert small.arity == 3
        assert small.attributes == ("A", "B", "C")

    def test_from_rows_wrong_width(self):
        with pytest.raises(RelationError):
            Relation.from_rows(["A", "B"], [("a",)])

    def test_from_columns_mapping(self):
        r = Relation(["A", "B"], {"B": [1, 2], "A": ["x", "y"]})
        assert r.row(0) == ("x", 1)

    def test_from_columns_missing_attribute(self):
        with pytest.raises(RelationError):
            Relation(["A", "B"], {"A": [1]})

    def test_from_columns_wrong_count(self):
        with pytest.raises(RelationError):
            Relation(["A", "B"], [[1, 2]])

    def test_from_columns_inconsistent_lengths(self):
        with pytest.raises(RelationError):
            Relation(["A", "B"], [[1, 2], [1]])

    def test_from_dicts(self):
        r = Relation.from_dicts([{"A": 1, "B": 2}, {"A": 3, "B": 4}])
        assert r.to_rows() == [(1, 2), (3, 4)]

    def test_from_dicts_with_schema(self):
        r = Relation.from_dicts([{"A": 1, "B": 2}], schema=["B", "A"])
        assert r.row(0) == (2, 1)

    def test_from_dicts_missing_key(self):
        with pytest.raises(RelationError):
            Relation.from_dicts([{"A": 1}], schema=["A", "B"])

    def test_from_dicts_empty_without_schema(self):
        with pytest.raises(RelationError):
            Relation.from_dicts([])

    def test_from_encoded_round_trip(self, small):
        rebuilt = Relation.from_encoded(small.schema, small.encoding)
        assert rebuilt == small

    def test_from_encoded_row_subset(self, small):
        subset = Relation.from_encoded(small.schema, small.encoding, row_indices=[2, 0])
        assert subset.to_rows() == [("b", "x", 1), ("a", "x", 1)]


class TestAccessors:
    def test_value_and_row(self, small):
        assert small.value(1, "B") == "y"
        assert small.row(2) == ("b", "x", 1)
        assert small.row_dict(0) == {"A": "a", "B": "x", "C": 1}

    def test_column(self, small):
        assert small.column("A") == ("a", "a", "b")

    def test_rows_iteration(self, small):
        assert list(small.rows()) == small.to_rows()

    def test_to_dicts(self, small):
        assert small.to_dicts()[1] == {"A": "a", "B": "y", "C": 2}

    def test_len_and_repr(self, small):
        assert len(small) == 3
        assert "arity=3" in repr(small)

    def test_equality_and_hash(self, small):
        same = Relation.from_rows(["A", "B", "C"], small.to_rows())
        assert same == small
        assert hash(same) == hash(small)

    def test_pretty_renders_all_columns(self, small):
        text = small.pretty()
        assert "A" in text and "B" in text and "C" in text
        assert "b" in text


class TestDerivedRelations:
    def test_project(self, small):
        projected = small.project(["C", "A"])
        assert projected.attributes == ("C", "A")
        assert projected.row(0) == (1, "a")

    def test_take_and_head(self, small):
        assert small.take([2]).to_rows() == [("b", "x", 1)]
        assert small.head(2).n_rows == 2
        assert small.head(10).n_rows == 3

    def test_sample_is_deterministic(self, small):
        assert small.sample(2, seed=1) == small.sample(2, seed=1)
        assert small.sample(5).n_rows == 3

    def test_with_value(self, small):
        changed = small.with_value(0, "B", "z")
        assert changed.value(0, "B") == "z"
        assert small.value(0, "B") == "x"  # original untouched

    def test_with_value_out_of_range(self, small):
        with pytest.raises(RelationError):
            small.with_value(99, "B", "z")

    def test_concat(self, small):
        doubled = small.concat(small)
        assert doubled.n_rows == 6

    def test_concat_schema_mismatch(self, small):
        other = Relation.from_rows(["X"], [(1,)])
        with pytest.raises(RelationError):
            small.concat(other)

    def test_distinct(self):
        r = Relation.from_rows(["A"], [(1,), (1,), (2,)])
        assert r.distinct().to_rows() == [(1,), (2,)]

    def test_rename(self, small):
        renamed = small.rename({"A": "Z"})
        assert renamed.attributes == ("Z", "B", "C")
        assert renamed.column("Z") == small.column("A")


class TestStatistics:
    def test_active_domain_order(self, small):
        assert small.active_domain("A") == ("a", "b")

    def test_domain_size(self, small):
        assert small.domain_size("A") == 2
        assert small.domain_sizes() == {"A": 2, "B": 2, "C": 2}

    def test_value_counts(self, small):
        assert small.value_counts("A") == {"a": 2, "b": 1}

    def test_encoded_matrix_shape(self, small):
        assert small.encoded_matrix().shape == (3, 3)

    def test_encoding_cached(self, small):
        assert small.encoding is small.encoding
