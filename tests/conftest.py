"""Shared fixtures: the paper's cust relation and small synthetic relations."""

from __future__ import annotations

import pytest

from repro.relational.relation import Relation

#: Attribute names of the cust relation (Fig. 1 of the paper).
CUST_ATTRIBUTES = ("CC", "AC", "PN", "NM", "STR", "CT", "ZIP")

#: A reconstruction of the cust instance r0 of Fig. 1: eight customer tuples,
#: US (CC=01) and UK (CC=44), exhibiting the dependencies discussed in
#: Examples 1-9 of the paper (AC=908 -> CT=MH, for CC=44 ZIP determines STR,
#: t8 breaking AC=131 -> CT=EDI, and [CC,ZIP] -> STR failing globally).
CUST_ROWS = [
    ("01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"),
    ("01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"),
    ("01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"),
    ("01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"),
    ("44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"),
    ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ("44", "908", "4444444", "Ian", "Port PI", "MH", "W1B 1JH"),
    ("01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"),
]


@pytest.fixture(scope="session")
def cust_relation() -> Relation:
    """The cust relation r0 of Fig. 1 (reconstructed)."""
    return Relation.from_rows(list(CUST_ATTRIBUTES), CUST_ROWS)


@pytest.fixture(scope="session")
def tiny_relation() -> Relation:
    """A 3-attribute, 6-row relation small enough for brute-force oracles."""
    rows = [
        ("a", "x", "1"),
        ("a", "x", "1"),
        ("a", "y", "2"),
        ("b", "y", "2"),
        ("b", "y", "2"),
        ("b", "z", "1"),
    ]
    return Relation.from_rows(["A", "B", "C"], rows)


@pytest.fixture(scope="session")
def conditional_relation() -> Relation:
    """A relation where A -> B holds only conditionally (A=1)."""
    rows = [
        (1, 5, 0),
        (1, 5, 1),
        (2, 6, 0),
        (2, 7, 1),
        (2, 7, 0),
    ]
    return Relation.from_rows(["A", "B", "C"], rows)
