"""Unit tests of the circuit breakers and the retry budget.

Clocks are injected so state transitions are tested without sleeping.
"""

import pytest

from repro.serve.fleet.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    CircuitBreaker,
    RetryBudget,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_closed_until_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(fail_threshold=3, reset_seconds=5.0)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == STATE_CLOSED
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(fail_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # never two in a row

    def test_open_admits_one_probe_after_reset(self):
        clock = FakeClock()
        breaker = CircuitBreaker(fail_threshold=1, reset_seconds=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.seconds_until_probe() == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert breaker.state == STATE_HALF_OPEN
        assert not breaker.allow()  # concurrent forwards keep skipping

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(fail_threshold=1, reset_seconds=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(fail_threshold=1, reset_seconds=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 2
        assert not breaker.allow()
        clock.advance(1.0)
        assert not breaker.allow()  # the reset clock restarted at re-open
        clock.advance(1.0)
        assert breaker.allow()

    def test_cancel_probe_releases_the_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(fail_threshold=1, reset_seconds=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.cancel_probe()
        assert breaker.allow()  # a later caller can probe instead

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(fail_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=-1.0)


class TestBreakerBoard:
    def test_boards_isolate_workers(self):
        board = BreakerBoard(fail_threshold=1, reset_seconds=60.0)
        board.record_failure("http://a")
        assert not board.allow("http://a")
        assert board.allow("http://b")
        assert board.states() == [
            ("http://a", STATE_OPEN),
            ("http://b", STATE_CLOSED),
        ]
        assert board.opened_total() == 1

    def test_min_seconds_until_probe(self):
        clock = FakeClock()
        board = BreakerBoard(fail_threshold=1, reset_seconds=10.0, clock=clock)
        assert board.min_seconds_until_probe() == 0.0
        board.record_failure("http://a")
        clock.advance(4.0)
        board.record_failure("http://b")
        assert board.min_seconds_until_probe() == pytest.approx(6.0)


class TestRetryBudget:
    def test_spend_drains_then_fails_fast(self):
        budget = RetryBudget(ratio=0.0, capacity=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent_total == 2
        assert budget.exhausted_total == 1

    def test_requests_refill_up_to_capacity(self):
        budget = RetryBudget(ratio=0.5, capacity=2.0)
        for _ in range(2):
            assert budget.try_spend()
        assert not budget.try_spend()
        budget.on_request()
        assert not budget.try_spend()  # 0.5 tokens is not a whole retry
        budget.on_request()
        assert budget.try_spend()
        for _ in range(100):
            budget.on_request()
        assert budget.tokens == 2.0  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(capacity=0.5)
