"""Fleet-level chaos drills: seeded faults against a real 2-worker fleet.

The tentpole acceptance bar, end to end over real sockets:

* an injected transport reset trips the owner's circuit breaker and fails
  the request over — the served cover is byte-identical to a locally
  computed ground truth, and the breaker/retry/fault counters all show up
  in the router's ``/metrics``;
* injected send latency slows the fleet down but corrupts nothing;
* a worker **killed mid-discovery** (``engine.level:kill``, a real
  ``os._exit`` in a real ``repro-serve`` subprocess) loses the request to
  failover, and the ring successor warm-resumes from the shared store's
  CTANE checkpoint — byte-identical rules, ``repro_resume_levels_skipped_total``
  on the survivor, failover visible on the router.

Every schedule is seeded and the seed is printed, so a failing drill
replays identically with ``pytest -s``.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.api import DiscoveryRequest, Profiler
from repro.serve import CacheStore, DiscoveryService, FaultPlan, SessionPool
from repro.serve.fleet import RouterConfig, RouterThread
from repro.serve.http import ServerConfig, ServerThread
from repro.serve.http.app import relation_from_csv_text

SEED = 7

CSV_BODY = (
    "CC,AC,PN,NM,STR,CT,ZIP\n"
    "01,908,1111111,Mike,Tree Ave.,MH,07974\n"
    "01,908,1111111,Rick,Tree Ave.,MH,07974\n"
    "01,212,2222222,Joe,5th Ave,NYC,01202\n"
    "01,908,2222222,Jim,Elm Str.,MH,07974\n"
    "44,131,3333333,Ben,High St.,EDI,EH4 1DT\n"
    "44,131,4444444,Ian,High St.,EDI,EH4 1DT\n"
    "44,908,4444444,Ian,Port PI,MH,W1B 1JH\n"
    "01,131,2222222,Sean,3rd Str.,UN,01202\n"
)


def local_rules(algorithm, support=2):
    """Ground truth computed outside the fleet — what every drill compares to."""
    relation = relation_from_csv_text(CSV_BODY, has_header=True)
    result = Profiler(relation).run(
        DiscoveryRequest(min_support=support, algorithm=algorithm)
    )
    return json.dumps(result.to_json_dict()["rules"], sort_keys=True)


def request(handle, method, path, body=None, headers=None, timeout=60):
    import http.client

    connection = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def json_request(handle, method, path, document=None, timeout=60):
    body = None if document is None else json.dumps(document).encode()
    status, received, data = request(
        handle, method, path, body=body,
        headers={"Content-Type": "application/json"}, timeout=timeout,
    )
    return status, received, json.loads(data) if data else None


def upload(handle, name="tax"):
    status, _, data = request(
        handle, "POST", f"/v1/relations?name={name}",
        body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
    )
    assert status == 201, data
    return json.loads(data)["fingerprint"]


def metric_value(text, name, **labels):
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest[:1] not in ("{", " "):
            continue
        if labels:
            if not rest.startswith("{"):
                continue
            rendered = rest[1 : rest.index("}")]
            if not all(f'{k}="{v}"' in rendered for k, v in labels.items()):
                continue
        return float(line.rsplit(" ", 1)[1])
    return None


def metrics_text(handle):
    _, _, data = request(handle, "GET", "/metrics")
    return data.decode()


class Fleet:
    """Two in-process workers over one shared store, one (faultable) router."""

    def __init__(self, tmp_path, **router_overrides):
        self.store_dir = tmp_path / "shared-store"
        self.workers = []
        for _ in range(2):
            service = DiscoveryService(
                pool=SessionPool(max_sessions=4, store=CacheStore(self.store_dir)),
                max_workers=2,
            )
            self.workers.append(ServerThread(service, ServerConfig(port=0)).start())
        options = dict(
            port=0,
            workers=[worker.address for worker in self.workers],
            health_interval=0.2,
            fail_after=2,
            request_timeout=30.0,
        )
        options.update(router_overrides)
        self.router = RouterThread(RouterConfig(**options)).start()

    def worker_for(self, url):
        for worker in self.workers:
            if worker.address == url:
                return worker
        raise AssertionError(f"unknown worker url {url}")

    def stop(self):
        self.router.stop()
        for worker in self.workers:
            worker.stop()


class TestTransportFlaps:
    def test_reset_trips_the_breaker_and_fails_over(self, tmp_path):
        # Health probes visit ``fleet.poll``, so this rule deterministically
        # hits the first data-path send: the upload forward to the owner.
        plan = FaultPlan.from_specs(["fleet.send:reset:times=1"], seed=SEED)
        print(f"chaos flap schedule: seed={SEED} rules={plan.describe()['rules']}")
        fleet = Fleet(
            tmp_path,
            faults=plan,
            breaker_fail_threshold=1,
            breaker_reset_seconds=60.0,
            backoff_base=0.01,
        )
        try:
            fingerprint_preview = relation_from_csv_text(
                CSV_BODY, has_header=True
            ).fingerprint()
            owner_url = fleet.router.router.ring.preference(fingerprint_preview)[0]

            fingerprint = upload(fleet.router)
            assert fingerprint == fingerprint_preview

            # The reset evicted the owner; the poller puts it straight back
            # (it is perfectly healthy), but its breaker stays open.
            ring = fleet.router.router.ring
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and len(ring.workers()) < 2:
                time.sleep(0.05)
            assert len(ring.workers()) == 2

            status, _, result = json_request(
                fleet.router, "POST", "/v1/discover",
                {"relation": fingerprint, "support": 2, "algorithm": "fastcfd"},
            )
            assert status == 200, result
            assert json.dumps(result["rules"], sort_keys=True) == local_rules(
                "fastcfd"
            )

            exposition = metrics_text(fleet.router)
            # The discover skipped the open breaker without touching a socket.
            assert metric_value(
                exposition, "repro_fleet_breaker_skips_total", worker=owner_url
            ) >= 1
            assert metric_value(
                exposition, "repro_faults_injected_total",
                point="fleet.send", kind="reset",
            ) == 1
            assert metric_value(
                exposition, "repro_breaker_state", worker=owner_url
            ) == 1.0
            assert metric_value(exposition, "repro_fleet_breaker_opened_total") == 1
            assert metric_value(exposition, "repro_fleet_retries_total") == 1
            assert metric_value(
                exposition, "repro_fleet_failovers_total", worker=owner_url
            ) >= 1

            _, _, health = json_request(fleet.router, "GET", "/healthz")
            assert health["breakers"][owner_url] == 1
            assert health["retry_tokens"] < 10.0
        finally:
            fleet.stop()

    def test_injected_latency_slows_nothing_breaks(self, tmp_path):
        plan = FaultPlan.from_specs(
            ["fleet.send:latency:seconds=0.05"], seed=SEED
        )
        fleet = Fleet(tmp_path, faults=plan)
        try:
            fingerprint = upload(fleet.router)
            status, _, result = json_request(
                fleet.router, "POST", "/v1/discover",
                {"relation": fingerprint, "support": 2, "algorithm": "fastcfd"},
            )
            assert status == 200, result
            assert json.dumps(result["rules"], sort_keys=True) == local_rules(
                "fastcfd"
            )
            assert metric_value(
                metrics_text(fleet.router), "repro_faults_injected_total",
                point="fleet.send", kind="latency",
            ) >= 2  # at least the upload and the discover forwards
        finally:
            fleet.stop()


class WorkerProc:
    """A real ``repro-serve`` subprocess (the kill drill needs a real exit)."""

    LISTENING = re.compile(r"server\.listening address=http://([\d.]+):(\d+)")

    def __init__(self, store_dir, port=0, fault=None, seed=None):
        command = [
            sys.executable, "-m", "repro.serve.http",
            "--port", str(port),
            "--cache-dir", str(store_dir),
            "--workers", "2",
            "--deadline", "60",
        ]
        if fault is not None:
            command += ["--fault", fault, "--fault-seed", str(seed or 0)]
        env = dict(os.environ)
        source_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = source_root + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.lines = []
        self._drain = threading.Thread(target=self._pump, daemon=True)
        self._drain.start()
        self.host = None
        self.port = None

    def _pump(self):
        for line in self.process.stderr:
            self.lines.append(line)

    def wait_ready(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                match = self.LISTENING.search(line)
                if match:
                    self.host, self.port = match.group(1), int(match.group(2))
                    return self
            if self.process.poll() is not None:
                raise AssertionError(f"worker exited early:\n{self.log()}")
            time.sleep(0.05)
        raise AssertionError(f"worker never came up:\n{self.log()}")

    @property
    def address(self):
        return f"http://{self.host}:{self.port}"

    def log(self):
        return "".join(self.lines)

    def kill(self):
        self.process.kill()
        self.process.wait(timeout=30)

    def stop(self):
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)


class TestKillAndResume:
    def test_owner_killed_mid_run_successor_resumes_from_checkpoint(self, tmp_path):
        """The headline drill: SIGKILL-grade death at a lattice level.

        The relation's ring owner is armed with
        ``engine.level:kill:after=1,times=1`` — it durably checkpoints
        level 3, then ``os._exit(137)``s *mid-request*.  The router fails
        the discover over; the successor re-uploads from the router's
        body cache and warm-resumes from the shared store's checkpoint.
        """
        store_dir = tmp_path / "shared-store"
        kill_spec = "engine.level:kill:after=1,times=1"
        print(f"chaos kill schedule: seed={SEED} rule={kill_spec}")

        first = WorkerProc(store_dir).wait_ready()
        second = WorkerProc(store_dir).wait_ready()
        router = None
        workers = [first, second]
        try:
            router = RouterThread(
                RouterConfig(
                    port=0,
                    workers=[first.address, second.address],
                    health_interval=0.2,
                    fail_after=2,
                    request_timeout=60.0,
                    backoff_base=0.01,
                )
            ).start()
            fingerprint = upload(router)
            owner_url = router.router.ring.preference(fingerprint)[0]
            owner = first if first.address == owner_url else second
            survivor = second if owner is first else first

            # Re-arm the owner: same port (same ring position), but now it
            # dies at the second ``engine.level`` checkpoint visit.
            owner.kill()
            armed = WorkerProc(
                store_dir, port=owner.port, fault=kill_spec, seed=SEED
            ).wait_ready()
            workers.append(armed)
            roster = sorted([owner_url, survivor.address])
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if sorted(router.router.ring.workers()) == roster:
                    break
                time.sleep(0.1)
            assert sorted(router.router.ring.workers()) == roster

            status, _, result = json_request(
                router, "POST", "/v1/discover",
                {"relation": fingerprint, "support": 2, "algorithm": "ctane"},
                timeout=120,
            )
            assert status == 200, result
            assert json.dumps(result["rules"], sort_keys=True) == local_rules(
                "ctane"
            )

            # The armed owner really died the hard way, mid-request.
            assert armed.process.wait(timeout=30) == 137
            assert "killing process at engine.level" in armed.log()

            # The survivor resumed from the shared checkpoint...
            survivor_metrics = metrics_text(survivor)
            assert metric_value(survivor_metrics, "repro_resumed_runs_total") >= 1
            assert (
                metric_value(survivor_metrics, "repro_resume_levels_skipped_total")
                >= 2
            )
            # ...and its log shows no unhandled exception along the way.
            assert "Traceback" not in survivor.log()

            # The router saw the death and the handoff.
            router_metrics = metrics_text(router)
            assert metric_value(
                router_metrics, "repro_fleet_failovers_total", worker=owner_url
            ) >= 1
            assert metric_value(router_metrics, "repro_fleet_reuploads_total") >= 1
        finally:
            if router is not None:
                router.stop()
            for worker in workers:
                worker.stop()
