"""Checkpointed discovery: CTANE level snapshots, kill-resume equivalence.

The tentpole acceptance bar: a CTANE run crashed mid-lattice resumes from
its last *completed* level — in the same process (in-memory checkpoints),
or on another worker sharing the cache store (write-through checkpoints) —
and the resumed cover is byte-identical to an undisturbed run, with the
resume observable in the engine stats and the service counters.
"""

import json

import pytest

from repro.api import DiscoveryRequest, Profiler
from repro.core.ctane import CTane
from repro.relational.relation import Relation
from repro.serve import CacheStore, DiscoveryService, FaultPlan, SessionPool
from repro.serve.faults import FaultInjected
from repro.serve.store import pack_ctane_checkpoint, unpack_ctane_checkpoint

ATTRIBUTES = ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]
ROWS = [
    ("01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"),
    ("01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"),
    ("01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"),
    ("01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"),
    ("44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"),
    ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ("44", "908", "4444444", "Ian", "Port PI", "MH", "W1B 1JH"),
    ("01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"),
]


def fresh_relation() -> Relation:
    return Relation.from_rows(list(ATTRIBUTES), [tuple(row) for row in ROWS])


class RecordingCheckpoint:
    """An in-memory checkpoint handle: records saves, replays one state."""

    def __init__(self, preload=None):
        self.saved = []
        self.cleared = 0
        self._preload = preload

    def load(self):
        return self._preload

    def save(self, state):
        self.saved.append(state)

    def clear(self):
        self.cleared += 1


def cover(cfds) -> str:
    return json.dumps(sorted(str(cfd) for cfd in cfds))


class TestEngineCheckpointing:
    def test_levels_snapshot_then_clear_on_completion(self):
        checkpoint = RecordingCheckpoint()
        ctane = CTane(fresh_relation(), 2, checkpoint=checkpoint)
        ctane.discover()
        sizes = [state["size"] for state in checkpoint.saved]
        assert sizes and sizes == sorted(set(sizes))
        assert sizes[0] == 2  # level 1 is cheap; snapshots start at level 2
        assert checkpoint.cleared == 1
        assert ctane.resumed_level is None
        assert ctane.resume_levels_skipped == 0

    @pytest.mark.parametrize("snapshot_index", [0, -1])
    def test_resume_from_any_level_is_byte_identical(self, snapshot_index):
        baseline = CTane(fresh_relation(), 2)
        expected = cover(baseline.discover())

        recorder = RecordingCheckpoint()
        CTane(fresh_relation(), 2, checkpoint=recorder).discover()
        state = recorder.saved[snapshot_index]

        resumed_handle = RecordingCheckpoint(preload=state)
        resumed = CTane(fresh_relation(), 2, checkpoint=resumed_handle)
        assert cover(resumed.discover()) == expected
        assert resumed.resumed_level == state["size"]
        assert resumed.resume_levels_skipped == state["size"] - 1
        assert resumed_handle.cleared == 1
        # The engine does not re-save the level it resumed into.
        assert all(s["size"] > state["size"] for s in resumed_handle.saved)

    def test_resumed_counters_include_the_skipped_work(self):
        recorder = RecordingCheckpoint()
        full = CTane(fresh_relation(), 2, checkpoint=recorder)
        full.discover()
        state = recorder.saved[-1]
        resumed = CTane(
            fresh_relation(), 2, checkpoint=RecordingCheckpoint(preload=state)
        )
        resumed.discover()
        # Counters restored from the checkpoint plus the remaining levels add
        # up to exactly the undisturbed run's totals.
        assert resumed.candidates_checked == full.candidates_checked
        assert resumed.elements_generated == full.elements_generated

    def test_mismatched_incremental_mode_discards_the_checkpoint(self):
        recorder = RecordingCheckpoint()
        CTane(
            fresh_relation(), 2, incremental_partitions=True, checkpoint=recorder
        ).discover()
        state = recorder.saved[-1]
        assert state["incremental"] is True
        resumed = CTane(
            fresh_relation(),
            2,
            incremental_partitions=False,
            checkpoint=RecordingCheckpoint(preload=state),
        )
        resumed.discover()
        assert resumed.resumed_level is None  # stale state was not trusted


class TestCheckpointSerialization:
    def test_pack_unpack_round_trips_through_the_store(self, tmp_path):
        recorder = RecordingCheckpoint()
        CTane(fresh_relation(), 2, checkpoint=recorder).discover()
        state = recorder.saved[-1]
        packed = pack_ctane_checkpoint(state)
        assert packed is not None
        meta, arrays = packed
        store = CacheStore(tmp_path / "cache")
        store.put("fp", "ctane_checkpoint", {"s": 2}, meta=meta, arrays=arrays)
        entry = store.get("fp", "ctane_checkpoint", {"s": 2})
        restored = unpack_ctane_checkpoint(entry)
        assert restored["size"] == state["size"]
        assert restored["counters"] == state["counters"]
        assert cover(restored["results"]) == cover(state["results"])
        assert set(restored["level"]) == set(state["level"])
        assert restored["parent_cplus"] == state["parent_cplus"]

        baseline = cover(CTane(fresh_relation(), 2).discover())
        resumed = CTane(
            fresh_relation(), 2, checkpoint=RecordingCheckpoint(preload=restored)
        )
        assert cover(resumed.discover()) == baseline


class TestProfilerResume:
    REQUEST = DiscoveryRequest(min_support=2, algorithm="ctane")

    def expected_rules(self):
        return json.dumps(
            Profiler(fresh_relation()).run(self.REQUEST).to_json_dict()["rules"]
        )

    def test_crash_then_resume_through_the_shared_store(self, tmp_path):
        store = CacheStore(tmp_path / "shared")
        plan = FaultPlan.from_specs(["engine.level:error:after=1,times=1"])
        victim = Profiler(fresh_relation(), faults=plan)
        victim.attach_store(store)
        with pytest.raises(FaultInjected):
            victim.run(self.REQUEST)
        # The durable checkpoint was persisted before the crash point.
        assert any(
            entry.kind == "ctane_checkpoint"
            for entry in store.load_all(fresh_relation().fingerprint())
        )

        survivor = Profiler(fresh_relation())
        survivor.attach_store(store)
        result = survivor.run(self.REQUEST)
        assert json.dumps(result.to_json_dict()["rules"]) == self.expected_rules()
        extras = result.stats.extras
        assert extras["resume_levels_skipped"] >= 1
        assert extras["resumed_level"] >= 2
        # Completion cleared the durable checkpoint.
        assert not any(
            entry.kind == "ctane_checkpoint"
            for entry in store.load_all(fresh_relation().fingerprint())
        )

    def test_in_memory_resume_without_a_store(self):
        plan = FaultPlan.from_specs(["engine.level:error:after=1,times=1"])
        profiler = Profiler(fresh_relation(), faults=plan)
        with pytest.raises(FaultInjected):
            profiler.run(self.REQUEST)
        assert profiler.checkpoint_info()["entries"] == 1
        result = profiler.run(self.REQUEST)
        assert json.dumps(result.to_json_dict()["rules"]) == self.expected_rules()
        assert result.stats.extras["resume_levels_skipped"] >= 1
        assert profiler.checkpoint_info()["entries"] == 0


class TestServiceResumeCounters:
    def test_failed_over_request_reports_the_resume(self, tmp_path):
        request = DiscoveryRequest(min_support=2, algorithm="ctane")
        store_dir = tmp_path / "shared"
        plan = FaultPlan.from_specs(["engine.level:error:after=1,times=1"])
        relation = fresh_relation()

        with DiscoveryService(
            pool=SessionPool(max_sessions=2, store=CacheStore(store_dir), faults=plan),
            max_workers=2,
            faults=plan,
        ) as victim:
            with pytest.raises(FaultInjected):
                victim.run(relation, request)
            assert victim.stats()["failed"] == 1
            assert victim.stats()["faults"]["injected"] == {"engine.level:error": 1}

        with DiscoveryService(
            pool=SessionPool(max_sessions=2, store=CacheStore(store_dir)),
            max_workers=2,
        ) as survivor:
            result = survivor.run(fresh_relation(), request)
            assert result.counts()["total"] > 0
            resumes = survivor.stats()["resumes"]
            assert resumes["runs"] == 1
            assert resumes["levels_skipped"] >= 1
