"""Crash-safe store recovery: torn writes, quarantine, fsck, startup sweep.

Satellite acceptance bar: every corruption class — truncated header, bad
magic, wrong format version, forbidden dtype, payload-digest mismatch —
degrades to a cold read (``None``) without raising, and structural damage
is quarantined with its reason on record instead of being re-read forever.
"""

import json
import struct

import numpy as np
import pytest

from repro.exceptions import CacheStoreError
from repro.serve import CacheStore, FaultPlan

FP = "fp-recovery"
KIND = "free_closed"
PARAMS = {"k": 2}


def write_entry(store, fingerprint=FP):
    return store.put(
        fingerprint,
        KIND,
        PARAMS,
        meta={"x": 1},
        arrays={"rows": np.arange(64, dtype=np.int64)},
    )


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "cache")


def corrupt_payload(path):
    """Flip the last byte (array payload) — header stays pristine."""
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestTornWrites:
    def test_injected_torn_write_raises_and_leaves_a_torn_file(self, store, tmp_path):
        faulted = CacheStore(
            tmp_path / "cache",
            faults=FaultPlan.from_specs(["store.put:torn_write:fraction=0.5,times=1"]),
        )
        with pytest.raises(CacheStoreError, match="injected torn write"):
            write_entry(faulted)
        # The torn file sits on the final path, visibly truncated.
        files = faulted._entry_files()
        assert len(files) == 1
        torn = files[0]
        healthy = write_entry(CacheStore(tmp_path / "reference"))
        assert torn.stat().st_size < healthy.stat().st_size

    def test_torn_entry_quarantined_on_get(self, store, tmp_path):
        faulted = CacheStore(
            tmp_path / "cache",
            faults=FaultPlan.from_specs(["store.put:torn_write:fraction=0.5,times=1"]),
        )
        with pytest.raises(CacheStoreError):
            write_entry(faulted)
        reader = CacheStore(tmp_path / "cache")
        assert reader.get(FP, KIND, PARAMS) is None
        assert reader.load_failures == 1
        assert reader.quarantined == 1
        assert reader._entry_files() == []
        quarantined = [
            path
            for path in reader.quarantine_dir.iterdir()
            if not path.name.endswith(".reason")
        ]
        assert len(quarantined) == 1
        reason = quarantined[0].with_name(quarantined[0].name + ".reason")
        assert "truncated" in reason.read_text()
        # The next get is a plain miss: nothing left to trip over.
        assert reader.get(FP, KIND, PARAMS) is None
        assert reader.load_failures == 1

    def test_startup_sweep_quarantines_before_serving(self, tmp_path):
        faulted = CacheStore(
            tmp_path / "cache",
            faults=FaultPlan.from_specs(["store.put:torn_write:fraction=0.5,times=1"]),
        )
        with pytest.raises(CacheStoreError):
            write_entry(faulted)
        swept = CacheStore(tmp_path / "cache", sweep=True)
        assert swept.quarantined == 1
        assert swept.load_failures == 0  # cleaned up front, not tripped over
        assert swept.get(FP, KIND, PARAMS) is None
        assert swept.load_failures == 0  # a plain miss now


class TestCorruptionClasses:
    def test_truncated_header_degrades_and_quarantines(self, store):
        path = write_entry(store)
        path.write_bytes(CacheStore.MAGIC + struct.pack("<Q", 10 ** 6) + b"{}")
        assert store.get(FP, KIND, PARAMS) is None
        assert store.load_failures == 1
        assert store.quarantined == 1

    def test_bad_magic_degrades_and_quarantines(self, store):
        path = write_entry(store)
        blob = path.read_bytes()
        path.write_bytes(b"XXXXXXXX" + blob[8:])
        assert store.get(FP, KIND, PARAMS) is None
        assert store.quarantined == 1

    def test_wrong_format_version_degrades_and_quarantines(self, store, tmp_path):
        writer = CacheStore(tmp_path / "cache")
        writer.FORMAT_VERSION = 1  # an entry from an older store
        write_entry(writer)
        assert store.get(FP, KIND, PARAMS) is None
        assert store.quarantined == 1

    def test_forbidden_dtype_degrades_and_quarantines(self, store):
        path = write_entry(store)
        header = {
            "format_version": CacheStore.FORMAT_VERSION,
            "fingerprint": FP,
            "kind": KIND,
            "params": PARAMS,
            "meta": {},
            "arrays": [{"name": "rows", "dtype": "complex128", "shape": [1]}],
            "payload_digest": "00",
        }
        blob = json.dumps(header).encode()
        path.write_bytes(
            CacheStore.MAGIC + struct.pack("<Q", len(blob)) + blob + b"\0" * 16
        )
        assert store.get(FP, KIND, PARAMS) is None
        assert store.quarantined == 1
        reasons = list(store.quarantine_dir.glob("*.reason"))
        assert len(reasons) == 1
        assert "forbidden dtype" in reasons[0].read_text()

    def test_payload_digest_mismatch_degrades_and_quarantines(self, store):
        path = write_entry(store)
        corrupt_payload(path)
        assert store.get(FP, KIND, PARAMS) is None
        assert store.load_failures == 1
        assert store.quarantined == 1
        reasons = list(store.quarantine_dir.glob("*.reason"))
        assert "digest" in reasons[0].read_text()

    def test_load_all_skips_corrupt_keeps_healthy(self, store):
        write_entry(store)
        other = store.put(
            FP, "attribute_partitions", {"attrs": [0]},
            meta={}, arrays={"a": np.arange(4, dtype=np.int32)},
        )
        corrupt_payload(other)
        entries = store.load_all(FP)
        assert [entry.kind for entry in entries] == [KIND]
        assert store.load_failures == 1
        assert store.quarantined == 1


class TestFsck:
    def test_deep_fsck_reports_and_quarantines(self, store):
        write_entry(store, "healthy-fp")
        bad = write_entry(store)
        corrupt_payload(bad)
        report = store.fsck(deep=True)
        assert report["checked"] == 2
        assert report["healthy"] == 1
        assert report["quarantined"] == 1
        assert report["problems"][0]["path"] == str(bad)
        assert "digest" in report["problems"][0]["reason"]
        # The healthy entry still loads, the bad one is gone from the walk.
        assert store.get("healthy-fp", KIND, PARAMS) is not None
        assert store.fsck(deep=True)["checked"] == 1

    def test_shallow_fsck_misses_payload_rot_deep_catches_it(self, store):
        bad = write_entry(store)
        corrupt_payload(bad)
        assert store.fsck(deep=False)["quarantined"] == 0
        assert store.fsck(deep=True)["quarantined"] == 1

    def test_quarantine_preserves_bytes_and_collision_suffixes(self, store):
        path = write_entry(store)
        blob = path.read_bytes()
        store._quarantine(path, "first")
        path.write_bytes(blob)
        store._quarantine(path, "second")
        names = sorted(
            p.name for p in store.quarantine_dir.iterdir()
            if not p.name.endswith(".reason")
        )
        assert len(names) == 2
        assert names[1] == names[0] + ".1"

    def test_info_counts_quarantined(self, store):
        path = write_entry(store)
        corrupt_payload(path)
        store.get(FP, KIND, PARAMS)
        assert store.info()["quarantined"] == 1


class TestStoreFaultPoints:
    def test_injected_get_error_counts_a_load_failure(self, tmp_path):
        store = CacheStore(
            tmp_path / "cache",
            faults=FaultPlan.from_specs(["store.get:error:times=1"]),
        )
        write_entry(store)
        assert store.get(FP, KIND, PARAMS) is None
        assert store.load_failures == 1
        assert store.get(FP, KIND, PARAMS) is not None  # rule spent


class TestCacheFsckCli:
    def test_cli_reports_clean_store(self, tmp_path, capsys):
        from repro.cli import main

        store = CacheStore(tmp_path / "cache")
        write_entry(store)
        code = main(["--cache-dir", str(tmp_path / "cache"), "--cache-fsck"])
        assert code == 0
        err = capsys.readouterr().err
        assert "1 entries checked, 1 healthy, 0 quarantined" in err

    def test_cli_quarantines_and_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        store = CacheStore(tmp_path / "cache")
        path = write_entry(store)
        corrupt_payload(path)
        code = main(["--cache-dir", str(tmp_path / "cache"), "--cache-fsck"])
        assert code == 1
        err = capsys.readouterr().err
        assert "1 quarantined" in err
        assert "quarantine" in err
        survivors = list((tmp_path / "cache" / "quarantine").iterdir())
        assert len(survivors) == 2  # the entry and its .reason sidecar

    def test_cli_requires_cache_dir(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--cache-fsck"])
