"""Unit tests of the fault-injection harness itself.

The whole chaos suite leans on :class:`~repro.serve.faults.FaultPlan`
replaying identically from a logged seed, so this file pins that contract
down first: spec round trips, rule arming (``after``/``times``/``p``),
each failure kind's surface, determinism across plan instances, and the
CLI/env resolution order.
"""

import pytest

from repro.serve.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    parse_fault_spec,
    plan_from_env,
    resolve_fault_plan,
)


class TestSpecParsing:
    def test_round_trip(self):
        spec = "store.put:torn_write:p=0.5,times=3,after=2,fraction=0.25"
        rule = parse_fault_spec(spec)
        assert rule.point == "store.put"
        assert rule.kind == "torn_write"
        assert rule.probability == 0.5
        assert rule.times == 3
        assert rule.after == 2
        assert rule.fraction == 0.25
        assert parse_fault_spec(rule.spec()) == rule

    def test_latency_seconds(self):
        rule = parse_fault_spec("fleet.send:latency:seconds=0.25")
        assert rule.kind == "latency"
        assert rule.seconds == 0.25

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "no-kind",
            "point:unknown_kind",
            "point:error:p=2.0",
            "point:error:times=-1",
            "point:error:nonsense=1",
            "point:error:p",
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestRuleArming:
    def test_error_raises_fault_injected(self):
        plan = FaultPlan.from_specs(["svc.x:error"])
        with pytest.raises(FaultInjected):
            plan.visit("svc.x")

    def test_reset_raises_connection_reset(self):
        plan = FaultPlan.from_specs(["svc.x:reset"])
        with pytest.raises(ConnectionResetError):
            plan.visit("svc.x")

    def test_torn_write_returns_fraction(self):
        plan = FaultPlan.from_specs(["svc.x:torn_write:fraction=0.3"])
        assert plan.visit("svc.x") == 0.3

    def test_latency_sleeps_in_place(self):
        slept = []
        plan = FaultPlan.from_specs(
            ["svc.x:latency:seconds=0.7"], sleep=slept.append
        )
        assert plan.visit("svc.x") is None
        assert slept == [0.7]

    def test_kill_invokes_the_kill_hook(self, capsys):
        killed = []
        plan = FaultPlan.from_specs(
            ["svc.x:kill"], kill=lambda: killed.append(True)
        )
        plan.visit("svc.x")
        assert killed == [True]
        assert "killing process" in capsys.readouterr().err

    def test_point_patterns_fnmatch(self):
        plan = FaultPlan.from_specs(["store.*:error"])
        with pytest.raises(FaultInjected):
            plan.visit("store.put")
        assert plan.visit("fleet.send") is None

    def test_after_skips_then_times_caps(self):
        plan = FaultPlan.from_specs(["svc.x:error:after=2,times=1"])
        assert plan.visit("svc.x") is None
        assert plan.visit("svc.x") is None
        with pytest.raises(FaultInjected):
            plan.visit("svc.x")
        # The rule is spent: visits flow freely again.
        assert plan.visit("svc.x") is None
        assert plan.injected() == {("svc.x", "error"): 1}

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.from_specs(
            ["svc.x:torn_write:fraction=0.1", "svc.*:error"]
        )
        assert plan.visit("svc.x") == 0.1
        with pytest.raises(FaultInjected):
            plan.visit("svc.y")

    def test_unmatched_points_cost_nothing(self):
        plan = FaultPlan.from_specs(["other.point:error"])
        for _ in range(100):
            assert plan.visit("svc.x") is None
        assert plan.injected_total() == 0


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        specs = ["svc.x:error:p=0.4"]

        def schedule(seed):
            plan = FaultPlan.from_specs(specs, seed=seed)
            fired = []
            for _ in range(200):
                try:
                    plan.visit("svc.x")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert any(schedule(7))
        assert not all(schedule(7))

    def test_describe_logs_seed_rules_and_counts(self):
        plan = FaultPlan.from_specs(["svc.x:error:times=1"], seed=42)
        with pytest.raises(FaultInjected):
            plan.visit("svc.x")
        document = plan.describe()
        assert document["seed"] == 42
        assert document["rules"] == ["svc.x:error:p=1,times=1"]
        assert document["injected"] == {"svc.x:error": 1}


class TestResolution:
    def test_env_plan_absent_when_unset(self):
        assert plan_from_env({}) is None
        assert plan_from_env({"REPRO_FAULTS": "  "}) is None

    def test_env_plan_parses_specs_and_seed(self):
        plan = plan_from_env(
            {"REPRO_FAULTS": "a.b:error; c.d:latency", "REPRO_FAULT_SEED": "9"}
        )
        assert plan is not None
        assert plan.seed == 9
        assert [rule.point for rule in plan.rules()] == ["a.b", "c.d"]

    def test_resolve_merges_cli_before_env(self):
        plan = resolve_fault_plan(
            ["cli.point:error"],
            seed=None,
            environ={"REPRO_FAULTS": "env.point:error", "REPRO_FAULT_SEED": "3"},
        )
        assert plan is not None
        assert [rule.point for rule in plan.rules()] == ["cli.point", "env.point"]
        assert plan.seed == 3

    def test_explicit_seed_beats_env(self):
        plan = resolve_fault_plan(
            ["a.b:error"], seed=11, environ={"REPRO_FAULT_SEED": "3"}
        )
        assert plan is not None and plan.seed == 11

    def test_resolve_none_without_rules(self):
        assert resolve_fault_plan([], seed=5, environ={}) is None
