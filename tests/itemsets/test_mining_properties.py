"""Property-based tests (hypothesis) for the free/closed item-set miner."""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.itemsets.mining import (
    is_closed_itemset,
    is_free_itemset,
    itemset_support,
    mine_free_and_closed,
)
from repro.relational.relation import Relation


def small_relations(max_rows: int = 7, max_cols: int = 3, domain: int = 3):
    """Strategy producing small relations over a tiny value alphabet."""
    def build(data):
        n_cols, rows = data
        names = [f"A{i}" for i in range(n_cols)]
        return Relation.from_rows(names, rows)

    return st.integers(min_value=2, max_value=max_cols).flatmap(
        lambda n_cols: st.tuples(
            st.just(n_cols),
            st.lists(
                st.tuples(*[st.integers(0, domain - 1) for _ in range(n_cols)]),
                min_size=1,
                max_size=max_rows,
            ),
        )
    ).map(build)


@settings(max_examples=40, deadline=None)
@given(relation=small_relations(), k=st.integers(min_value=1, max_value=3))
def test_mined_free_sets_are_free_and_frequent(relation, k):
    result = mine_free_and_closed(relation, min_support=k)
    for free in result.free_sets.values():
        assert free.support >= k
        assert is_free_itemset(relation, free.items)


@settings(max_examples=40, deadline=None)
@given(relation=small_relations(), k=st.integers(min_value=1, max_value=3))
def test_closures_are_closed_extensive_and_support_preserving(relation, k):
    result = mine_free_and_closed(relation, min_support=k)
    for free in result.free_sets.values():
        assert free.items <= free.closure
        assert is_closed_itemset(relation, free.closure)
        assert itemset_support(relation, free.closure).size == free.support


@settings(max_examples=40, deadline=None)
@given(relation=small_relations(), k=st.integers(min_value=1, max_value=3))
def test_freeness_is_downward_closed_in_the_result(relation, k):
    """Every subset of a mined free set that is itself an item set is free."""
    result = mine_free_and_closed(relation, min_support=k)
    mined = set(result.free_sets.keys())
    for items in mined:
        for size in range(len(items)):
            for subset in combinations(sorted(items), size):
                assert is_free_itemset(relation, frozenset(subset))


@settings(max_examples=30, deadline=None)
@given(relation=small_relations(max_rows=6, max_cols=3, domain=2))
def test_mining_is_complete_for_k1_free_sets(relation):
    """Exhaustive check: every frequent free item set is mined (k = 1)."""
    result = mine_free_and_closed(relation, min_support=1)
    mined = set(result.free_sets.keys())
    matrix = relation.encoded_matrix()
    arity = relation.arity
    # enumerate all item sets over active domains with one item per attribute
    per_attribute = [
        [(a, code) for code in range(relation.domain_size(relation.attributes[a]))]
        for a in range(arity)
    ]
    def all_itemsets():
        yield frozenset()
        for size in range(1, arity + 1):
            for attrs in combinations(range(arity), size):
                def expand(prefix, remaining):
                    if not remaining:
                        yield frozenset(prefix)
                        return
                    for item in per_attribute[remaining[0]]:
                        yield from expand(prefix + [item], remaining[1:])
                yield from expand([], list(attrs))
    for items in all_itemsets():
        support = itemset_support(relation, items).size
        if support >= 1 and is_free_itemset(relation, items):
            assert items in mined, f"free item set {sorted(items)} not mined"
