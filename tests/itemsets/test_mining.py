"""Unit tests for repro.itemsets.mining (free / closed item sets, C2F)."""

import pytest

from repro.exceptions import DiscoveryError
from repro.itemsets.mining import (
    closed_itemsets,
    is_closed_itemset,
    is_free_itemset,
    itemset_support,
    mine_free_and_closed,
)
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    # Columns: A in {a, b}; B = x whenever A = a (and also for one A = b row);
    # C is constant.  Designed so closures and free sets are easy to read off.
    return Relation.from_rows(
        ["A", "B", "C"],
        [
            ("a", "x", "k"),
            ("a", "x", "k"),
            ("a", "x", "k"),
            ("b", "x", "k"),
            ("b", "y", "k"),
        ],
    )


class TestMiningBasics:
    def test_min_support_validated(self, relation):
        with pytest.raises(DiscoveryError):
            mine_free_and_closed(relation, min_support=0)

    def test_empty_free_set_present_with_constant_column_closure(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        empty = result.free_sets[frozenset()]
        assert empty.support == 5
        # C is constant, so the closure of the empty set contains (C, 'k').
        assert (2, 0) in empty.closure

    def test_constant_column_item_is_not_free(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        # (C='k') has full support: same support as the empty set, hence not free.
        assert frozenset({(2, 0)}) not in result.free_sets

    def test_every_mined_free_set_is_free_by_definition(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        for items in result.free_sets:
            assert is_free_itemset(relation, items)

    def test_every_closure_is_closed_by_definition(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        for closed in result.closed_sets():
            assert is_closed_itemset(relation, closed)

    def test_closure_has_same_support_as_generator(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        for free in result.free_sets.values():
            closure_support = itemset_support(relation, free.closure)
            assert closure_support.size == free.support

    def test_support_threshold_filters_itemsets(self, relation):
        small = mine_free_and_closed(relation, min_support=1)
        large = mine_free_and_closed(relation, min_support=3)
        assert len(large.free_sets) < len(small.free_sets)
        for free in large.free_sets.values():
            assert free.support >= 3

    def test_specific_closure(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        # A='a' (codes 0,0) implies B='x' and C='k'.
        free = result.free_sets[frozenset({(0, 0)})]
        assert free.closure == frozenset({(0, 0), (1, 0), (2, 0)})

    def test_c2f_mapping_links_closure_to_generators(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        closure = frozenset({(0, 0), (1, 0), (2, 0)})
        generators = result.closed_to_free[closure]
        assert frozenset({(0, 0)}) in {free.items for free in generators}

    def test_free_sets_sorted_by_size(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        sizes = [free.size for free in result.free_sets_sorted()]
        assert sizes == sorted(sizes)

    def test_max_size_caps_itemset_size(self, relation):
        result = mine_free_and_closed(relation, min_support=1, max_size=1)
        assert all(free.size <= 1 for free in result.free_sets.values())

    def test_tids_of_and_is_free(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        assert result.is_free(frozenset({(0, 0)}))
        assert result.tids_of(frozenset({(0, 0)})).tolist() == [0, 1, 2]
        assert result.tids_of(frozenset({(0, 999)})) is None

    def test_len_counts_free_sets(self, relation):
        result = mine_free_and_closed(relation, min_support=1)
        assert len(result) == len(result.free_sets)


class TestClosedItemsets:
    def test_closed_itemsets_support_threshold(self, relation):
        closed = closed_itemsets(relation, min_support=2)
        assert closed
        for items, support in closed:
            assert support >= 2
            assert is_closed_itemset(relation, items)

    def test_itemset_support_counts_matching_rows(self, relation):
        tids = itemset_support(relation, frozenset({(0, 0), (1, 0)}))
        assert tids.tolist() == [0, 1, 2]

    def test_itemset_support_empty_for_contradiction(self, relation):
        # A='a' (code 0) together with B='y' (code 1) never co-occurs.
        tids = itemset_support(relation, frozenset({(0, 0), (1, 1)}))
        assert tids.size == 0
