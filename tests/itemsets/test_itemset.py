"""Unit tests for repro.itemsets.itemset (decoded views and translation)."""

import pytest

from repro.itemsets.itemset import Item, ItemSetView, decode_items, encode_items
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B"],
        [("x", 1), ("y", 2), ("x", 2)],
    )


class TestItem:
    def test_ordering_and_str(self):
        items = sorted([Item("B", 2), Item("A", 1)])
        assert items[0].attribute == "A"
        assert str(items[1]) == "(B=2)"


class TestItemSetView:
    def test_attributes_sorted(self):
        view = ItemSetView(items=(Item("B", 2), Item("A", 1)), support=3)
        assert view.attributes == ("A", "B")

    def test_pattern_mapping(self):
        view = ItemSetView(items=(Item("A", 1),), support=1)
        assert view.pattern() == {"A": 1}

    def test_str_contains_support(self):
        assert "support=4" in str(ItemSetView(items=(Item("A", 1),), support=4))


class TestEncodeDecode:
    def test_encode_known_values(self, relation):
        encoded = encode_items(relation, {"A": "x", "B": 2})
        assert encoded == frozenset({(0, 0), (1, 1)})

    def test_encode_unknown_value_yields_minus_one(self, relation):
        encoded = encode_items(relation, {"A": "zzz"})
        assert encoded == frozenset({(0, -1)})

    def test_decode_round_trip(self, relation):
        encoded = encode_items(relation, {"A": "y", "B": 1})
        view = decode_items(relation, encoded, support=2)
        assert view.pattern() == {"A": "y", "B": 1}
        assert view.support == 2
