"""Tests for the algorithm registry and capability-driven dispatch."""

import pytest

from repro.api import (
    AlgorithmCapabilities,
    AlgorithmRegistry,
    AlgorithmStats,
    DiscoveryAlgorithm,
    DiscoveryRequest,
    REGISTRY,
)
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


class DummyAlgorithm(DiscoveryAlgorithm):
    name = "dummy"
    capabilities = AlgorithmCapabilities(constant_cfds=True, variable_cfds=True)

    def run(self, relation, request, session=None):
        return [], AlgorithmStats(algorithm=self.name)


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B", "C"],
        [(1, 5, "p"), (1, 5, "q"), (2, 6, "p"), (2, 6, "q")],
    )


class TestRegistration:
    def test_register_and_lookup(self):
        registry = AlgorithmRegistry()
        registry.register(DummyAlgorithm)
        assert "dummy" in registry
        assert registry.names() == ("dummy",)
        assert registry.choices() == ("dummy", "auto")
        assert isinstance(registry.create("dummy"), DummyAlgorithm)
        assert registry.capabilities_of("dummy").variable_cfds

    def test_duplicate_name_rejected(self):
        registry = AlgorithmRegistry()
        registry.register(DummyAlgorithm)
        with pytest.raises(DiscoveryError, match="already registered"):
            registry.register(DummyAlgorithm)

    def test_missing_name_rejected(self):
        class Nameless(DiscoveryAlgorithm):
            capabilities = AlgorithmCapabilities()

            def run(self, relation, request, session=None):
                return [], AlgorithmStats()

        with pytest.raises(DiscoveryError, match="no algorithm name"):
            AlgorithmRegistry().register(Nameless)

    def test_auto_name_reserved(self):
        class Auto(DummyAlgorithm):
            name = "auto"

        with pytest.raises(DiscoveryError, match="reserved"):
            AlgorithmRegistry().register(Auto)

    def test_non_subclass_rejected(self):
        with pytest.raises(DiscoveryError):
            AlgorithmRegistry().register(object)

    def test_unknown_algorithm_error(self):
        registry = AlgorithmRegistry()
        with pytest.raises(DiscoveryError, match="unknown algorithm"):
            registry.create("nope")

    def test_decorator_usage(self):
        registry = AlgorithmRegistry()
        decorated = registry.register(DummyAlgorithm)
        assert decorated is DummyAlgorithm  # usable as a class decorator


class TestGlobalRegistry:
    def test_all_five_engines_registered(self):
        assert REGISTRY.names() == (
            "cfdminer",
            "ctane",
            "fastcfd",
            "naivefast",
            "dfd",
        )

    def test_capability_metadata_of_the_paper_toolbox(self):
        assert not REGISTRY.capabilities_of("cfdminer").variable_cfds
        assert REGISTRY.capabilities_of("ctane").prefers_high_support
        assert REGISTRY.capabilities_of("fastcfd").handles_wide_relations
        assert not REGISTRY.capabilities_of("naivefast").auto_candidate
        assert REGISTRY.capabilities_of("dfd").handles_wide_relations

    def test_quantitative_width_ceilings(self):
        assert REGISTRY.capabilities_of("ctane").max_auto_arity == 17
        assert REGISTRY.capabilities_of("fastcfd").max_auto_arity == 62
        assert REGISTRY.capabilities_of("dfd").max_auto_arity is None
        assert REGISTRY.capabilities_of("cfdminer").max_auto_arity is None

    def test_dfd_reports_walk_stats(self):
        reported = REGISTRY.capabilities_of("dfd").reported_stats
        for counter in ("nodes_visited", "partitions_computed", "restarts"):
            assert counter in reported


class TestCapabilityDrivenSelection:
    def test_wide_relation_prefers_fastcfd(self):
        wide = Relation.from_rows(
            [f"A{i}" for i in range(12)], [tuple(range(12)), tuple(range(12))]
        )
        assert REGISTRY.select(wide, DiscoveryRequest(min_support=2)) == "fastcfd"

    def test_beyond_bitmask_width_prefers_dfd(self):
        # Above FastCFD's declared 62-attribute ceiling, auto dispatches to
        # the width-unbounded random-walk engine.
        very_wide = Relation.from_rows(
            [f"A{i}" for i in range(120)],
            [tuple(range(120)), tuple(range(120))],
        )
        request = DiscoveryRequest(min_support=2)
        assert REGISTRY.select(very_wide, request) == "dfd"

    def test_bitmask_width_boundary(self):
        at_limit = Relation.from_rows(
            [f"A{i}" for i in range(62)], [tuple(range(62))]
        )
        just_over = Relation.from_rows(
            [f"A{i}" for i in range(63)], [tuple(range(63))]
        )
        request = DiscoveryRequest(min_support=1)
        assert REGISTRY.select(at_limit, request) == "fastcfd"
        assert REGISTRY.select(just_over, request) == "dfd"

    def test_high_support_prefers_ctane(self, relation):
        # k/|r| = 0.5 is above the cutoff.
        assert REGISTRY.select(relation, DiscoveryRequest(min_support=2)) == "ctane"

    def test_low_support_prefers_fastcfd(self):
        tall = Relation.from_rows(["A", "B"], [(i % 5, i % 3) for i in range(100)])
        assert REGISTRY.select(tall, DiscoveryRequest(min_support=2)) == "fastcfd"

    def test_constant_only_routes_to_cfdminer(self, relation):
        request = DiscoveryRequest(min_support=2, constant_only=True)
        assert REGISTRY.select(relation, request) == "cfdminer"

    def test_naivefast_never_auto_selected(self):
        for arity, rows, k in [(2, 100, 1), (12, 2, 2), (3, 4, 2)]:
            r = Relation.from_rows(
                [f"A{i}" for i in range(arity)],
                [tuple((i + j) % 3 for j in range(arity)) for i in range(rows)],
            )
            assert REGISTRY.select(r, DiscoveryRequest(min_support=k)) != "naivefast"

    def test_selection_with_no_candidates_raises(self, relation):
        registry = AlgorithmRegistry()
        with pytest.raises(DiscoveryError):
            registry.select(relation, DiscoveryRequest(min_support=1))
