"""Strict JSON-native rendering of DiscoveryResult (the CLI's --json).

The seed CLI papered over non-serializable stats with
``json.dumps(..., default=str)``; ``to_json_dict()`` must now be strictly
JSON-native for every algorithm — ``json.dumps`` with no escape hatch, and a
``json.loads`` round-trip reproducing the identical document.
"""

import json

import numpy as np
import pytest

from repro.api import REGISTRY, DiscoveryRequest, execute
from repro.api.result import json_native


@pytest.mark.parametrize("algorithm", REGISTRY.names())
def test_round_trip_for_every_algorithm(cust_relation, algorithm):
    result = execute(
        cust_relation, DiscoveryRequest(min_support=2, algorithm=algorithm)
    )
    document = result.to_json_dict()
    # Strict: no default= fallback, no NaN/Infinity extensions.
    text = json.dumps(document, allow_nan=False)
    assert json.loads(text) == document


@pytest.mark.parametrize("algorithm", REGISTRY.names())
def test_jsonl_stream_matches_document(cust_relation, algorithm):
    """iter_jsonl: header + one line per rule, consistent with to_json_dict."""
    result = execute(
        cust_relation, DiscoveryRequest(min_support=2, algorithm=algorithm)
    )
    lines = [json.loads(line) for line in result.iter_jsonl()]
    header, rules = lines[0], lines[1:]
    assert header["kind"] == "result"
    assert header["n_rules"] == len(rules) == result.n_cfds
    document = result.to_json_dict()
    assert header["algorithm"] == document["algorithm"]
    assert header["stats"] == document["stats"]
    assert "rules" not in header  # the header never materialises the cover
    stripped = [
        {key: value for key, value in rule.items() if key != "kind"}
        for rule in rules
    ]
    assert stripped == document["rules"]


def test_engine_seconds_surfaced_in_stats(cust_relation):
    result = execute(
        cust_relation, DiscoveryRequest(min_support=2, algorithm="fastcfd")
    )
    document = result.to_json_dict()
    engine_seconds = document["stats"]["engine_seconds"]
    assert isinstance(engine_seconds, float)
    assert 0 <= engine_seconds <= result.elapsed_seconds


def test_full_request_time_includes_post_processing(cust_relation):
    # rank_by adds measurable post-processing; elapsed must cover it.
    result = execute(
        cust_relation,
        DiscoveryRequest(min_support=2, algorithm="cfdminer", rank_by="support"),
    )
    assert result.elapsed_seconds >= result.stats.extras["engine_seconds"]


class TestJsonNative:
    def test_numpy_scalars_coerced(self):
        assert json_native(np.int64(3)) == 3
        assert type(json_native(np.int64(3))) is int
        assert json_native(np.float64(0.5)) == 0.5
        assert type(json_native(np.float64(0.5))) is float

    def test_containers_normalised(self):
        value = {"a": (1, 2), "b": frozenset({"y", "x"}), 3: np.int32(7)}
        assert json_native(value) == {"a": [1, 2], "b": ["x", "y"], "3": 7}

    def test_bool_and_none_preserved(self):
        assert json_native(True) is True
        assert json_native(None) is None

    def test_opaque_objects_stringified(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert json_native(Opaque()) == "<opaque>"

    def test_non_string_pattern_values_round_trip(self, conditional_relation):
        # Integer-valued relations produce integer pattern constants.
        result = execute(
            conditional_relation,
            DiscoveryRequest(min_support=1, algorithm="cfdminer"),
        )
        document = result.to_json_dict()
        assert json.loads(json.dumps(document, allow_nan=False)) == document
