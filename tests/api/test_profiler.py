"""Tests for the Profiler session: cache reuse, progress, execution."""

import pytest

from repro.api import DiscoveryRequest, Profiler, execute
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


@pytest.fixture
def relation(cust_relation) -> Relation:
    return cust_relation


class TestCacheReuse:
    def test_two_supports_reuse_cached_structures(self, relation):
        """A support sweep over one relation must not re-mine shared structures."""
        profiler = Profiler(relation)
        low = profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        high = profiler.run(DiscoveryRequest(min_support=3, algorithm="fastcfd"))
        info = profiler.cache_info()
        # The closed-set difference-set provider is k-independent: built once
        # on the first run, reused verbatim by the second.
        assert info["closed_difference_sets"]["misses"] == 1
        assert info["closed_difference_sets"]["hits"] >= 1
        assert info["closed_difference_sets"]["size"] == 1
        # And the covers match fresh one-shot runs exactly.
        for result, k in ((low, 2), (high, 3)):
            oneshot = execute(
                relation, DiscoveryRequest(min_support=k, algorithm="fastcfd")
            )
            assert sorted(map(str, result.cfds)) == sorted(map(str, oneshot.cfds))

    def test_same_support_reuses_mining(self, relation):
        profiler = Profiler(relation)
        profiler.run(DiscoveryRequest(min_support=2, algorithm="cfdminer"))
        profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        info = profiler.cache_info()
        # CFDMiner mined (k=2); FastCFD at the same k reuses that result
        # (which doubles as the provider's closed-set index).
        assert info["free_closed"]["hits"] >= 1

    def test_partition_provider_cached_across_naivefast_runs(self, relation):
        profiler = Profiler(relation)
        profiler.run(DiscoveryRequest(min_support=2, algorithm="naivefast"))
        profiler.run(DiscoveryRequest(min_support=3, algorithm="naivefast"))
        info = profiler.cache_info()
        assert info["partition_difference_sets"]["misses"] == 1
        assert info["partition_difference_sets"]["hits"] == 1

    def test_attribute_partition_cached(self, relation):
        profiler = Profiler(relation)
        first = profiler.attribute_partition(["CC", "AC"])
        second = profiler.attribute_partition(["AC", "CC"])  # order-insensitive
        assert first is second
        info = profiler.cache_info()
        assert info["attribute_partitions"] == {"hits": 1, "misses": 1, "size": 1}

    def test_naivefast_timing_unaffected_by_fastcfd_cache(self, relation):
        """The two FastCFD variants keep separate difference-set providers."""
        profiler = Profiler(relation)
        profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        profiler.run(DiscoveryRequest(min_support=2, algorithm="naivefast"))
        info = profiler.cache_info()
        assert info["partition_difference_sets"]["misses"] == 1


class TestExecution:
    def test_equivalent_covers_across_fastcfd_variants(self, relation):
        profiler = Profiler(relation)
        fastcfd = profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        naive = profiler.run(DiscoveryRequest(min_support=2, algorithm="naivefast"))
        # NaiveFast is documented to produce the identical cover.
        assert sorted(map(str, fastcfd.cfds)) == sorted(map(str, naive.cfds))

    def test_constant_only_filter_and_dispatch(self, relation):
        profiler = Profiler(relation)
        result = profiler.run(DiscoveryRequest(min_support=2, constant_only=True))
        assert result.algorithm == "cfdminer"  # capability-driven dispatch
        assert result.cfds and all(cfd.is_constant for cfd in result.cfds)

    def test_variable_only_filter(self, relation):
        profiler = Profiler(relation)
        result = profiler.run(
            DiscoveryRequest(min_support=2, algorithm="ctane", variable_only=True)
        )
        assert result.cfds and all(cfd.is_variable for cfd in result.cfds)

    def test_variable_only_on_constant_engine_rejected(self, relation):
        request = DiscoveryRequest(
            min_support=2, algorithm="cfdminer", variable_only=True
        )
        with pytest.raises(DiscoveryError, match="variable"):
            Profiler(relation).run(request)

    def test_rank_by_orders_rules(self, relation):
        from repro.core.measures import measures

        result = Profiler(relation).run(
            DiscoveryRequest(min_support=2, algorithm="cfdminer", rank_by="support")
        )
        supports = [measures(relation, cfd).support_count for cfd in result.cfds]
        assert supports == sorted(supports, reverse=True)

    def test_limit_rows_profiles_the_prefix(self, relation):
        result = Profiler(relation).run(
            DiscoveryRequest(min_support=1, algorithm="fastcfd", limit_rows=4)
        )
        assert result.relation_size == 4

    def test_limit_rows_does_not_poison_session_caches(self, relation):
        profiler = Profiler(relation)
        profiler.run(
            DiscoveryRequest(min_support=1, algorithm="fastcfd", limit_rows=4)
        )
        info = profiler.cache_info()
        # The session's own structure caches stay untouched; the run was
        # served (and recorded) through a pooled prefix sub-session.
        for cache, bucket in info.items():
            if cache != "prefix_sessions":
                assert bucket["size"] == 0
        assert info["prefix_sessions"] == {"hits": 0, "misses": 1, "size": 1}

    def test_limit_rows_reruns_reuse_the_prefix_session(self, relation):
        profiler = Profiler(relation)
        request = DiscoveryRequest(min_support=1, algorithm="fastcfd", limit_rows=4)
        first = profiler.run(request)
        second = profiler.run(request)
        assert sorted(map(str, first.cfds)) == sorted(map(str, second.cfds))
        info = profiler.cache_info()
        assert info["prefix_sessions"] == {"hits": 1, "misses": 1, "size": 1}
        # The re-run was served from the prefix session's memoised engine
        # result instead of rebuilding anything.
        prefix = profiler.prefix_session(4)
        prefix_info = prefix.cache_info()
        assert prefix_info["closed_difference_sets"]["misses"] == 1
        assert prefix_info["engine_results"] == {"hits": 1, "misses": 1, "size": 1}

    def test_distinct_limits_get_distinct_prefix_sessions(self, relation):
        profiler = Profiler(relation)
        for limit in (3, 4, 3):
            profiler.run(
                DiscoveryRequest(min_support=1, algorithm="fastcfd", limit_rows=limit)
            )
        info = profiler.cache_info()
        assert info["prefix_sessions"] == {"hits": 1, "misses": 2, "size": 2}

    def test_non_truncating_limit_is_the_session_itself(self, relation):
        profiler = Profiler(relation)
        assert profiler.prefix_session(relation.n_rows) is profiler
        assert profiler.cache_info()["prefix_sessions"]["size"] == 0

    def test_estimated_bytes_grow_with_caches(self, relation):
        profiler = Profiler(relation)
        cold = profiler.estimated_bytes()
        profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        warmed = profiler.estimated_bytes()
        assert warmed > cold
        # Prefix sub-sessions are included in the session's own budget.
        profiler.run(
            DiscoveryRequest(min_support=1, algorithm="fastcfd", limit_rows=4)
        )
        assert profiler.estimated_bytes() > warmed

    def test_discover_convenience_wrapper(self, relation):
        result = Profiler(relation).discover(
            2, algorithm="fastcfd", constant_cfds="skip"
        )
        assert result.cfds and all(cfd.is_variable for cfd in result.cfds)

    def test_options_forwarded_through_request(self, relation):
        result = execute(
            relation,
            DiscoveryRequest(
                min_support=2,
                algorithm="fastcfd",
                options={"constant_cfds": "skip"},
            ),
        )
        assert all(cfd.is_variable for cfd in result.cfds)

    def test_stats_normalised(self, relation):
        result = Profiler(relation).run(
            DiscoveryRequest(min_support=2, algorithm="ctane")
        )
        assert result.stats is not None
        assert result.stats.algorithm == "ctane"
        assert result.stats.candidates_checked > 0
        # extra stays as the backward-compatible dictionary view
        assert result.extra["candidates_checked"] == result.stats.candidates_checked

    def test_unknown_algorithm_rejected(self, relation):
        with pytest.raises(DiscoveryError, match="unknown algorithm"):
            Profiler(relation).run(DiscoveryRequest(algorithm="nope"))


class TestWideRelations:
    """Every engine serves >62-attribute relations (the old pairwise bitmask
    path raised a ValueError there; it now switches to packed boolean rows).
    """

    @pytest.fixture
    def wide_relation(self) -> Relation:
        """63 attributes: just beyond the int64 bitmask fast path."""
        arity = 63
        names = [f"A{i}" for i in range(arity)]
        rows = [
            tuple(f"x{i}" for i in range(arity)),
            tuple(f"y{i}" for i in range(arity)),
            tuple(f"x{i}" if i % 2 else f"z{i}" for i in range(arity)),
        ]
        return Relation.from_rows(names, rows)

    def test_naivefast_serves_beyond_the_bitmask_limit(self, wide_relation):
        """Regression: the pairwise provider used to raise at 63 attributes."""
        request = DiscoveryRequest(min_support=2, algorithm="naivefast")
        result = execute(wide_relation, request)
        assert result.algorithm == "naivefast"

    def test_wide_relations_with_a_session_too(self, wide_relation):
        request = DiscoveryRequest(min_support=2, algorithm="naivefast")
        profiler = Profiler(wide_relation)
        first = profiler.run(request)
        second = profiler.run(request)
        assert [repr(c) for c in first.cfds] == [repr(c) for c in second.cfds]

    def test_engines_agree_beyond_the_bitmask_limit(self, wide_relation):
        covers = {}
        for algorithm in ("fastcfd", "naivefast", "dfd"):
            # min_support = |r| keeps the walk on the pure-FD contexts; the
            # seeded oracle tests cover the conditional contexts widely.
            result = execute(
                wide_relation,
                DiscoveryRequest(min_support=3, algorithm=algorithm),
            )
            covers[algorithm] = sorted(repr(c) for c in result.cfds)
        assert covers["fastcfd"] == covers["naivefast"] == covers["dfd"]

    def test_auto_routes_wide_requests_to_dfd(self):
        relation = Relation.from_rows(
            [f"A{i}" for i in range(70)],
            [tuple(i % 3 for i in range(70)), tuple(i % 5 for i in range(70))],
        )
        result = execute(relation, DiscoveryRequest(min_support=1))
        assert result.algorithm == "dfd"


class TestProgress:
    @pytest.mark.parametrize(
        "algorithm,stage",
        [
            ("ctane", "ctane:level"),
            ("fastcfd", "fastcfd:rhs"),
            ("cfdminer", "cfdminer:free-set"),
        ],
    )
    def test_progress_callback_fires(self, relation, algorithm, stage):
        events = []
        profiler = Profiler(
            relation, progress=lambda s, done, total: events.append((s, done, total))
        )
        profiler.run(DiscoveryRequest(min_support=2, algorithm=algorithm))
        stages = {s for s, _, _ in events}
        assert stage in stages
        for _, done, total in events:
            assert 1 <= done <= total

    def test_one_shot_runs_have_no_progress(self, relation):
        # execute() without a session must not crash on progress handling
        result = execute(relation, DiscoveryRequest(min_support=2, algorithm="ctane"))
        assert result.n_cfds > 0
