"""Regression tests: a failed build must never poison a profiler cache key.

``Profiler._get_or_build`` memoises builds behind shared futures.  The bug
class under test: an errored future left installed under a key (builder
crash, racing eviction, injected fault) would make every later lookup
re-raise the stale exception until process restart.  Failed builds are
evicted by the builder, and — defensively — an errored future found at
lookup time is evicted and rebuilt.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.api import DiscoveryRequest, Profiler
from repro.serve.faults import FaultInjected, FaultPlan


class TestFailedBuildEviction:
    def test_builder_crash_is_not_cached(self, cust_relation):
        profiler = Profiler(cust_relation)
        store = {}
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient build failure")
            return "built"

        with pytest.raises(RuntimeError, match="transient"):
            profiler._get_or_build("bucket", store, "key", flaky)
        assert store == {}  # the errored future was evicted with the raise
        assert profiler._get_or_build("bucket", store, "key", flaky) == "built"
        assert len(calls) == 2

    def test_stale_errored_future_is_evicted_at_lookup(self, cust_relation):
        """The defensive path: a poisoned key self-heals on the next lookup."""
        profiler = Profiler(cust_relation)
        poisoned = Future()
        poisoned.set_exception(RuntimeError("stale poison"))
        store = {"key": poisoned}
        assert profiler._get_or_build("bucket", store, "key", lambda: 7) == 7
        assert store["key"].result() == 7

    def test_waiters_share_the_failure_then_a_fresh_call_rebuilds(
        self, cust_relation
    ):
        profiler = Profiler(cust_relation)
        store = {}
        release = threading.Event()
        entered = threading.Event()

        def blocking_then_crash():
            entered.set()
            assert release.wait(timeout=30)
            raise RuntimeError("crash after waiters piled up")

        outcomes = []

        def call(build):
            try:
                outcomes.append(("ok", profiler._get_or_build("b", store, "k", build)))
            except RuntimeError as exc:
                outcomes.append(("err", str(exc)))

        builder = threading.Thread(target=call, args=(blocking_then_crash,))
        builder.start()
        assert entered.wait(timeout=30)
        waiter = threading.Thread(target=call, args=(blocking_then_crash,))
        waiter.start()
        release.set()
        builder.join(timeout=30)
        waiter.join(timeout=30)
        assert outcomes.count(("err", "crash after waiters piled up")) == 2
        # The key healed: an ordinary build succeeds now.
        assert profiler._get_or_build("b", store, "k", lambda: 42) == 42

    def test_engine_fault_does_not_poison_the_session(self, cust_relation):
        """End to end: an injected engine crash, then the same session
        serves the request cleanly on retry (no stale errored future)."""
        plan = FaultPlan.from_specs(["engine.level:error:times=1"])
        profiler = Profiler(cust_relation, faults=plan)
        ctane_request = DiscoveryRequest(min_support=2, algorithm="ctane")
        with pytest.raises(FaultInjected):
            profiler.run(ctane_request)
        result = profiler.run(ctane_request)
        assert result.counts()["total"] > 0
        clean = Profiler(cust_relation).run(ctane_request)
        assert result.to_json_dict()["rules"] == clean.to_json_dict()["rules"]
