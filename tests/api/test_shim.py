"""Backward-compatibility: the seed discover() API must behave identically."""

import pytest

from repro.core.cfdminer import CFDMiner
from repro.core.ctane import CTane
from repro.core.dfd import DFD
from repro.core.discovery import ALGORITHMS, choose_algorithm, discover
from repro.core.fastcfd import FastCFD, NaiveFast
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation

#: Direct (seed-style) algorithm classes, keyed by registry name.
DIRECT = {
    "cfdminer": CFDMiner,
    "ctane": CTane,
    "fastcfd": FastCFD,
    "naivefast": NaiveFast,
    "dfd": DFD,
}


class TestDiscoverShim:
    def test_algorithms_tuple_tracks_the_registry(self):
        # The seed names stay, in order; later PRs may append engines.
        assert ALGORITHMS == (
            "cfdminer", "ctane", "fastcfd", "naivefast", "dfd", "auto"
        )

    @pytest.mark.parametrize("algorithm", sorted(DIRECT))
    def test_identical_cover_to_seed_api(self, cust_relation, algorithm):
        """discover() must return exactly the cover the algorithm class returns
        when driven directly, on the paper's running example (Fig. 1)."""
        via_shim = discover(cust_relation, 2, algorithm=algorithm)
        direct = DIRECT[algorithm](cust_relation, 2).discover()
        assert sorted(map(str, via_shim.cfds)) == sorted(map(str, direct))
        assert via_shim.algorithm == algorithm
        assert via_shim.min_support == 2
        assert via_shim.relation_size == cust_relation.n_rows
        assert via_shim.relation_arity == cust_relation.arity

    def test_auto_resolves_to_concrete_algorithm(self, cust_relation):
        result = discover(cust_relation, 2, algorithm="auto")
        assert result.algorithm in DIRECT

    def test_unknown_algorithm_rejected(self, cust_relation):
        with pytest.raises(DiscoveryError):
            discover(cust_relation, algorithm="nope")

    def test_invalid_support_rejected(self, cust_relation):
        with pytest.raises(DiscoveryError):
            discover(cust_relation, 0)

    def test_options_still_forwarded(self, cust_relation):
        result = discover(
            cust_relation, 2, algorithm="fastcfd", constant_cfds="skip"
        )
        assert result.cfds and all(cfd.is_variable for cfd in result.cfds)

    def test_ctane_extra_keys_preserved(self, cust_relation):
        result = discover(cust_relation, 2, algorithm="ctane")
        assert result.extra["candidates_checked"] > 0
        assert result.extra["elements_generated"] > 0

    def test_package_level_discover_is_the_shim(self, cust_relation):
        import repro

        assert repro.discover is discover


class TestChooseAlgorithmShim:
    def test_wide_relation_prefers_fastcfd(self):
        wide = Relation.from_rows(
            [f"A{i}" for i in range(12)], [tuple(range(12)), tuple(range(12))]
        )
        assert choose_algorithm(wide, 2) == "fastcfd"

    def test_high_support_prefers_ctane(self):
        small = Relation.from_rows(
            ["A", "B", "C"], [(1, 5, "p"), (1, 5, "q"), (2, 6, "p"), (2, 6, "q")]
        )
        assert choose_algorithm(small, 2) == "ctane"  # k/|r| = 0.5

    def test_low_support_prefers_fastcfd(self):
        tall = Relation.from_rows(["A", "B"], [(i % 5, i % 3) for i in range(100)])
        assert choose_algorithm(tall, 2) == "fastcfd"
