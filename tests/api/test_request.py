"""Tests for the frozen DiscoveryRequest configuration object."""

import dataclasses

import pytest

from repro.api import DiscoveryRequest
from repro.exceptions import DiscoveryError


class TestConstruction:
    def test_defaults(self):
        request = DiscoveryRequest()
        assert request.min_support == 1
        assert request.algorithm == "auto"
        assert request.max_lhs_size is None
        assert not request.constant_only and not request.variable_only
        assert request.options == ()

    def test_frozen(self):
        request = DiscoveryRequest()
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.min_support = 5

    def test_hashable(self):
        a = DiscoveryRequest(min_support=2, options={"b": 1, "a": 2})
        b = DiscoveryRequest(min_support=2, options={"a": 2, "b": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_options_mapping_normalised(self):
        request = DiscoveryRequest(options={"z": 1, "a": 2})
        assert request.options == (("a", 2), ("z", 1))
        assert request.options_dict == {"a": 2, "z": 1}
        # options_dict hands out a fresh dictionary each time
        assert request.options_dict is not request.options_dict


class TestValidation:
    def test_min_support_validated(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(min_support=0)

    def test_max_lhs_validated(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(max_lhs_size=0)

    def test_limit_rows_validated(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(limit_rows=0)

    def test_rank_by_validated(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(rank_by="popularity")

    def test_conflicting_filters_rejected(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(constant_only=True, variable_only=True)

    def test_empty_algorithm_rejected(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(algorithm="")


class TestDerivation:
    def test_with_support(self):
        request = DiscoveryRequest(min_support=2, algorithm="ctane")
        derived = request.with_support(7)
        assert derived.min_support == 7
        assert derived.algorithm == "ctane"
        assert request.min_support == 2  # original untouched

    def test_with_algorithm(self):
        assert DiscoveryRequest().with_algorithm("fastcfd").algorithm == "fastcfd"

    def test_replace_validates(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRequest().replace(min_support=-1)
