"""Concurrency regression tests for the Profiler session.

The seed Profiler mutated its cache dictionaries and hit/miss counters
without synchronisation, so concurrent ``run()`` calls could build the same
provider twice (wasted work, torn counters).  These tests hammer one session
from many threads and assert the locked behaviour: every shared structure is
built exactly once and the counters add up.
"""

import threading

import pytest

from repro.api import DiscoveryRequest, Profiler, execute

N_THREADS = 8


def _hammer(n_threads, work):
    """Run ``work(index)`` on ``n_threads`` threads, gated by one barrier."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(index):
        try:
            barrier.wait(timeout=30)
            work(index)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)
    if errors:
        raise errors[0]


class TestSharedStructureBuiltOnce:
    def test_identical_fastcfd_runs_record_exactly_one_miss(self, cust_relation):
        """N threads, one session, one request: the engine runs exactly once
        (result memoisation) and every shared structure is built exactly once
        by that single run."""
        profiler = Profiler(cust_relation)
        request = DiscoveryRequest(min_support=2, algorithm="fastcfd")
        _hammer(N_THREADS, lambda index: profiler.run(request))
        info = profiler.cache_info()
        # Identical requests coalesce onto one memoised engine run.
        assert info["engine_results"]["misses"] == 1
        assert info["engine_results"]["hits"] == N_THREADS - 1
        assert info["engine_results"]["size"] == 1
        assert info["closed_difference_sets"]["misses"] == 1
        assert info["closed_difference_sets"]["hits"] == 0
        assert info["closed_difference_sets"]["size"] == 1
        # One k=2 mining: the single engine build's adapter lookup misses,
        # the provider build re-reads the same key as its one hit.
        assert info["free_closed"]["misses"] == 1
        assert info["free_closed"]["hits"] == 1
        assert info["free_closed"]["size"] == 1

    def test_counters_add_up_under_mixed_support_hammer(self, cust_relation):
        profiler = Profiler(cust_relation)
        supports = [1 + (i % 4) for i in range(N_THREADS)]
        _hammer(
            N_THREADS,
            lambda index: profiler.run(
                DiscoveryRequest(min_support=supports[index], algorithm="fastcfd")
            ),
        )
        info = profiler.cache_info()
        # Four distinct thresholds -> four engine builds, duplicates coalesce.
        assert info["engine_results"]["misses"] == 4
        assert info["engine_results"]["hits"] == N_THREADS - 4
        # The k-independent provider: looked up by each engine build only.
        assert info["closed_difference_sets"]["misses"] == 1
        assert info["closed_difference_sets"]["hits"] == 3
        # Every threshold mined once; the k=2 key is read twice (adapter +
        # provider build), every other key once.
        assert info["free_closed"]["size"] == 4
        assert info["free_closed"]["misses"] == 4
        assert info["free_closed"]["hits"] == 1

    def test_concurrent_attribute_partitions_built_once(self, cust_relation):
        profiler = Profiler(cust_relation)
        seen = []
        _hammer(
            N_THREADS,
            lambda index: seen.append(profiler.attribute_partition(["CC", "AC"])),
        )
        assert len({id(partition) for partition in seen}) == 1
        info = profiler.cache_info()
        assert info["attribute_partitions"] == {
            "hits": N_THREADS - 1,
            "misses": 1,
            "size": 1,
        }


class TestConcurrentCorrectness:
    @pytest.mark.parametrize("algorithm", ["fastcfd", "naivefast", "ctane"])
    def test_concurrent_covers_match_sequential(self, cust_relation, algorithm):
        profiler = Profiler(cust_relation)
        results = [None] * N_THREADS
        supports = [1 + (i % 3) for i in range(N_THREADS)]

        def work(index):
            results[index] = profiler.run(
                DiscoveryRequest(min_support=supports[index], algorithm=algorithm)
            )

        _hammer(N_THREADS, work)
        for index, result in enumerate(results):
            oneshot = execute(
                cust_relation,
                DiscoveryRequest(min_support=supports[index], algorithm=algorithm),
            )
            assert sorted(map(str, result.cfds)) == sorted(map(str, oneshot.cfds))

    def test_concurrent_prefix_sessions_pooled_once(self, cust_relation):
        profiler = Profiler(cust_relation)
        request = DiscoveryRequest(min_support=1, algorithm="fastcfd", limit_rows=4)
        _hammer(N_THREADS, lambda index: profiler.run(request))
        info = profiler.cache_info()
        assert info["prefix_sessions"]["misses"] == 1
        assert info["prefix_sessions"]["hits"] == N_THREADS - 1
        assert info["prefix_sessions"]["size"] == 1

    def test_estimated_bytes_safe_while_engines_run(self, cust_relation):
        """Regression: byte accounting used to iterate the providers' query
        caches while running engines inserted into them, raising
        'dictionary changed size during iteration'."""
        profiler = Profiler(cust_relation)
        stop = threading.Event()
        poll_errors = []

        def poll():
            try:
                while not stop.is_set():
                    assert profiler.estimated_bytes() >= 0
            except BaseException as exc:  # noqa: BLE001 - asserted below
                poll_errors.append(exc)

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            _hammer(
                N_THREADS,
                lambda index: profiler.run(
                    DiscoveryRequest(
                        min_support=1 + (index % 4), algorithm="fastcfd"
                    )
                ),
            )
        finally:
            stop.set()
            poller.join(timeout=30)
        assert not poll_errors, poll_errors


class TestPrefixSessionBound:
    def test_prefix_sessions_are_lru_bounded(self, cust_relation):
        from repro.api.profiler import MAX_PREFIX_SESSIONS

        profiler = Profiler(cust_relation)
        limits = list(range(1, MAX_PREFIX_SESSIONS + 3))  # more than the cap
        for limit in limits:
            profiler.prefix_session(limit)
        info = profiler.cache_info()
        assert info["prefix_sessions"]["size"] == MAX_PREFIX_SESSIONS
        # The oldest limits were evicted; the newest are still pooled.
        before = info["prefix_sessions"]["misses"]
        profiler.prefix_session(limits[-1])
        assert profiler.cache_info()["prefix_sessions"]["hits"] >= 1
        profiler.prefix_session(limits[0])  # evicted -> rebuilt
        assert profiler.cache_info()["prefix_sessions"]["misses"] == before + 1
