"""Shared fixtures: install a fresh process tracer, restore the disabled one."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture
def tracer():
    """A fully-sampling tracer installed as the process-global one."""
    installed = obs.configure(service="test", sample_rate=1.0, ring_capacity=512)
    yield installed
    obs.disable()
