"""Unit tests of the tracer core: spans, sampling, context, retention."""

import json
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.obs.export import SpanRing, TraceLog, build_tree, load_jsonl
from repro.obs.trace import NOOP_SPAN, Tracer, format_traceparent, parse_traceparent


class TestSpanNesting:
    def test_children_chain_parent_ids_under_one_trace(self, tracer):
        with tracer.start_trace("repro.test.root") as root:
            with tracer.start_span("repro.test.middle") as middle:
                with tracer.start_span("repro.test.leaf") as leaf:
                    pass
        assert middle.trace_id == root.trace_id == leaf.trace_id
        assert middle.parent_id == root.span_id
        assert leaf.parent_id == middle.span_id
        records = tracer.ring.trace(root.trace_id)
        # Finish order: leaf, middle, root.
        assert [r["name"] for r in records] == [
            "repro.test.leaf", "repro.test.middle", "repro.test.root",
        ]
        assert records[-1]["root"] is True
        tree = build_tree(records)
        assert len(tree) == 1
        assert tree[0]["children"][0]["children"][0]["name"] == "repro.test.leaf"

    def test_exception_marks_error_status(self, tracer):
        try:
            with tracer.start_trace("repro.test.root"):
                raise ValueError("boom")
        except ValueError:
            pass
        (record,) = tracer.ring.snapshot()
        assert record["status"] == "error"
        assert record["error"] == "ValueError"

    def test_discard_drops_span_and_restores_context(self, tracer):
        with tracer.start_trace("repro.test.root") as root:
            probe = tracer.start_span("repro.test.probe")
            probe.__enter__()
            assert obs.current_span() is probe
            probe.discard()
            assert obs.current_span() is root
            probe.end()  # after discard, end() must be a no-op
        names = [r["name"] for r in tracer.ring.snapshot()]
        assert names == ["repro.test.root"]

    def test_child_record_backdates_into_the_parent_trace(self, tracer):
        with tracer.start_trace("repro.test.root") as root:
            root.child_record("repro.test.early", duration=0.25, bytes=3)
        records = tracer.ring.trace(root.trace_id)
        early = next(r for r in records if r["name"] == "repro.test.early")
        assert early["parent_id"] == root.span_id
        assert early["duration"] == 0.25
        assert early["attrs"]["bytes"] == 3


class TestSamplingAndNoop:
    def test_disabled_tracer_hands_back_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_trace("repro.test.root") is NOOP_SPAN
        assert tracer.start_span("repro.test.child") is NOOP_SPAN
        assert len(tracer.ring) == 0

    def test_sample_rate_zero_noops_every_root(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(
            tracer.start_trace("repro.test.root") is NOOP_SPAN for _ in range(32)
        )

    def test_span_outside_any_trace_is_noop(self, tracer):
        assert tracer.start_span("repro.test.orphan") is NOOP_SPAN

    def test_children_under_an_unsampled_root_are_noop(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.start_trace("repro.test.root"):
            assert tracer.start_span("repro.test.child") is NOOP_SPAN

    def test_noop_span_is_inert_and_falsy(self):
        with NOOP_SPAN as span:
            span.set_attr("k", "v").set_status("error", error="X")
            span.child_record("repro.test.child")
            span.discard()
        assert not NOOP_SPAN
        assert NOOP_SPAN.traceparent() is None


class TestTraceparent:
    def test_round_trip(self):
        header = format_traceparent("ab" * 16, "cd" * 8, sampled=True)
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8, True)
        header = format_traceparent("ab" * 16, "cd" * 8, sampled=False)
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8, False)

    def test_malformed_headers_are_rejected(self):
        for bad in ("", "00-xyz", "00-short-cdcd-01", "zz-" + "ab" * 16, None):
            assert parse_traceparent(bad or "") is None

    def test_continuation_adopts_trace_and_parent(self, tracer):
        header = format_traceparent("ab" * 16, "cd" * 8)
        with tracer.start_trace("repro.test.root", traceparent=header) as span:
            assert span.trace_id == "ab" * 16
            assert span.parent_id == "cd" * 8

    def test_upstream_unsampled_flag_wins_over_local_sampling(self, tracer):
        header = format_traceparent("ab" * 16, "cd" * 8, sampled=False)
        assert tracer.start_trace("repro.test.root", traceparent=header) is NOOP_SPAN

    def test_upstream_sampled_flag_wins_over_local_zero_rate(self):
        tracer = Tracer(sample_rate=0.0)
        header = format_traceparent("ab" * 16, "cd" * 8, sampled=True)
        span = tracer.start_trace("repro.test.root", traceparent=header)
        assert span is not NOOP_SPAN
        span.end()


class TestContextPropagation:
    def test_bind_context_carries_the_span_across_an_executor_hop(self, tracer):
        with ThreadPoolExecutor(max_workers=1) as executor:
            with tracer.start_trace("repro.test.root") as root:
                bare = executor.submit(obs.current_trace_id).result()
                bound = executor.submit(
                    obs.bind_context(obs.current_trace_id)
                ).result()
        assert bare is None  # the worker thread has no ambient context
        assert bound == root.trace_id

    def test_spans_started_in_the_bound_thread_nest_under_the_root(self, tracer):
        def work():
            with tracer.start_span("repro.test.threaded") as span:
                return span.parent_id

        with ThreadPoolExecutor(max_workers=1) as executor:
            with tracer.start_trace("repro.test.root") as root:
                parent_id = executor.submit(obs.bind_context(work)).result()
        assert parent_id == root.span_id


class TestRetention:
    def test_ring_eviction_is_bounded_and_counted(self):
        ring = SpanRing(capacity=8)
        for index in range(20):
            ring.append({"trace_id": f"t{index}", "name": "repro.test.root"})
        assert len(ring) == 8
        assert ring.appended_total == 20
        kept = [record["trace_id"] for record in ring.snapshot()]
        assert kept == [f"t{index}" for index in range(12, 20)]

    def test_trace_log_rotates_once_past_max_bytes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = TraceLog(str(path), max_bytes=512)
        for index in range(64):
            log.write({"span_id": f"{index:016x}", "name": "repro.test.root"})
        log.close()
        rotated = tmp_path / "trace.jsonl.1"
        assert rotated.exists()
        assert path.stat().st_size <= 512
        # Every line on both sides is intact JSON.
        for source in (path, rotated):
            for line in source.read_text().splitlines():
                json.loads(line)

    def test_tracer_writes_records_to_the_trace_log(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(service="unit", trace_log=str(path))
        with tracer.start_trace("repro.test.root"):
            with tracer.start_span("repro.test.child"):
                pass
        tracer.close()
        records = load_jsonl(str(path))
        assert [r["name"] for r in records] == [
            "repro.test.child", "repro.test.root",
        ]
        assert all(r["service"] == "unit" for r in records)


class TestSlowTraces:
    def test_slow_roots_fire_the_hook_with_the_full_tree(self, tmp_path):
        captured = []
        slow_path = tmp_path / "slow.jsonl"
        tracer = Tracer(
            service="unit",
            slow_threshold=0.0,
            slow_log=str(slow_path),
            on_slow=captured.append,
        )
        with tracer.start_trace("repro.test.root"):
            with tracer.start_span("repro.test.child"):
                pass
        tracer.close()
        assert tracer.slow_traces == 1
        (document,) = captured
        assert document["slow"] is True
        assert document["name"] == "repro.test.root"
        (root,) = document["spans"]
        assert [child["name"] for child in root["children"]] == ["repro.test.child"]
        # load_jsonl flattens the slow document back into plain records.
        written = load_jsonl(str(slow_path))
        assert [r["name"] for r in written] == [
            "repro.test.root", "repro.test.child",
        ]
        assert all(r["trace_id"] == document["trace_id"] for r in written)

    def test_non_root_spans_never_count_as_slow(self):
        tracer = Tracer(service="unit", slow_threshold=0.0)
        with tracer.start_trace("repro.test.root"):
            with tracer.start_span("repro.test.child"):
                pass
        # Root + child both exceeded the zero threshold, but only the root
        # may emit a slow document.
        assert tracer.slow_traces == 1
