"""Worker-level tracing over a real socket: one request, one deep trace."""

import http.client
import json

import pytest

from repro import obs
from repro.serve import DiscoveryService, SessionPool
from repro.serve.http import ServerConfig, ServerThread

CSV_BODY = (
    "CC,AC,PN,NM,STR,CT,ZIP\n"
    "01,908,1111111,Mike,Tree Ave.,MH,07974\n"
    "01,908,1111111,Rick,Tree Ave.,MH,07974\n"
    "01,212,2222222,Joe,5th Ave,NYC,01202\n"
    "01,908,2222222,Jim,Elm Str.,MH,07974\n"
)
DISCOVER = {"relation": "tax", "support": 2, "algorithm": "fastcfd"}


def request(handle, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


@pytest.fixture
def worker(tracer):
    service = DiscoveryService(pool=SessionPool(max_sessions=4), max_workers=2)
    handle = ServerThread(service, ServerConfig(port=0)).start()
    yield handle
    handle.stop()


def upload(handle):
    status, headers, data = request(
        handle, "POST", "/v1/relations?name=tax",
        body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
    )
    assert status == 201, data
    return headers


def discover(handle, headers=None):
    status, received, data = request(
        handle, "POST", "/v1/discover",
        body=json.dumps(DISCOVER).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    assert status == 200, data
    return received, json.loads(data)


class TestTraceHeader:
    def test_every_traced_response_carries_the_trace_id(self, worker):
        headers = upload(worker)
        assert obs.TRACE_ID_HEADER in {k.lower() for k in headers}

    def test_incoming_traceparent_pins_the_trace_id(self, worker, tracer):
        upload(worker)
        trace_id, parent_id = "ab" * 16, "cd" * 8
        received, _ = discover(
            worker,
            {obs.TRACEPARENT_HEADER: obs.format_traceparent(trace_id, parent_id)},
        )
        lowered = {k.lower(): v for k, v in received.items()}
        assert lowered[obs.TRACE_ID_HEADER] == trace_id
        # The server's root span hangs off the upstream caller's span.
        roots = [
            r for r in tracer.ring.trace(trace_id) if r["name"] == "repro.http.request"
        ]
        assert roots and all(r["parent_id"] == parent_id for r in roots)

    def test_unsampled_traceparent_suppresses_tracing(self, worker, tracer):
        upload(worker)
        header = obs.format_traceparent("ef" * 16, "cd" * 8, sampled=False)
        received, _ = discover(worker, {obs.TRACEPARENT_HEADER: header})
        lowered = {k.lower() for k in received}
        assert obs.TRACE_ID_HEADER not in lowered
        assert tracer.ring.trace("ef" * 16) == []


class TestTraceDepth:
    def test_one_discover_spans_every_layer(self, worker, tracer):
        upload(worker)
        received, _ = discover(worker)
        lowered = {k.lower(): v for k, v in received.items()}
        trace_id = lowered[obs.TRACE_ID_HEADER]
        records = tracer.ring.trace(trace_id)
        names = {r["name"] for r in records}
        assert {
            "repro.http.request",
            "repro.http.parse",
            "repro.service.submit",
            "repro.service.execute",
            "repro.pool.admit",
            "repro.profiler.build",
            "repro.engine.run",
        } <= names
        layers = {obs.span_layer(str(r["name"])) for r in records}
        assert len(layers) >= 3
        assert all(r["trace_id"] == trace_id for r in records)
        # Exactly one root, and every other span reaches it through parents.
        by_id = {r["span_id"]: r for r in records}
        roots = [r for r in records if r["root"]]
        assert len(roots) == 1
        for record in records:
            node = record
            while node["parent_id"] in by_id:
                node = by_id[node["parent_id"]]
            assert node is roots[0]


class TestTraceEndpoints:
    def test_trace_listing_and_lookup(self, worker, tracer):
        upload(worker)
        received, _ = discover(worker)
        trace_id = {k.lower(): v for k, v in received.items()}[obs.TRACE_ID_HEADER]

        status, _, data = request(worker, "GET", "/v1/traces")
        assert status == 200
        listing = json.loads(data)
        assert listing["enabled"] is True
        # The GET itself is traced, so the ring keeps growing behind the
        # snapshot the handler took.
        assert 0 < listing["buffered_spans"] <= len(tracer.ring)
        assert trace_id in {t["trace_id"] for t in listing["traces"]}

        status, _, data = request(worker, "GET", f"/v1/traces/{trace_id}")
        assert status == 200
        document = json.loads(data)
        assert document["trace_id"] == trace_id
        assert len(document["spans"]) >= 7
        (root,) = document["tree"]
        assert root["name"] == "repro.http.request"
        assert root["children"]

    def test_unknown_trace_is_404(self, worker):
        status, _, data = request(worker, "GET", "/v1/traces/" + "00" * 16)
        assert status == 404
        assert json.loads(data)["error"]["code"] == "not_found"


class TestTracingIsInert:
    def test_traced_and_untraced_covers_are_byte_identical(self, worker):
        upload(worker)
        _, traced = discover(worker)
        obs.disable()
        try:
            _, untraced = discover(worker)
        finally:
            obs.configure(service="test", sample_rate=1.0, ring_capacity=512)
        assert json.dumps(traced["rules"], sort_keys=True) == json.dumps(
            untraced["rules"], sort_keys=True
        )
        assert traced["counts"] == untraced["counts"]
