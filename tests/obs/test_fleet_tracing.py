"""Fleet-level tracing over real sockets: router and workers share one trace."""

import http.client
import json

import pytest

from repro import obs
from repro.serve import CacheStore, DiscoveryService, SessionPool
from repro.serve.fleet import RouterConfig, RouterThread
from repro.serve.http import ServerConfig, ServerThread

CSV_BODY = (
    "CC,AC,PN,NM,STR,CT,ZIP\n"
    "01,908,1111111,Mike,Tree Ave.,MH,07974\n"
    "01,908,1111111,Rick,Tree Ave.,MH,07974\n"
    "01,212,2222222,Joe,5th Ave,NYC,01202\n"
    "01,908,2222222,Jim,Elm Str.,MH,07974\n"
    "44,131,3333333,Ben,High St.,EDI,EH4 1DT\n"
    "44,131,4444444,Ian,High St.,EDI,EH4 1DT\n"
)
DISCOVER = {"support": 2, "algorithm": "fastcfd"}


def request(handle, method, path, body=None, headers=None, timeout=60):
    connection = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class Fleet:
    """Two workers over one shared store, fronted by one router."""

    def __init__(self, tmp_path):
        self.workers = []
        for _ in range(2):
            service = DiscoveryService(
                pool=SessionPool(
                    max_sessions=4, store=CacheStore(tmp_path / "shared-store")
                ),
                max_workers=2,
            )
            self.workers.append(ServerThread(service, ServerConfig(port=0)).start())
        self.router = RouterThread(
            RouterConfig(
                port=0,
                workers=[worker.address for worker in self.workers],
                health_interval=0.2,
                fail_after=2,
                request_timeout=30.0,
            )
        ).start()

    def owner_and_successor(self, fingerprint):
        preference = self.router.router.ring.preference(fingerprint, limit=2)
        by_url = {worker.address: worker for worker in self.workers}
        return by_url[preference[0]], by_url[preference[1]]

    def stop(self):
        self.router.stop()
        for worker in self.workers:
            worker.stop()


@pytest.fixture
def fleet(tracer, tmp_path):
    handle = Fleet(tmp_path)
    yield handle
    handle.stop()


def upload(fleet):
    status, _, data = request(
        fleet.router, "POST", "/v1/relations?name=tax",
        body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
    )
    assert status == 201, data
    return json.loads(data)["fingerprint"]


def discover(fleet, fingerprint, headers=None):
    status, received, data = request(
        fleet.router, "POST", "/v1/discover",
        body=json.dumps({"relation": fingerprint, **DISCOVER}).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    assert status == 200, data
    return received, json.loads(data)


def fetch_trace(fleet, trace_id):
    status, _, data = request(fleet.router, "GET", f"/v1/traces/{trace_id}")
    assert status == 200, data
    return json.loads(data)


class TestOneTraceAcrossTheFleet:
    def test_router_and_worker_spans_share_the_trace_id(self, fleet):
        fingerprint = upload(fleet)
        received, _ = discover(fleet, fingerprint)
        trace_id = {k.lower(): v for k, v in received.items()}[obs.TRACE_ID_HEADER]

        document = fetch_trace(fleet, trace_id)
        spans = document["spans"]
        assert all(span["trace_id"] == trace_id for span in spans)
        names = {span["name"] for span in spans}
        # The router's side and the worker's side of the same request.
        assert {"repro.fleet.request", "repro.fleet.forward"} <= names
        assert {"repro.http.request", "repro.service.execute"} <= names
        layers = {obs.span_layer(str(span["name"])) for span in spans}
        assert len(layers) >= 3
        assert len(spans) >= 8

        # The worker's root hangs off the router's forward via traceparent.
        worker_roots = [s for s in spans if s["name"] == "repro.http.request"]
        forward_ids = {s["span_id"] for s in spans if s["name"] == "repro.fleet.forward"}
        assert worker_roots
        assert all(s["parent_id"] in forward_ids for s in worker_roots)

    def test_client_traceparent_threads_through_both_hops(self, fleet):
        fingerprint = upload(fleet)
        trace_id = "ab" * 16
        received, _ = discover(
            fleet, fingerprint,
            {obs.TRACEPARENT_HEADER: obs.format_traceparent(trace_id, "cd" * 8)},
        )
        lowered = {k.lower(): v for k, v in received.items()}
        assert lowered[obs.TRACE_ID_HEADER] == trace_id
        spans = fetch_trace(fleet, trace_id)["spans"]
        assert {s["name"] for s in spans} >= {
            "repro.fleet.request", "repro.http.request",
        }

    def test_trace_summaries_list_the_request(self, fleet):
        fingerprint = upload(fleet)
        received, _ = discover(fleet, fingerprint)
        trace_id = {k.lower(): v for k, v in received.items()}[obs.TRACE_ID_HEADER]
        status, _, data = request(fleet.router, "GET", "/v1/traces")
        assert status == 200
        listing = json.loads(data)
        assert trace_id in {t["trace_id"] for t in listing["traces"]}


class TestFailoverTracing:
    def test_failover_continues_the_trace_on_the_successor(self, fleet):
        fingerprint = upload(fleet)
        discover(fleet, fingerprint)  # warm the owner, seed the store
        owner, successor = fleet.owner_and_successor(fingerprint)
        owner.stop()  # graceful: the worker spills its warm session

        trace_id = "ef" * 16
        received, result = discover(
            fleet, fingerprint,
            {obs.TRACEPARENT_HEADER: obs.format_traceparent(trace_id, "cd" * 8)},
        )
        assert result["counts"]["total"] > 0
        lowered = {k.lower(): v for k, v in received.items()}
        assert lowered[obs.TRACE_ID_HEADER] == trace_id

        spans = fetch_trace(fleet, trace_id)["spans"]
        names = {span["name"] for span in spans}
        assert "repro.fleet.failover" in names
        failover = next(s for s in spans if s["name"] == "repro.fleet.failover")
        assert failover["attrs"]["successor"] == successor.address
        assert failover["attrs"]["failed"] == owner.address
        # The retried forward and the successor's serving spans stay inside
        # the same trace.
        forwards = [s for s in spans if s["name"] == "repro.fleet.forward"]
        assert {f["attrs"]["worker"] for f in forwards} >= {successor.address}
        assert "repro.http.request" in names
        assert all(span["trace_id"] == trace_id for span in spans)
