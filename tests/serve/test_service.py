"""Tests for DiscoveryService: request dedup, concurrent batches, lifecycle."""

import threading

import pytest

from repro.api import DiscoveryRequest, execute
from repro.api.registry import (
    AlgorithmCapabilities,
    AlgorithmRegistry,
    DiscoveryAlgorithm,
)
from repro.api.result import AlgorithmStats
from repro.exceptions import DiscoveryError
from repro.serve import DiscoveryService, SessionPool


@pytest.fixture
def blocking_registry():
    """A registry whose single engine blocks on an event and counts its runs.

    Holding the gate closed keeps submitted requests *in flight*, which makes
    the dedup behaviour deterministic to assert.
    """
    registry = AlgorithmRegistry()

    class BlockingAlgorithm(DiscoveryAlgorithm):
        name = "blocker"
        capabilities = AlgorithmCapabilities(auto_candidate=False)
        gate = threading.Event()
        started = threading.Event()
        runs = 0
        lock = threading.Lock()

        def run(self, relation, request, session=None):
            cls = type(self)
            with cls.lock:
                cls.runs += 1
            cls.started.set()
            assert cls.gate.wait(timeout=30), "test gate never opened"
            return [], AlgorithmStats(algorithm=self.name)

    registry.register(BlockingAlgorithm)
    try:
        yield registry, BlockingAlgorithm
    finally:
        BlockingAlgorithm.gate.set()  # never leave workers stuck


class TestDedup:
    def test_identical_in_flight_requests_share_one_run(
        self, cust_relation, blocking_registry
    ):
        registry, blocker = blocking_registry
        pool = SessionPool(registry=registry)
        with DiscoveryService(pool=pool, max_workers=1) as service:
            # The occupier pins the single worker, so everything submitted
            # after it stays in flight until the gate opens.
            occupier = service.submit(
                cust_relation, DiscoveryRequest(min_support=1, algorithm="blocker")
            )
            assert blocker.started.wait(timeout=30)
            target_request = DiscoveryRequest(min_support=2, algorithm="blocker")
            futures = [
                service.submit(cust_relation, target_request) for _ in range(3)
            ]
            # All three coalesced onto one future before any of them ran.
            assert futures[1] is futures[0] and futures[2] is futures[0]
            info = service.info()
            assert info["requests"] == 4
            assert info["deduplicated"] == 2
            blocker.gate.set()
            results = [future.result(timeout=30) for future in futures]
            occupier.result(timeout=30)
        # One engine run for the occupier plus ONE for the three duplicates.
        assert blocker.runs == 2
        assert results[0] is results[1] is results[2]
        info = service.info()
        assert info["completed"] == 2
        assert info["in_flight"] == 0

    def test_distinct_requests_do_not_coalesce(
        self, cust_relation, blocking_registry
    ):
        registry, blocker = blocking_registry
        with DiscoveryService(
            pool=SessionPool(registry=registry), max_workers=1
        ) as service:
            first = service.submit(
                cust_relation, DiscoveryRequest(min_support=1, algorithm="blocker")
            )
            second = service.submit(
                cust_relation, DiscoveryRequest(min_support=2, algorithm="blocker")
            )
            assert second is not first
            blocker.gate.set()
            first.result(timeout=30)
            second.result(timeout=30)
        assert service.info()["deduplicated"] == 0

    def test_completed_requests_are_not_deduplicated_against(self, cust_relation):
        request = DiscoveryRequest(min_support=2, algorithm="fastcfd")
        with DiscoveryService(max_workers=2) as service:
            first = service.run(cust_relation, request)
            second = service.run(cust_relation, request)
        # Two sequential engine runs (no dedup), one warmed session.
        assert service.info()["deduplicated"] == 0
        assert sorted(map(str, first.cfds)) == sorted(map(str, second.cfds))


class TestConcurrentSweep:
    def test_four_thread_sweep_is_byte_identical_to_sequential(self, cust_relation):
        """The ISSUE's acceptance bar: a concurrent support sweep through the
        service matches sequential one-shot runs exactly and records exactly
        one miss on each k-independent shared cache."""
        requests = [
            DiscoveryRequest(min_support=k, algorithm="fastcfd") for k in (1, 2, 3, 4)
        ]
        pool = SessionPool()
        with DiscoveryService(pool=pool, max_workers=4) as service:
            results = service.run_batch(
                [(cust_relation, request) for request in requests]
            )
        session = pool.session(cust_relation)
        info = session.cache_info()
        # The k-independent difference-set provider: built once, ever.
        assert info["closed_difference_sets"]["misses"] == 1
        assert info["closed_difference_sets"]["hits"] == 3
        # Four distinct thresholds -> four mining misses; the provider build
        # re-reads the k=2 result as the single hit.
        assert info["free_closed"]["misses"] == 4
        assert info["free_closed"]["hits"] == 1
        for result, request in zip(results, requests):
            oneshot = execute(cust_relation, request)
            assert [str(cfd) for cfd in result.cfds] == [
                str(cfd) for cfd in oneshot.cfds
            ]

    def test_sweep_convenience(self, cust_relation):
        with DiscoveryService(max_workers=2) as service:
            results = service.sweep(
                cust_relation,
                DiscoveryRequest(algorithm="fastcfd"),
                supports=[1, 2],
            )
        assert [result.min_support for result in results] == [1, 2]
        assert results[0].n_cfds >= results[1].n_cfds


class TestRelationRefs:
    def test_registered_names_serve_requests(self, cust_relation):
        with DiscoveryService(max_workers=2) as service:
            fingerprint = service.register("cust", cust_relation)
            assert fingerprint == cust_relation.fingerprint()
            by_name = service.run(
                "cust", DiscoveryRequest(min_support=2, algorithm="fastcfd")
            )
            by_value = service.run(
                cust_relation, DiscoveryRequest(min_support=2, algorithm="fastcfd")
            )
        assert sorted(map(str, by_name.cfds)) == sorted(map(str, by_value.cfds))
        # Name and value resolve to one pooled session.
        assert service.pool.info()["sessions"] == 1

    def test_unknown_name_rejected(self):
        with DiscoveryService(max_workers=1) as service:
            with pytest.raises(DiscoveryError, match="register"):
                service.run("nope", DiscoveryRequest())

    def test_invalid_name_rejected(self, cust_relation):
        with DiscoveryService(max_workers=1) as service:
            with pytest.raises(DiscoveryError, match="invalid relation name"):
                service.register("", cust_relation)


class TestFailures:
    def test_engine_errors_propagate_and_are_counted(self, cust_relation):
        request = DiscoveryRequest(
            min_support=1, algorithm="cfdminer", variable_only=True
        )
        with DiscoveryService(max_workers=1) as service:
            future = service.submit(cust_relation, request)
            with pytest.raises(DiscoveryError, match="variable"):
                future.result(timeout=30)
        info = service.info()
        assert info["failed"] == 1
        assert info["completed"] == 0
        assert info["in_flight"] == 0

    def test_max_workers_validated(self):
        with pytest.raises(DiscoveryError, match="max_workers"):
            DiscoveryService(max_workers=0)
