"""Tests for relation fingerprinting — the session pool's cache keys."""

import pytest

from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation
from repro.serve import relation_fingerprint


def test_equal_relations_share_a_fingerprint():
    rows = [("908", "MH"), ("212", "NYC")]
    first = Relation.from_rows(["AC", "CT"], rows)
    second = Relation.from_rows(["AC", "CT"], list(rows))
    assert first is not second
    assert relation_fingerprint(first) == relation_fingerprint(second)


def test_fingerprint_is_cached_and_stable():
    relation = Relation.from_rows(["A"], [("x",), ("y",)])
    fingerprint = relation_fingerprint(relation)
    assert fingerprint == relation.fingerprint()
    assert len(fingerprint) == 32
    assert int(fingerprint, 16) >= 0  # hex digest


def test_data_changes_the_fingerprint():
    base = Relation.from_rows(["A", "B"], [("1", "2")])
    other = Relation.from_rows(["A", "B"], [("1", "3")])
    assert relation_fingerprint(base) != relation_fingerprint(other)


def test_schema_rename_changes_the_fingerprint():
    base = Relation.from_rows(["A", "B"], [("1", "2")])
    renamed = base.rename({"B": "C"})
    assert relation_fingerprint(base) != relation_fingerprint(renamed)


def test_value_types_are_distinguished():
    # '1' and 1 encode to different digests: repr-based hashing keeps types.
    strings = Relation.from_rows(["A"], [("1",), ("2",)])
    integers = Relation.from_rows(["A"], [(1,), (2,)])
    assert relation_fingerprint(strings) != relation_fingerprint(integers)


def test_column_order_matters():
    ab = Relation.from_rows(["A", "B"], [("x", "y")])
    ba = Relation.from_rows(["B", "A"], [("x", "y")])
    assert relation_fingerprint(ab) != relation_fingerprint(ba)


def test_non_relation_rejected():
    with pytest.raises(DiscoveryError, match="Relation"):
        relation_fingerprint("not a relation")
