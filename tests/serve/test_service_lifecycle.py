"""Regression tests: idempotent, in-flight-safe DiscoveryService shutdown,
plus the stats() snapshot both /metrics and --batch --stats render from."""

import threading

import pytest

from repro.api import DiscoveryRequest
from repro.exceptions import DiscoveryError
from repro.serve import CacheStore, DiscoveryService, SessionPool


class TestShutdown:
    def test_shutdown_is_idempotent(self, cust_relation):
        service = DiscoveryService(max_workers=1)
        service.run(cust_relation, DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        service.shutdown()
        service.shutdown()  # the regression: this used to be untested surface
        service.shutdown(wait=False)
        assert service.info()["shutdown"] is True

    def test_concurrent_shutdown_calls_are_safe(self, cust_relation):
        service = DiscoveryService(max_workers=2)
        future = service.submit(
            cust_relation, DiscoveryRequest(min_support=1, algorithm="fastcfd")
        )
        errors = []

        def shut():
            try:
                service.shutdown(wait=True)
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=shut) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        # The in-flight request drained to completion, not cancellation.
        assert future.result(timeout=1).min_support == 1

    def test_submit_after_shutdown_raises_discovery_error(self, cust_relation):
        service = DiscoveryService(max_workers=1)
        service.shutdown()
        with pytest.raises(DiscoveryError, match="shut down"):
            service.submit(cust_relation, DiscoveryRequest(min_support=1))

    def test_graceful_shutdown_spills_pool_to_store(self, tmp_path, cust_relation):
        """The server drain path: shutdown(wait=True) persists warmed
        sessions exactly once, so the next worker warm-starts."""
        store = CacheStore(tmp_path)
        pool = SessionPool(store=store)
        service = DiscoveryService(pool=pool, max_workers=2)
        service.run(cust_relation, DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        writes_before = store.writes
        service.shutdown(wait=True)
        assert store.writes > writes_before
        entries_after_first = store.writes
        service.shutdown(wait=True)  # idempotent: no second spill
        assert store.writes == entries_after_first

    def test_shutdown_without_wait_does_not_spill(self, tmp_path, cust_relation):
        store = CacheStore(tmp_path)
        service = DiscoveryService(
            pool=SessionPool(store=store), max_workers=1
        )
        service.run(cust_relation, DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        service.shutdown(wait=False)
        # A non-waiting shutdown cannot safely dump in-flight sessions; the
        # later waiting call still gets its one spill.
        service.shutdown(wait=True)
        assert store.writes > 0


class TestStats:
    def test_stats_latency_aggregates(self, cust_relation):
        with DiscoveryService(max_workers=2) as service:
            service.run_batch(
                [
                    (cust_relation, DiscoveryRequest(min_support=k, algorithm="fastcfd"))
                    for k in (1, 2, 3)
                ]
            )
        stats = service.stats()
        latency = stats["latency"]
        assert latency["count"] == 3
        assert latency["total_seconds"] > 0
        assert latency["min_seconds"] <= latency["mean_seconds"] <= latency["max_seconds"]
        # Bucket counts sum to the executed-run count; last bound is +Inf.
        assert sum(count for _, count in latency["buckets"]) == 3
        assert latency["buckets"][-1][0] is None

    def test_stats_includes_pool_and_store(self, tmp_path, cust_relation):
        store = CacheStore(tmp_path)
        with DiscoveryService(
            pool=SessionPool(store=store), max_workers=1
        ) as service:
            service.run(
                cust_relation, DiscoveryRequest(min_support=2, algorithm="fastcfd")
            )
            stats = service.stats()
        assert stats["pool"]["sessions"] == 1
        assert stats["store"]["root"] == str(tmp_path)

    def test_stats_is_json_native(self, cust_relation):
        import json

        with DiscoveryService(max_workers=1) as service:
            service.run(
                cust_relation, DiscoveryRequest(min_support=2, algorithm="fastcfd")
            )
        json.dumps(service.stats(), allow_nan=False)

    def test_deduplicated_submissions_do_not_inflate_latency(self, cust_relation):
        """Latency counts engine executions, not coalesced callers."""
        request = DiscoveryRequest(min_support=2, algorithm="fastcfd")
        with DiscoveryService(max_workers=1) as service:
            service.run(cust_relation, request)
        stats = service.stats()
        assert stats["latency"]["count"] == stats["completed"]
