"""The cross-process spill lock: mutual exclusion, staleness, degradation.

Two workers sharing one ``--cache-dir`` both run read→union→write on the
fixed-key bundle entries when they spill; the ``O_EXCL`` lock file
serializes those merges.  These tests pin the lock's contract (exclusive,
self-cleaning, stale-breaking, best-effort under timeout) and then the
actual regression: concurrent ``dump_caches`` of the *same* fingerprint
from two sessions warming different structures must union, not clobber.
"""

import threading
import time

import pytest

from repro.api import DiscoveryRequest, Profiler
from repro.relational.relation import Relation
from repro.serve import CacheStore
from repro.serve import store as store_format

ATTRIBUTES = ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]
ROWS = [
    ("01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"),
    ("01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"),
    ("01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"),
    ("01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"),
    ("44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"),
    ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ("44", "908", "4444444", "Ian", "Port PI", "MH", "W1B 1JH"),
    ("01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"),
]


def fresh_relation() -> Relation:
    return Relation.from_rows(list(ATTRIBUTES), [tuple(row) for row in ROWS])


@pytest.fixture
def store(tmp_path) -> CacheStore:
    return CacheStore(tmp_path / "cache")


class TestLockPrimitive:
    def test_acquire_yields_true_and_cleans_up(self, store):
        path = store.root / "fp" / ".lock-kind"
        with store.lock("fp", "kind") as acquired:
            assert acquired is True
            assert path.exists()
        assert not path.exists()

    def test_mutual_exclusion_between_threads(self, store):
        order = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with store.lock("fp", "kind") as acquired:
                assert acquired
                order.append("holder-in")
                entered.set()
                assert release.wait(timeout=10)
                order.append("holder-out")

        def contender():
            assert entered.wait(timeout=10)
            with store.lock("fp", "kind") as acquired:
                assert acquired
                order.append("contender-in")

        threads = [threading.Thread(target=holder), threading.Thread(target=contender)]
        for thread in threads:
            thread.start()
        assert entered.wait(timeout=10)
        time.sleep(0.05)  # give the contender time to start spinning
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert order == ["holder-in", "holder-out", "contender-in"]

    def test_distinct_kinds_do_not_contend(self, store):
        with store.lock("fp", "a") as first:
            with store.lock("fp", "b") as second:
                assert first and second

    def test_stale_lock_is_broken(self, store, monkeypatch):
        directory = store.root / "fp"
        directory.mkdir(parents=True)
        stale = directory / ".lock-kind"
        stale.touch()
        old = time.time() - (store.LOCK_STALE_SECONDS + 10)
        import os

        os.utime(stale, (old, old))
        started = time.monotonic()
        with store.lock("fp", "kind") as acquired:
            assert acquired is True
        assert time.monotonic() - started < store.LOCK_TIMEOUT_SECONDS

    def test_timeout_degrades_to_unlocked(self, store, monkeypatch):
        monkeypatch.setattr(CacheStore, "LOCK_TIMEOUT_SECONDS", 0.05)
        directory = store.root / "fp"
        directory.mkdir(parents=True)
        held = directory / ".lock-kind"
        held.touch()  # fresh foreign lock that never releases
        with store.lock("fp", "kind") as acquired:
            assert acquired is False
        assert store.lock_timeouts == 1
        assert held.exists()  # a lock we failed to take is never unlinked
        assert store.info()["lock_timeouts"] == 1

    def test_lock_files_are_invisible_to_entry_walks(self, store):
        store.put("fp", store_format.KIND_FREE_CLOSED, {"k": 1}, meta={})
        with store.lock("fp", "kind"):
            assert len(store) == 1
            assert store.load_all("fp") != []


class TestConcurrentSpill:
    def test_concurrent_dumps_of_same_fingerprint_union(self, store):
        """The PR-6 regression: two workers spill the same relation at once.

        Each session warms a *different* attribute partition, then both dump
        concurrently (barrier-released).  The fixed-key bundle merge used to
        race read→union→write, so the slower writer dropped the faster one's
        additions; under the lock the merged bundle must carry both."""
        for _ in range(3):  # a few rounds to give a real race room to show
            left = Profiler(fresh_relation())
            right = Profiler(fresh_relation())
            left.attribute_partition(("CC",))
            left.attribute_partition(("CC", "AC"))
            right.attribute_partition(("ZIP",))
            right.attribute_partition(("CT", "ZIP"))

            barrier = threading.Barrier(2, timeout=10)
            failures = []

            def spill(profiler):
                try:
                    barrier.wait()
                    profiler.dump_caches(store)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(exc)

            threads = [
                threading.Thread(target=spill, args=(left,)),
                threading.Thread(target=spill, args=(right,)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures

            reloaded = Profiler(fresh_relation())
            assert reloaded.warm_from(store) > 0
            size = reloaded.cache_info()["attribute_partitions"]["size"]
            # Both sessions' partitions survived the concurrent merge.
            assert size >= 4, f"bundle lost entries in the race: size={size}"

    def test_concurrent_full_runs_union_pattern_partitions(self, store):
        """Same race through the ctane path (pattern-partition bundles)."""
        warm = Profiler(fresh_relation())
        warm.run(DiscoveryRequest(min_support=1, algorithm="ctane"))
        rich = warm.cache_info()["pattern_partitions"]["size"]

        cold = Profiler(fresh_relation())
        cold.run(DiscoveryRequest(min_support=4, algorithm="ctane"))

        barrier = threading.Barrier(2, timeout=10)

        def spill(profiler):
            barrier.wait()
            profiler.dump_caches(store)

        threads = [
            threading.Thread(target=spill, args=(warm,)),
            threading.Thread(target=spill, args=(cold,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        reloaded = Profiler(fresh_relation())
        reloaded.warm_from(store)
        assert reloaded.cache_info()["pattern_partitions"]["size"] >= rich


class TestStoreBudget:
    def test_validation(self, tmp_path):
        from repro.exceptions import CacheStoreError

        with pytest.raises(CacheStoreError):
            CacheStore(tmp_path / "c", max_bytes=-1)

    def test_enforce_budget_noop_within_budget(self, tmp_path):
        store = CacheStore(tmp_path / "c", max_bytes=10 * 2 ** 20)
        profiler = Profiler(fresh_relation())
        profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        profiler.dump_caches(store)
        assert store.enforce_budget() is None
        assert len(store) > 0

    def test_unbounded_store_never_collects(self, tmp_path):
        store = CacheStore(tmp_path / "c")
        assert store.max_bytes is None
        assert store.enforce_budget() is None
        assert store.info()["max_bytes"] is None

    def test_spill_past_budget_collects_back_down(self, tmp_path):
        store = CacheStore(tmp_path / "c", max_bytes=1)  # everything overflows
        profiler = Profiler(fresh_relation())
        profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        written = profiler.dump_caches(store)
        assert written > 0
        # dump_caches itself enforced the budget after spilling: with a
        # 1-byte budget the cost-aware GC evicts (almost) everything.
        assert len(store) < written

    def test_budget_is_reported(self, tmp_path):
        store = CacheStore(tmp_path / "c", max_bytes=4096)
        assert store.info()["max_bytes"] == 4096
