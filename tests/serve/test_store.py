"""Tests for the persistent cache store: format guards, Profiler round trips.

The satellite acceptance bar: for every algorithm, a warmed ``Profiler``
dumped to a :class:`~repro.serve.CacheStore` and reloaded in a fresh
process-like context (a new ``Profiler`` over an independently constructed
equal relation) must produce byte-identical ``DiscoveryResult`` output and
record cache hits on the warm path — and a corrupted or mismatched store
must degrade to a cold build, never to a crash.
"""

import json

import numpy as np
import pytest

from repro.api import DiscoveryRequest, Profiler
from repro.exceptions import CacheStoreError
from repro.relational.relation import Relation
from repro.serve import CacheStore
from repro.serve import store as store_format

ATTRIBUTES = ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]
ROWS = [
    ("01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"),
    ("01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"),
    ("01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"),
    ("01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"),
    ("44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"),
    ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ("44", "908", "4444444", "Ian", "Port PI", "MH", "W1B 1JH"),
    ("01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"),
]


def fresh_relation() -> Relation:
    """An independently constructed copy (simulates a new process)."""
    return Relation.from_rows(list(ATTRIBUTES), [tuple(row) for row in ROWS])


@pytest.fixture
def store(tmp_path) -> CacheStore:
    return CacheStore(tmp_path / "cache")


def rules_bytes(result) -> str:
    return json.dumps(result.to_json_dict()["rules"])


class TestEntryFormat:
    def test_put_get_round_trip(self, store):
        arrays = {
            "rows": np.arange(5, dtype=np.int64),
            "labels": np.array([0, 0, 1, 1, 2], dtype=np.int32),
        }
        store.put("fp1", "free_closed", {"k": 2}, meta={"x": 1}, arrays=arrays)
        entry = store.get("fp1", "free_closed", {"k": 2})
        assert entry is not None
        assert entry.meta == {"x": 1}
        assert np.array_equal(entry.array("rows", "int64"), arrays["rows"])
        assert np.array_equal(entry.array("labels", "int32"), arrays["labels"])

    def test_missing_entry_is_none(self, store):
        assert store.get("fp1", "free_closed", {"k": 99}) is None

    def test_distinct_params_are_distinct_entries(self, store):
        store.put("fp1", "free_closed", {"k": 2}, meta={"k": 2})
        store.put("fp1", "free_closed", {"k": 3}, meta={"k": 3})
        assert store.get("fp1", "free_closed", {"k": 2}).meta == {"k": 2}
        assert store.get("fp1", "free_closed", {"k": 3}).meta == {"k": 3}
        assert len(store) == 2

    def test_truncated_file_is_a_miss_not_a_crash(self, store):
        path = store.put(
            "fp1", "free_closed", {"k": 2},
            arrays={"rows": np.arange(100, dtype=np.int64)},
        )
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert store.get("fp1", "free_closed", {"k": 2}) is None
        assert store.load_failures == 1

    def test_garbage_file_is_a_miss(self, store):
        path = store.put("fp1", "free_closed", {"k": 2}, meta={})
        path.write_bytes(b"this is not a cache entry at all")
        assert store.get("fp1", "free_closed", {"k": 2}) is None

    def test_format_version_mismatch_is_a_miss(self, store, monkeypatch):
        monkeypatch.setattr(CacheStore, "FORMAT_VERSION", 99)
        store.put("fp1", "free_closed", {"k": 2}, meta={})
        monkeypatch.undo()
        assert store.get("fp1", "free_closed", {"k": 2}) is None
        assert store.load_failures == 1

    def test_fingerprint_reverification_on_load(self, store, tmp_path):
        path = store.put("fp1", "free_closed", {"k": 2}, meta={})
        # Simulate a moved/mixed-up file: same bytes under another relation.
        target = store.root / "fp2" / path.name
        target.parent.mkdir(parents=True)
        target.write_bytes(path.read_bytes())
        assert store.get("fp2", "free_closed", {"k": 2}) is None
        assert store.load_all("fp2") == []

    def test_forbidden_dtype_rejected_on_write(self, store):
        with pytest.raises(CacheStoreError, match="dtype"):
            store.put(
                "fp1", "free_closed", {"k": 2},
                arrays={"bad": np.array(["a", "b"], dtype=object)},
            )

    def test_dtype_guard_on_read(self, store):
        store.put(
            "fp1", "free_closed", {"k": 2},
            arrays={"rows": np.arange(4, dtype=np.float64)},
        )
        entry = store.get("fp1", "free_closed", {"k": 2})
        with pytest.raises(CacheStoreError, match="dtype"):
            entry.array("rows", "int64")

    def test_clear_and_size(self, store):
        store.put("fp1", "free_closed", {"k": 2}, meta={})
        store.put("fp2", "free_closed", {"k": 2}, meta={})
        assert store.size_bytes() > 0
        assert store.clear("fp1") == 1
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0

    def test_info_counters(self, store):
        store.put("fp1", "free_closed", {"k": 2}, meta={})
        store.get("fp1", "free_closed", {"k": 2})
        info = store.info()
        assert info["entries"] == 1
        assert info["writes"] == 1
        assert info["loads"] == 1
        assert info["load_failures"] == 0


class TestProfilerRoundTrip:
    @pytest.mark.parametrize(
        "algorithm", ["cfdminer", "ctane", "fastcfd", "naivefast"]
    )
    def test_dump_reload_is_byte_identical_and_warm(self, store, algorithm):
        request = DiscoveryRequest(min_support=2, algorithm=algorithm)
        warmed = Profiler(fresh_relation())
        cold_result = warmed.run(request)
        assert warmed.dump_caches(store) > 0

        reloaded = Profiler(fresh_relation())
        assert reloaded.warm_from(store) > 0
        warm_result = reloaded.run(request)

        assert rules_bytes(warm_result) == rules_bytes(cold_result)
        info = reloaded.cache_info()
        # The warm path is served from the loaded caches: the memoised
        # engine result hits, and nothing was mined or rebuilt.
        assert info["engine_results"] == {"hits": 1, "misses": 0, "size": 1}
        assert info["free_closed"]["misses"] == 0
        assert info["closed_difference_sets"]["misses"] == 0
        assert info["partition_difference_sets"]["misses"] == 0

    def test_warm_structures_serve_new_supports(self, store):
        """Structure caches (not just memoised covers) survive the round
        trip: a *different* threshold on the warm session reuses the
        k-independent provider instead of rebuilding it."""
        warmed = Profiler(fresh_relation())
        warmed.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        warmed.dump_caches(store)

        reloaded = Profiler(fresh_relation())
        reloaded.warm_from(store)
        result = reloaded.run(DiscoveryRequest(min_support=3, algorithm="fastcfd"))
        oneshot = Profiler(fresh_relation()).run(
            DiscoveryRequest(min_support=3, algorithm="fastcfd")
        )
        assert sorted(map(str, result.cfds)) == sorted(map(str, oneshot.cfds))
        info = reloaded.cache_info()
        assert info["engine_results"]["misses"] == 1  # k=3 was never cached
        assert info["closed_difference_sets"]["hits"] == 1  # provider was
        assert info["closed_difference_sets"]["misses"] == 0

    def test_ctane_pattern_partitions_survive(self, store):
        warmed = Profiler(fresh_relation())
        warmed.run(DiscoveryRequest(min_support=1, algorithm="ctane"))
        assert warmed.cache_info()["pattern_partitions"]["size"] > 0
        warmed.dump_caches(store)

        reloaded = Profiler(fresh_relation())
        reloaded.warm_from(store)
        info = reloaded.cache_info()
        assert (
            info["pattern_partitions"]["size"]
            == warmed.cache_info()["pattern_partitions"]["size"]
        )
        # A different-support CTANE run hits the loaded lattice partitions.
        reloaded.run(DiscoveryRequest(min_support=2, algorithm="ctane"))
        assert reloaded.cache_info()["pattern_partitions"]["hits"] > 0

    def test_build_seconds_restored_for_cost_aware_eviction(self, store):
        warmed = Profiler(fresh_relation())
        warmed.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        assert warmed.build_seconds_total() > 0
        warmed.dump_caches(store)

        reloaded = Profiler(fresh_relation())
        reloaded.warm_from(store)
        assert reloaded.build_seconds_total() > 0

    def test_corrupted_store_falls_back_to_cold_build(self, store):
        request = DiscoveryRequest(min_support=2, algorithm="fastcfd")
        warmed = Profiler(fresh_relation())
        expected = warmed.run(request)
        warmed.dump_caches(store)
        for path in store.root.glob("*/*.rpc"):
            blob = path.read_bytes()
            path.write_bytes(blob[: max(8, len(blob) // 3)])

        reloaded = Profiler(fresh_relation())
        assert reloaded.warm_from(store) == 0  # every entry rejected
        result = reloaded.run(request)  # cold build, not a crash
        assert rules_bytes(result) == rules_bytes(expected)
        assert reloaded.cache_info()["engine_results"]["misses"] == 1

    def test_mismatched_relation_loads_nothing(self, store):
        warmed = Profiler(fresh_relation())
        warmed.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        warmed.dump_caches(store)
        other = Relation.from_rows(["A", "B"], [("x", "1"), ("x", "2")])
        assert Profiler(other).warm_from(store) == 0

    def test_dump_skips_structures_still_building(self, store):
        profiler = Profiler(fresh_relation())
        assert profiler.dump_caches(store) == 0
        assert len(store) == 0

    def test_bundle_dumps_merge_instead_of_clobbering(self, store):
        """Two workers over one relation: the colder worker's later dump
        must not erase the warmer worker's pattern partitions (bundles live
        under one fixed store key per relation)."""
        warm_worker = Profiler(fresh_relation())
        warm_worker.run(DiscoveryRequest(min_support=1, algorithm="ctane"))
        rich = warm_worker.cache_info()["pattern_partitions"]["size"]
        warm_worker.dump_caches(store)

        cold_worker = Profiler(fresh_relation())  # never saw the store
        cold_worker.run(DiscoveryRequest(min_support=4, algorithm="ctane"))
        poor = cold_worker.cache_info()["pattern_partitions"]["size"]
        assert poor < rich
        cold_worker.dump_caches(store)  # dumps last — used to clobber

        reloaded = Profiler(fresh_relation())
        reloaded.warm_from(store)
        assert reloaded.cache_info()["pattern_partitions"]["size"] >= rich


class TestPackHelpers:
    def test_query_cache_round_trip(self):
        exported = [
            (2, frozenset({(0, 1), (3, 4)}), {frozenset({1, 2}), frozenset({5})}),
            (0, frozenset(), {frozenset({1})}),
        ]
        meta = store_format.pack_query_cache(exported)
        json.dumps(meta)  # must be JSON-native
        restored = store_format.unpack_query_cache(meta)
        assert sorted(restored) == sorted(
            (rhs, items, family) for rhs, items, family in exported
        )

    def test_engine_result_with_exotic_values_is_not_persisted(self):
        from repro.api.result import AlgorithmStats
        from repro.core.cfd import CFD

        cfd = CFD(("A",), ((1, 2),), "B", "x")  # tuple-valued constant
        assert (
            store_format.pack_engine_result((cfd,), AlgorithmStats(algorithm="t"))
            is None
        )
