"""Tests for SessionPool: LRU eviction order, memory caps, accounting."""

import pytest

from repro.api import DiscoveryRequest, Profiler
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation
from repro.serve import SessionPool, relation_fingerprint


def _relation(tag: str) -> Relation:
    return Relation.from_rows(
        ["A", "B"],
        [(tag, "x"), (tag, "x"), (f"{tag}!", "y")],
    )


@pytest.fixture
def relations():
    return [_relation(f"r{i}") for i in range(4)]


class TestLookup:
    def test_same_relation_reuses_one_session(self, relations):
        pool = SessionPool()
        first = pool.session(relations[0])
        second = pool.session(relations[0].copy())
        assert first is second
        assert isinstance(first, Profiler)
        info = pool.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert len(pool) == 1

    def test_equal_content_different_objects_share_a_session(self, relations):
        pool = SessionPool()
        twin = _relation("r0")
        assert pool.session(relations[0]) is pool.session(twin)

    def test_distinct_relations_get_distinct_sessions(self, relations):
        pool = SessionPool()
        sessions = [pool.session(r) for r in relations]
        assert len({id(s) for s in sessions}) == len(relations)
        assert len(pool) == len(relations)

    def test_explicit_fingerprint_skips_recomputation(self, relations):
        pool = SessionPool()
        fingerprint = relation_fingerprint(relations[0])
        session = pool.session(relations[0], fingerprint=fingerprint)
        assert pool.session(relations[0]) is session
        assert fingerprint in pool


class TestEviction:
    def test_lru_eviction_order(self, relations):
        r1, r2, r3 = relations[:3]
        pool = SessionPool(max_sessions=2)
        s1 = pool.session(r1)
        pool.session(r2)
        # Touch r1: it becomes most recent, so r2 is the LRU victim.
        assert pool.session(r1) is s1
        pool.session(r3)
        assert len(pool) == 2
        assert relation_fingerprint(r2) not in pool
        assert relation_fingerprint(r1) in pool
        assert relation_fingerprint(r3) in pool
        assert pool.info()["evictions"] == 1

    def test_fingerprints_in_lru_order(self, relations):
        r1, r2 = relations[:2]
        pool = SessionPool()
        pool.session(r1)
        pool.session(r2)
        pool.session(r1)  # refreshes r1
        assert pool.fingerprints() == [
            relation_fingerprint(r2),
            relation_fingerprint(r1),
        ]

    def test_evicted_session_is_recreated_on_demand(self, relations):
        r1, r2 = relations[:2]
        pool = SessionPool(max_sessions=1)
        s1 = pool.session(r1)
        pool.session(r2)
        replacement = pool.session(r1)
        assert replacement is not s1  # a fresh, cold session

    def test_manual_evict_and_clear(self, relations):
        pool = SessionPool()
        pool.session(relations[0])
        pool.session(relations[1])
        assert pool.evict(relation_fingerprint(relations[0])) is True
        assert pool.evict("0" * 32) is False
        pool.clear()
        assert len(pool) == 0
        assert pool.info()["evictions"] == 2


class TestMemoryAccounting:
    def test_estimated_bytes_grow_with_warmed_caches(self, relations):
        pool = SessionPool()
        session = pool.session(relations[0])
        cold = pool.estimated_bytes()
        session.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
        assert pool.estimated_bytes() > cold

    def test_byte_cap_evicts_down_to_most_recent(self, relations):
        # A 1-byte budget can never be met, but the most recently used
        # session must survive: a pool that holds nothing cannot serve.
        pool = SessionPool(max_sessions=None, max_bytes=1)
        for relation in relations[:3]:
            session = pool.session(relation)
            session.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
            pool.enforce_limits()
        assert len(pool) == 1
        assert pool.fingerprints() == [relation_fingerprint(relations[2])]
        assert pool.info()["evictions"] == 2

    def test_generous_byte_cap_keeps_everything(self, relations):
        pool = SessionPool(max_sessions=None, max_bytes=1 << 30)
        for relation in relations:
            pool.session(relation).run(
                DiscoveryRequest(min_support=1, algorithm="cfdminer")
            )
        assert pool.enforce_limits() == 0
        assert len(pool) == len(relations)

    def test_info_reports_per_session_bytes(self, relations):
        pool = SessionPool()
        pool.session(relations[0]).run(
            DiscoveryRequest(min_support=1, algorithm="fastcfd")
        )
        info = pool.info()
        assert info["sessions"] == 1
        (entry,) = info["lru"]
        assert entry["rows"] == relations[0].n_rows
        assert entry["estimated_bytes"] > 0
        assert info["estimated_bytes"] == entry["estimated_bytes"]


class TestValidation:
    def test_bad_caps_rejected(self):
        with pytest.raises(DiscoveryError, match="max_sessions"):
            SessionPool(max_sessions=0)
        with pytest.raises(DiscoveryError, match="max_bytes"):
            SessionPool(max_bytes=0)
