"""Tests for SessionPool: cost-aware eviction, memory caps, persistent spill."""

import pytest

from repro.api import DiscoveryRequest, Profiler
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation
from repro.serve import CacheStore, SessionPool, relation_fingerprint


def _relation(tag: str) -> Relation:
    return Relation.from_rows(
        ["A", "B"],
        [(tag, "x"), (tag, "x"), (f"{tag}!", "y")],
    )


@pytest.fixture
def relations():
    return [_relation(f"r{i}") for i in range(4)]


class TestLookup:
    def test_same_relation_reuses_one_session(self, relations):
        pool = SessionPool()
        first = pool.session(relations[0])
        second = pool.session(relations[0].copy())
        assert first is second
        assert isinstance(first, Profiler)
        info = pool.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert len(pool) == 1

    def test_equal_content_different_objects_share_a_session(self, relations):
        pool = SessionPool()
        twin = _relation("r0")
        assert pool.session(relations[0]) is pool.session(twin)

    def test_distinct_relations_get_distinct_sessions(self, relations):
        pool = SessionPool()
        sessions = [pool.session(r) for r in relations]
        assert len({id(s) for s in sessions}) == len(relations)
        assert len(pool) == len(relations)

    def test_explicit_fingerprint_skips_recomputation(self, relations):
        pool = SessionPool()
        fingerprint = relation_fingerprint(relations[0])
        session = pool.session(relations[0], fingerprint=fingerprint)
        assert pool.session(relations[0]) is session
        assert fingerprint in pool


class TestEviction:
    def test_lru_eviction_order(self, relations):
        r1, r2, r3 = relations[:3]
        pool = SessionPool(max_sessions=2)
        s1 = pool.session(r1)
        pool.session(r2)
        # Touch r1: it becomes most recent, so r2 is the LRU victim.
        assert pool.session(r1) is s1
        pool.session(r3)
        assert len(pool) == 2
        assert relation_fingerprint(r2) not in pool
        assert relation_fingerprint(r1) in pool
        assert relation_fingerprint(r3) in pool
        assert pool.info()["evictions"] == 1

    def test_fingerprints_in_lru_order(self, relations):
        r1, r2 = relations[:2]
        pool = SessionPool()
        pool.session(r1)
        pool.session(r2)
        pool.session(r1)  # refreshes r1
        assert pool.fingerprints() == [
            relation_fingerprint(r2),
            relation_fingerprint(r1),
        ]

    def test_evicted_session_is_recreated_on_demand(self, relations):
        r1, r2 = relations[:2]
        pool = SessionPool(max_sessions=1)
        s1 = pool.session(r1)
        pool.session(r2)
        replacement = pool.session(r1)
        assert replacement is not s1  # a fresh, cold session

    def test_manual_evict_and_clear(self, relations):
        pool = SessionPool()
        pool.session(relations[0])
        pool.session(relations[1])
        assert pool.evict(relation_fingerprint(relations[0])) is True
        assert pool.evict("0" * 32) is False
        pool.clear()
        assert len(pool) == 0
        assert pool.info()["evictions"] == 2


class TestMemoryAccounting:
    def test_estimated_bytes_grow_with_warmed_caches(self, relations):
        pool = SessionPool()
        session = pool.session(relations[0])
        cold = pool.estimated_bytes()
        session.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
        assert pool.estimated_bytes() > cold

    def test_byte_cap_evicts_down_to_most_recent(self, relations):
        # A 1-byte budget can never be met, but the most recently used
        # session must survive: a pool that holds nothing cannot serve.
        pool = SessionPool(max_sessions=None, max_bytes=1)
        for relation in relations[:3]:
            session = pool.session(relation)
            session.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
            pool.enforce_limits()
        assert len(pool) == 1
        assert pool.fingerprints() == [relation_fingerprint(relations[2])]
        assert pool.info()["evictions"] == 2

    def test_generous_byte_cap_keeps_everything(self, relations):
        pool = SessionPool(max_sessions=None, max_bytes=1 << 30)
        for relation in relations:
            pool.session(relation).run(
                DiscoveryRequest(min_support=1, algorithm="cfdminer")
            )
        assert pool.enforce_limits() == 0
        assert len(pool) == len(relations)

    def test_info_reports_per_session_bytes(self, relations):
        pool = SessionPool()
        pool.session(relations[0]).run(
            DiscoveryRequest(min_support=1, algorithm="fastcfd")
        )
        info = pool.info()
        assert info["sessions"] == 1
        (entry,) = info["lru"]
        assert entry["rows"] == relations[0].n_rows
        assert entry["estimated_bytes"] > 0
        assert info["estimated_bytes"] == entry["estimated_bytes"]


class TestCostAwareEviction:
    def test_cheapest_to_rebuild_evicted_first(self, relations):
        """An expensive (warmed) session outlives colder, more recent ones."""
        r_costly, r_cold, r_new = relations[:3]
        pool = SessionPool(max_sessions=2)
        costly = pool.session(r_costly)
        costly.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
        assert costly.build_seconds_total() > 0
        pool.session(r_cold)  # never run: zero observed build cost
        # Capacity forces one eviction; pure LRU would drop r_costly (the
        # least recently used), cost-aware eviction drops the cold session.
        pool.session(r_new)
        assert relation_fingerprint(r_costly) in pool
        assert relation_fingerprint(r_cold) not in pool
        assert relation_fingerprint(r_new) in pool

    def test_equal_cost_falls_back_to_lru(self, relations):
        r1, r2, r3 = relations[:3]
        pool = SessionPool(max_sessions=2)
        pool.session(r1)
        pool.session(r2)
        pool.session(r1)  # refresh r1: r2 is now both cheapest-tied and LRU
        pool.session(r3)
        assert relation_fingerprint(r2) not in pool
        assert relation_fingerprint(r1) in pool

    def test_most_recent_session_never_evicted(self, relations):
        r_old, r_new = relations[:2]
        pool = SessionPool(max_sessions=1)
        expensive = pool.session(r_old)
        expensive.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
        pool.session(r_new)  # r_new is MRU: r_old evicted despite its cost
        assert relation_fingerprint(r_new) in pool
        assert relation_fingerprint(r_old) not in pool


class TestAutomaticByteAccounting:
    def test_eviction_triggers_without_manual_poll(self, relations):
        """Regression: byte estimates used to refresh only when
        enforce_limits()/estimated_bytes() was explicitly called, so a run
        that grew a session's caches past the budget went unnoticed until
        the next manual poll."""
        r_grow, r_keep = relations[:2]
        pool = SessionPool(max_sessions=None, max_bytes=2048)
        grower = pool.session(r_grow)
        pool.session(r_keep)  # second entry so eviction is permitted
        assert len(pool) == 2
        # No service, no manual enforce_limits(): the run itself must
        # refresh the accounting and evict the over-budget session.
        grower.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
        assert len(pool) == 1
        assert relation_fingerprint(r_grow) not in pool
        assert pool.info()["evictions"] == 1

    def test_run_on_evicted_session_is_harmless(self, relations):
        pool = SessionPool(max_sessions=1)
        evicted = pool.session(relations[0])
        pool.session(relations[1])
        assert relation_fingerprint(relations[0]) not in pool
        # The evicted session still notifies the pool; nothing to refresh.
        result = evicted.run(DiscoveryRequest(min_support=1, algorithm="cfdminer"))
        assert result.n_cfds >= 0
        assert len(pool) == 1


class TestPersistentSpill:
    def test_evicted_session_spills_and_readmission_warm_starts(
        self, relations, tmp_path
    ):
        store = CacheStore(tmp_path / "cache")
        pool = SessionPool(max_sessions=1, store=store)
        request = DiscoveryRequest(min_support=1, algorithm="fastcfd")
        first = pool.session(relations[0])
        expected = first.run(request)
        pool.session(relations[1])  # evicts relations[0] -> spills to store
        assert pool.info()["spilled_entries"] > 0
        assert len(store) > 0

        readmitted = pool.session(relations[0])
        assert readmitted is not first  # a fresh session...
        result = readmitted.run(request)
        assert sorted(map(str, result.cfds)) == sorted(map(str, expected.cfds))
        # ...but warm: the run was served from the reloaded engine result.
        assert readmitted.cache_info()["engine_results"]["hits"] == 1
        assert pool.info()["warm_loaded_entries"] > 0

    def test_store_survives_pool_restart(self, relations, tmp_path):
        store = CacheStore(tmp_path / "cache")
        request = DiscoveryRequest(min_support=1, algorithm="ctane")
        first_pool = SessionPool(store=store)
        expected = first_pool.session(relations[0]).run(request)
        first_pool.clear()  # shutdown: every session spills

        second_pool = SessionPool(store=CacheStore(tmp_path / "cache"))
        session = second_pool.session(relations[0])
        result = session.run(request)
        assert sorted(map(str, result.cfds)) == sorted(map(str, expected.cfds))
        assert session.cache_info()["engine_results"]["hits"] == 1

    def test_persist_dumps_without_evicting(self, relations, tmp_path):
        store = CacheStore(tmp_path / "cache")
        pool = SessionPool(store=store)
        pool.session(relations[0]).run(
            DiscoveryRequest(min_support=1, algorithm="cfdminer")
        )
        written = pool.persist()
        assert written > 0
        assert len(pool) == 1
        with pytest.raises(DiscoveryError, match="store"):
            SessionPool().persist()

    def test_unwritable_store_never_fails_an_eviction(self, relations, tmp_path):
        store = CacheStore(tmp_path / "cache")
        pool = SessionPool(max_sessions=1, store=store)
        pool.session(relations[0]).run(
            DiscoveryRequest(min_support=1, algorithm="cfdminer")
        )
        # Block the spill target: a plain file where the session's
        # fingerprint directory would have to be created.
        (store.root / relation_fingerprint(relations[0])).write_text("blocked")
        pool.session(relations[1])  # eviction spill fails, admission succeeds
        assert len(pool) == 1
        assert relation_fingerprint(relations[1]) in pool
        assert pool.info()["spill_failures"] > 0


class TestValidation:
    def test_bad_caps_rejected(self):
        with pytest.raises(DiscoveryError, match="max_sessions"):
            SessionPool(max_sessions=0)
        with pytest.raises(DiscoveryError, match="max_bytes"):
            SessionPool(max_bytes=0)
