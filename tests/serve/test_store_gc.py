"""Tests for CacheStore.gc: cost-aware, mtime-tiebroken store shrinking."""

import os
import time

import numpy as np
import pytest

from repro.exceptions import CacheStoreError
from repro.serve import CacheStore


def _put(store, fingerprint, kind, params, *, build_seconds, mtime=None, payload=64):
    """One entry with a controlled build cost, mtime and approximate size."""
    path = store.put(
        fingerprint,
        kind,
        params,
        meta={"build_seconds": build_seconds},
        arrays={"data": np.zeros(payload, dtype=np.int64)},
    )
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return path


class TestGc:
    def test_noop_under_budget(self, tmp_path):
        store = CacheStore(tmp_path)
        _put(store, "fp1", "free_closed", {"k": 1}, build_seconds=1.0)
        summary = store.gc(store.size_bytes() + 1)
        assert summary["removed_entries"] == 0
        assert summary["remaining_entries"] == 1
        assert len(store) == 1

    def test_gc_zero_clears_the_store(self, tmp_path):
        store = CacheStore(tmp_path)
        _put(store, "fp1", "free_closed", {"k": 1}, build_seconds=1.0)
        _put(store, "fp2", "free_closed", {"k": 1}, build_seconds=2.0)
        summary = store.gc(0)
        assert summary["removed_entries"] == 2
        assert summary["remaining_bytes"] == 0
        assert len(store) == 0
        # Emptied per-relation directories are pruned.
        assert [p for p in tmp_path.iterdir() if p.is_dir()] == []

    def test_cheapest_build_cost_evicted_first(self, tmp_path):
        store = CacheStore(tmp_path)
        now = time.time()
        cheap = _put(
            store, "fp1", "free_closed", {"k": 1}, build_seconds=0.01, mtime=now
        )
        costly = _put(
            store, "fp2", "free_closed", {"k": 1}, build_seconds=9.0,
            mtime=now - 3600,  # older, but expensive to rebuild: survives
        )
        one_entry = costly.stat().st_size
        summary = store.gc(one_entry)
        assert summary["removed_entries"] == 1
        assert not cheap.exists()
        assert costly.exists()

    def test_oldest_mtime_breaks_cost_ties(self, tmp_path):
        store = CacheStore(tmp_path)
        now = time.time()
        old = _put(
            store, "fp1", "free_closed", {"k": 1}, build_seconds=1.0,
            mtime=now - 3600,
        )
        new = _put(
            store, "fp2", "free_closed", {"k": 1}, build_seconds=1.0, mtime=now
        )
        summary = store.gc(new.stat().st_size)
        assert summary["removed_entries"] == 1
        assert not old.exists()
        assert new.exists()

    def test_unreadable_entries_are_collected_before_healthy_ones(self, tmp_path):
        store = CacheStore(tmp_path)
        now = time.time()
        healthy = _put(
            store, "fp1", "free_closed", {"k": 1}, build_seconds=0.0, mtime=now
        )
        corrupt = tmp_path / "fp2" / "free_closed-garbage.rpc"
        corrupt.parent.mkdir()
        corrupt.write_bytes(b"not a store entry, definitely")
        os.utime(corrupt, (now, now))  # same age: score decides, not mtime
        summary = store.gc(healthy.stat().st_size)
        assert summary["removed_entries"] >= 1
        assert not corrupt.exists()
        assert healthy.exists()

    def test_null_meta_header_scores_as_cheapest_not_a_crash(self, tmp_path):
        """A syntactically valid header whose meta is null must be collected
        first, never abort the GC with an AttributeError."""
        import json
        import struct

        store = CacheStore(tmp_path)
        healthy = _put(
            store, "fp1", "free_closed", {"k": 1}, build_seconds=2.0
        )
        header = json.dumps(
            {"format_version": CacheStore.FORMAT_VERSION, "fingerprint": "fp2",
             "kind": "free_closed", "params": {}, "meta": None, "arrays": []}
        ).encode()
        torn = tmp_path / "fp2" / "free_closed-torn.rpc"
        torn.parent.mkdir()
        torn.write_bytes(
            CacheStore.MAGIC + struct.pack("<Q", len(header)) + header
        )
        summary = store.gc(healthy.stat().st_size)
        assert summary["removed_entries"] >= 1
        assert not torn.exists()
        assert healthy.exists()

    def test_negative_budget_rejected(self, tmp_path):
        store = CacheStore(tmp_path)
        with pytest.raises(CacheStoreError, match="at least 0"):
            store.gc(-1)

    def test_counters_and_info(self, tmp_path):
        store = CacheStore(tmp_path)
        _put(store, "fp1", "free_closed", {"k": 1}, build_seconds=1.0)
        store.gc(0)
        info = store.info()
        assert info["gc_runs"] == 1
        assert info["gc_removed"] == 1


class TestGcRoundTrip:
    def test_profiler_dumps_survive_gc_by_cost(self, tmp_path, cust_relation):
        """End to end: a dumped session's cheap entries go first and the
        store still warm-loads whatever survived."""
        from repro.api import DiscoveryRequest, Profiler

        store = CacheStore(tmp_path)
        seeder = Profiler(cust_relation)
        seeder.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
        written = seeder.dump_caches(store)
        assert written > 1
        before = len(store)
        # One byte under the footprint: exactly the cheapest entry goes.
        summary = store.gc(store.size_bytes() - 1)
        assert summary["removed_entries"] == 1
        assert len(store) == before - 1
        # Whatever survived still loads cleanly into a fresh session.
        fresh = Profiler(cust_relation)
        loaded = fresh.warm_from(store)
        assert loaded == len(store)
