"""Unit tests for the hand-rolled HTTP/1.1 parser and response writer."""

import asyncio
import json

import pytest

from repro.serve.http.errors import ApiError
from repro.serve.http.protocol import (
    HttpResponse,
    ProtocolError,
    read_request,
)


def parse(raw: bytes, **kwargs):
    """Feed raw bytes to the parser in a throwaway event loop."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


class TestParsing:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive is True

    def test_query_string_and_percent_encoding(self):
        request = parse(b"GET /v1/relations?name=my%20set&header=false HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/relations"
        assert request.query == {"name": "my set", "header": "false"}

    def test_post_with_body(self):
        body = json.dumps({"support": 2}).encode()
        raw = (
            b"POST /v1/discover HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.json() == {"support": 2}
        assert request.content_type == "application/json"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_http10_defaults_to_close(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert request.keep_alive is False


class TestRejections:
    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GARBAGE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/2\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n" + b"x" * 1000
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw, max_body_bytes=10)
        assert excinfo.value.status == 413

    def test_chunked_request_body_is_411(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 411

    def test_truncated_body_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_bad_content_length_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_header_name_without_colon_is_400(self):
        raw = b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_invalid_json_body_raises_api_error(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop"
        request = parse(raw)
        with pytest.raises(ApiError) as excinfo:
            request.json()
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"


class TestResponses:
    def test_json_response_round_trips(self):
        response = HttpResponse.json({"a": 1}, status=201)
        assert response.status == 201
        assert json.loads(response.body) == {"a": 1}

    def test_jsonl_response_streams(self):
        response = HttpResponse.jsonl(iter(['{"a": 1}', '{"b": 2}']))
        assert response.content_type == "application/x-ndjson"
        assert list(response.stream) == ['{"a": 1}', '{"b": 2}']
