"""Socket-level integration tests for the HTTP serving subsystem.

Every test talks to a real ``asyncio.start_server`` socket through
``http.client`` — the exact bytes a load balancer would see — covering the
ISSUE's acceptance list: concurrent identical requests dedup to one engine
run (observable via ``/metrics``), a saturated server answers 503 (never a
hang), malformed bodies come back as structured 400s, and ``/healthz``
reports the drain.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api.registry import (
    AlgorithmCapabilities,
    AlgorithmRegistry,
    DiscoveryAlgorithm,
)
from repro.api.result import AlgorithmStats
from repro.serve import CacheStore, DiscoveryService, SessionPool
from repro.serve.http import ServerConfig, ServerThread

CSV_BODY = "AC,CT\n908,MH\n908,MH\n212,NYC\n212,NYC\n131,EDI\n"


def request(server, method, path, body=None, headers=None, timeout=30):
    """One blocking HTTP exchange; returns (status, headers, bytes)."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def json_request(server, method, path, document=None, timeout=30):
    body = None if document is None else json.dumps(document).encode()
    status, headers, data = request(
        server, method, path, body=body,
        headers={"Content-Type": "application/json"}, timeout=timeout,
    )
    return status, headers, json.loads(data) if data else None


def make_blocking_registry():
    """A registry with one gate-blocked, run-counting engine (dedup probes)."""
    registry = AlgorithmRegistry()

    class Blocker(DiscoveryAlgorithm):
        name = "blocker"
        capabilities = AlgorithmCapabilities(auto_candidate=False)
        gate = threading.Event()
        started = threading.Event()
        runs = 0
        lock = threading.Lock()

        def run(self, relation, request, session=None):
            cls = type(self)
            with cls.lock:
                cls.runs += 1
            cls.started.set()
            assert cls.gate.wait(timeout=30), "test gate never opened"
            return [], AlgorithmStats(algorithm=self.name)

    registry.register(Blocker)
    return registry, Blocker


@pytest.fixture
def server():
    """A default-config server over a plain 2-worker service."""
    with ServerThread(
        DiscoveryService(max_workers=2), ServerConfig(port=0)
    ) as handle:
        yield handle


class TestRelationLifecycle:
    def test_upload_list_discover(self, server):
        status, _, document = request(
            server, "POST", "/v1/relations?name=mini",
            body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
        )
        assert status == 201
        uploaded = json.loads(document)
        assert uploaded["rows"] == 5 and uploaded["arity"] == 2
        fingerprint = uploaded["fingerprint"]

        status, _, listing = json_request(server, "GET", "/v1/relations")
        assert status == 200
        assert listing["relations"]["mini"]["fingerprint"] == fingerprint

        for ref in ("mini", fingerprint):
            status, _, result = json_request(
                server, "POST", "/v1/discover",
                {"relation": ref, "support": 2, "algorithm": "fastcfd"},
            )
            assert status == 200
            assert result["algorithm"] == "fastcfd"
            assert result["counts"]["total"] > 0

    def test_wide_relation_served_by_dfd(self, server):
        """A 70-column upload is served by the walk engine — explicitly and
        via ``auto`` dispatch — with the walk statistics in the response."""
        from repro.datagen.wide import wide_relation

        relation = wide_relation(n_cols=70, n_rows=24, seed=0, n_fds=2)
        lines = [",".join(relation.attributes)]
        lines += [",".join(str(v) for v in row) for row in relation.rows()]
        status, _, _body = request(
            server, "POST", "/v1/relations?name=wide",
            body="\n".join(lines).encode(),
            headers={"Content-Type": "text/csv"},
        )
        assert status == 201
        covers = {}
        for algorithm in ("dfd", "auto"):
            status, _, result = json_request(
                server, "POST", "/v1/discover",
                {"relation": "wide", "support": 7, "algorithm": algorithm},
                timeout=120,
            )
            assert status == 200
            assert result["algorithm"] == "dfd"
            for counter in ("nodes_visited", "partitions_computed", "restarts"):
                assert result["stats"][counter] > 0
            covers[algorithm] = result["counts"]["total"]
        assert covers["dfd"] == covers["auto"] > 0

    def test_inline_rows_discover(self, server):
        status, _, result = json_request(
            server, "POST", "/v1/discover",
            {
                "attributes": ["A", "B"],
                "rows": [["1", "x"], ["1", "x"], ["2", "y"]],
                "support": 1,
                "algorithm": "fastcfd",
            },
        )
        assert status == 200
        assert result["relation"]["rows"] == 3

    def test_json_rows_upload(self, server):
        status, _, _headers = json_request(
            server, "POST", "/v1/relations",
            {"name": "inline", "attributes": ["A", "B"], "rows": [["1", "x"]]},
        )
        assert status == 201
        status, _, listing = json_request(server, "GET", "/v1/relations")
        assert "inline" in listing["relations"]

    def test_streaming_jsonl(self, server):
        request(
            server, "POST", "/v1/relations?name=s",
            body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
        )
        status, headers, data = request(
            server, "POST", "/v1/discover?stream=jsonl",
            body=json.dumps(
                {"relation": "s", "support": 1, "algorithm": "fastcfd"}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/x-ndjson")
        lines = [json.loads(line) for line in data.decode().strip().splitlines()]
        header, rules = lines[0], lines[1:]
        assert header["kind"] == "result"
        assert header["n_rules"] == len(rules)
        assert all(rule["kind"] == "rule" for rule in rules)

    def test_batch_isolates_failures(self, server):
        request(
            server, "POST", "/v1/relations?name=b",
            body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
        )
        status, _, document = json_request(
            server, "POST", "/v1/batch",
            {
                "requests": [
                    {"relation": "b", "support": 1, "algorithm": "fastcfd"},
                    {"relation": "nope", "support": 1},
                    {"relation": "b", "support": 0},
                ]
            },
        )
        assert status == 200
        assert document["requests"] == 3
        assert document["failed"] == 2
        assert document["results"][0]["counts"]["total"] > 0
        assert document["results"][1]["error"]["code"] == "relation_not_found"
        assert document["results"][2]["error"]["code"] == "discovery_error"


class TestErrorTaxonomy:
    def test_malformed_json_body_is_structured_400(self, server):
        status, _, data = request(
            server, "POST", "/v1/discover", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        error = json.loads(data)["error"]
        assert error["code"] == "bad_request"
        assert error["status"] == 400

    def test_unknown_relation_is_404(self, server):
        status, _, document = json_request(
            server, "POST", "/v1/discover", {"relation": "ghost", "support": 1}
        )
        assert status == 404
        assert document["error"]["code"] == "relation_not_found"

    def test_unknown_route_is_404(self, server):
        status, _, document = json_request(server, "GET", "/v2/nothing")
        assert status == 404
        assert document["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, server):
        status, _, document = json_request(server, "GET", "/v1/discover")
        assert status == 405
        assert document["error"]["code"] == "method_not_allowed"

    def test_unknown_request_field_is_400(self, server):
        status, _, document = json_request(
            server, "POST", "/v1/discover",
            {"relation": "x", "supprt": 2},  # typo must fail loudly
        )
        assert status == 400
        assert "supprt" in document["error"]["message"]

    def test_invalid_request_parameter_is_400(self, server):
        status, _, document = json_request(
            server, "POST", "/v1/discover",
            {"attributes": ["A"], "rows": [["1"]], "support": 0},
        )
        assert status == 400
        assert document["error"]["code"] == "discovery_error"

    def test_protocol_error_is_answered_on_the_socket(self, server):
        status, _, data = request(
            server, "POST", "/v1/discover", body=b"x",
            headers={"Content-Type": "application/json",
                     "Transfer-Encoding": "chunked"},
        )
        assert status == 411
        assert json.loads(data)["error"]["code"] == "protocol_error"


class TestDedupOverTheWire:
    def test_concurrent_identical_requests_share_one_engine_run(self):
        registry, blocker = make_blocking_registry()
        service = DiscoveryService(
            pool=SessionPool(registry=registry), max_workers=4
        )
        document = {"relation": "d", "support": 2, "algorithm": "blocker"}
        statuses = []
        with ServerThread(
            service, ServerConfig(port=0, max_in_flight=8, request_timeout=30)
        ) as server:
            request(
                server, "POST", "/v1/relations?name=d",
                body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
            )

            def post():
                status, _, _ = json_request(
                    server, "POST", "/v1/discover", document
                )
                statuses.append(status)

            threads = [threading.Thread(target=post) for _ in range(3)]
            for thread in threads:
                thread.start()
            assert blocker.started.wait(timeout=30)
            # Open the gate only after all three submissions are in flight —
            # otherwise a late arrival runs the engine a second time.
            deadline = time.time() + 30
            while service.info()["requests"] < 3:
                assert time.time() < deadline, service.info()
                time.sleep(0.005)
            blocker.gate.set()
            for thread in threads:
                thread.join(timeout=30)

            assert statuses == [200, 200, 200]
            # Dedup observed via /metrics, as the acceptance criterion asks.
            _, _, text = request(server, "GET", "/metrics")
            metrics = text.decode()
            dedup = [
                line for line in metrics.splitlines()
                if line.startswith("repro_service_deduplicated")
            ][0]
            assert int(dedup.split()[-1]) == 2
        assert blocker.runs == 1


class TestAdmissionControl:
    def test_saturated_server_returns_503_with_retry_after(self):
        registry, blocker = make_blocking_registry()
        service = DiscoveryService(
            pool=SessionPool(registry=registry), max_workers=2
        )
        config = ServerConfig(
            port=0, max_in_flight=1, max_queue=0, request_timeout=30
        )
        with ServerThread(service, config) as server:
            request(
                server, "POST", "/v1/relations?name=a",
                body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
            )
            occupier = threading.Thread(
                target=json_request,
                args=(server, "POST", "/v1/discover",
                      {"relation": "a", "support": 1, "algorithm": "blocker"}),
            )
            occupier.start()
            assert blocker.started.wait(timeout=30)
            try:
                status, headers, document = json_request(
                    server, "POST", "/v1/discover",
                    {"relation": "a", "support": 2, "algorithm": "blocker"},
                )
                assert status == 503
                assert document["error"]["code"] == "overloaded"
                assert int(headers["Retry-After"]) >= 1
                # The operational endpoints bypass admission entirely.
                status, _, _ = request(server, "GET", "/healthz")
                assert status == 200
                status, _, _ = request(server, "GET", "/metrics")
                assert status == 200
            finally:
                blocker.gate.set()
                occupier.join(timeout=30)

    def test_deadline_answers_504_without_killing_the_run(self):
        registry, blocker = make_blocking_registry()
        service = DiscoveryService(
            pool=SessionPool(registry=registry), max_workers=2
        )
        config = ServerConfig(port=0, request_timeout=0.3)
        with ServerThread(service, config) as server:
            request(
                server, "POST", "/v1/relations?name=t",
                body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
            )
            try:
                status, _, document = json_request(
                    server, "POST", "/v1/discover",
                    {"relation": "t", "support": 1, "algorithm": "blocker"},
                )
                assert status == 504
                assert document["error"]["code"] == "deadline_exceeded"
            finally:
                blocker.gate.set()


class TestGracefulDrain:
    def test_healthz_reports_draining_and_drain_completes(self):
        registry, blocker = make_blocking_registry()
        service = DiscoveryService(
            pool=SessionPool(registry=registry), max_workers=2
        )
        config = ServerConfig(port=0, request_timeout=30, drain_timeout=30)
        server = ServerThread(service, config).start()
        try:
            request(
                server, "POST", "/v1/relations?name=g",
                body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
            )
            holder = threading.Thread(
                target=json_request,
                args=(server, "POST", "/v1/discover",
                      {"relation": "g", "support": 1, "algorithm": "blocker"}),
            )
            holder.start()
            assert blocker.started.wait(timeout=30)
            server.begin_drain()
            # The listener keeps answering /healthz while in-flight work
            # finishes; guarded routes are refused as draining.
            deadline_status = None
            for _ in range(100):
                status, _, document = json_request(server, "GET", "/healthz")
                if status == 503 and document["status"] == "draining":
                    deadline_status = status
                    break
            assert deadline_status == 503
            status, _, document = json_request(
                server, "POST", "/v1/discover",
                {"relation": "g", "support": 2, "algorithm": "blocker"},
            )
            assert status == 503
            assert document["error"]["code"] == "draining"
            blocker.gate.set()
            holder.join(timeout=30)
        finally:
            blocker.gate.set()
            server.stop()
        assert service.info()["shutdown"] is True
        assert blocker.runs == 1

    def test_drain_spills_pool_to_store(self, tmp_path):
        store = CacheStore(tmp_path)
        service = DiscoveryService(
            pool=SessionPool(store=store), max_workers=2
        )
        with ServerThread(service, ServerConfig(port=0)) as server:
            request(
                server, "POST", "/v1/relations?name=p",
                body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
            )
            status, _, _ = json_request(
                server, "POST", "/v1/discover",
                {"relation": "p", "support": 2, "algorithm": "fastcfd"},
            )
            assert status == 200
        # Graceful drain completed the pool spill into the store.
        assert store.writes > 0
        assert len(store) > 0


class TestObservability:
    def test_metrics_exposition_shape(self, server):
        request(
            server, "POST", "/v1/relations?name=m",
            body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
        )
        json_request(
            server, "POST", "/v1/discover",
            {"relation": "m", "support": 2, "algorithm": "fastcfd"},
        )
        status, headers, data = request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = data.decode()
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds_bucket",
            "repro_http_in_flight",
            "repro_service_requests",
            "repro_service_request_seconds_bucket",
            "repro_pool_sessions",
        ):
            assert family in text, family
        # The discover response was counted under its route label.
        assert 'route="discover"' in text

    def test_healthz_shape(self, server):
        status, _, document = json_request(server, "GET", "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert "pool_sessions" in document
