"""Unit tests of the error vocabulary's ``Retry-After`` hint.

The hint is computed on rejection paths (429/503) — paths that must never
raise and never emit a hint outside ``[1, cap]``, no matter how degenerate
the latency aggregates feeding it are.  A poisoned mean (NaN/infinity),
negative backlog figures, a cold start with zero traffic: every one of
them clamps to a sane bounded answer.
"""

import math

import pytest

from repro.serve.http.errors import MAX_RETRY_AFTER, retry_after_hint


class TestHappyPath:
    def test_backlog_estimate(self):
        # 2s mean, 5 ahead of the caller, 2 slots: ceil(2 * 6 / 2) = 6.
        assert retry_after_hint(2.0, 5, 2) == 6

    def test_floor_lifts_the_estimate(self):
        assert retry_after_hint(0.1, 0, 4, floor=3.2) == 4

    def test_fast_service_still_hints_at_least_one_second(self):
        assert retry_after_hint(0.001, 0, 8) == 1

    def test_cap_clamps_huge_backlogs(self):
        assert retry_after_hint(1000.0, 50, 1) == MAX_RETRY_AFTER
        assert retry_after_hint(10.0, 5, 2, cap=7) == 7


class TestNoTraffic:
    def test_cold_start_uses_the_default(self):
        # Before any request completes, the mean is None — the service has
        # no evidence, so the hint is the configured default, not a crash.
        assert retry_after_hint(None, 0, 4) == 1
        assert retry_after_hint(None, 10, 2, default=5) == 5

    def test_default_respects_floor_and_cap(self):
        assert retry_after_hint(None, 0, 4, floor=9.5) == 10
        assert retry_after_hint(None, 0, 4, default=100, cap=30) == 30


class TestDegenerateInputs:
    @pytest.mark.parametrize("mean", [0.0, -1.0, math.nan, math.inf, -math.inf])
    def test_unusable_mean_degrades_to_default(self, mean):
        assert retry_after_hint(mean, 10, 2) == 1
        assert retry_after_hint(mean, 10, 2, default=4) == 4

    @pytest.mark.parametrize("floor", [math.nan, math.inf, -math.inf])
    def test_non_finite_floor_is_ignored(self, floor):
        assert retry_after_hint(2.0, 0, 2) == 1
        assert retry_after_hint(2.0, 0, 2, floor=floor) == 1

    def test_negative_pending_and_zero_slots_clamp(self):
        assert retry_after_hint(2.0, -5, 2) == 1
        assert retry_after_hint(2.0, 3, 0) == 8  # slots clamps to 1

    def test_infinite_estimate_returns_the_cap(self):
        # A finite mean with an absurd backlog can overflow to infinity;
        # the hint must stay bounded.
        assert retry_after_hint(1e308, 10, 1) == MAX_RETRY_AFTER

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_seconds": math.nan, "pending": -1, "slots": 0},
            {"mean_seconds": math.inf, "pending": 10 ** 9, "slots": 1,
             "floor": math.inf},
            {"mean_seconds": None, "pending": 0, "slots": 0, "floor": math.nan},
        ],
    )
    def test_every_hint_stays_in_bounds(self, kwargs):
        hint = retry_after_hint(
            kwargs.pop("mean_seconds"), kwargs.pop("pending"),
            kwargs.pop("slots"), **kwargs,
        )
        assert 1 <= hint <= MAX_RETRY_AFTER

    def test_cap_below_one_still_yields_one(self):
        assert retry_after_hint(5.0, 0, 1, cap=0) == 1
