"""Unit tests of the per-client disciplines: token bucket, WFQ, Retry-After.

These run the router's admission machinery without sockets: a fake clock
drives the buckets, ``asyncio.run`` drives the fair queue, and the honest
``Retry-After`` helper is pinned against hand-computed backlogs.
"""

import asyncio

import pytest

from repro.exceptions import DiscoveryError
from repro.serve.fleet import ClientRegistry, FairQueue, TokenBucket
from repro.serve.fleet.fairness import QueueFullError
from repro.serve.http import errors


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, now=clock())
        assert [bucket.acquire(clock()) for _ in range(3)] == [None] * 3
        wait = bucket.acquire(clock())
        assert wait == pytest.approx(1.0)

    def test_refill_restores_admission(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, now=clock())
        assert bucket.acquire(clock()) is None
        assert bucket.acquire(clock()) is not None
        clock.advance(0.5)  # 2 tokens/s x 0.5s = exactly one token back
        assert bucket.acquire(clock()) is None

    def test_wait_is_the_exact_refill_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1.0, now=clock())
        bucket.acquire(clock())
        wait = bucket.acquire(clock())
        clock.advance(wait)
        assert bucket.acquire(clock()) is None

    def test_zero_rate_disables(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, now=clock())
        assert all(bucket.acquire(clock()) is None for _ in range(10))


class TestClientRegistry:
    def test_admit_and_throttle_counters(self):
        clock = FakeClock()
        registry = ClientRegistry(rate=1.0, burst=2.0, clock=clock)
        assert registry.admit("alice") is None
        assert registry.admit("alice") is None
        wait = registry.admit("alice")
        assert wait is not None and wait > 0
        stats = registry.stats("alice")
        assert stats.admitted == 2 and stats.throttled == 1
        assert registry.throttled_total == 1
        # A different client has its own bucket.
        assert registry.admit("bob") is None

    def test_lru_bound_evicts_oldest(self):
        clock = FakeClock()
        registry = ClientRegistry(rate=0.0, burst=1.0, max_clients=3, clock=clock)
        for client in ("a", "b", "c"):
            registry.admit(client)
        registry.admit("a")  # refresh a
        registry.admit("d")  # evicts b, the least recently seen
        tracked = {client for client, _ in registry.snapshot()}
        assert tracked == {"a", "c", "d"}
        assert len(registry) == 3

    def test_validation(self):
        with pytest.raises(DiscoveryError):
            ClientRegistry(rate=1.0, burst=0.5)
        with pytest.raises(DiscoveryError):
            ClientRegistry(rate=1.0, burst=1.0, max_clients=0)


class TestFairQueue:
    def test_uncontended_acquire_is_immediate(self):
        async def run():
            queue = FairQueue(slots=2, max_queue=4)
            await queue.acquire("a")
            await queue.acquire("b")
            assert queue.depth == 0
            queue.release()
            queue.release()

        asyncio.run(run())

    def test_queue_full_rejects(self):
        async def run():
            queue = FairQueue(slots=1, max_queue=1)
            await queue.acquire("a")
            waiter = asyncio.ensure_future(queue.acquire("b"))
            await asyncio.sleep(0)
            assert queue.depth == 1
            with pytest.raises(QueueFullError):
                await queue.acquire("c")
            queue.release()
            await waiter
            queue.release()

        asyncio.run(run())

    def test_light_client_jumps_greedy_backlog(self):
        """WFQ order: one light request beats a greedy client's third."""

        async def run():
            queue = FairQueue(slots=1, max_queue=8)
            order = []

            async def work(client):
                await queue.acquire(client)
                order.append(client)
                queue.release()

            await queue.acquire("greedy")  # occupy the only slot
            tasks = [asyncio.ensure_future(work("greedy")) for _ in range(3)]
            await asyncio.sleep(0)
            tasks.append(asyncio.ensure_future(work("light")))
            await asyncio.sleep(0)
            queue.release()  # free the slot; dequeues run in stamp order
            await asyncio.gather(*tasks)
            # greedy's first waiter was stamped before light arrived, but
            # light's single stamp sits far below greedy's 3rd and 4th.
            assert order.index("light") < len(order) - 1
            assert order[-1] == "greedy"

        asyncio.run(run())

    def test_weights_shift_the_share(self):
        async def run():
            queue = FairQueue(slots=1, max_queue=16)
            order = []

            async def work(client, weight):
                await queue.acquire(client, weight)
                order.append(client)
                queue.release()

            await queue.acquire("seed")
            tasks = []
            for _ in range(3):
                tasks.append(asyncio.ensure_future(work("heavy", 4.0)))
                await asyncio.sleep(0)
                tasks.append(asyncio.ensure_future(work("thin", 1.0)))
                await asyncio.sleep(0)
            queue.release()
            await asyncio.gather(*tasks)
            # weight 4 finishes its 3 requests before thin finishes its 3rd:
            # heavy's stamps climb by 1/4 per request, thin's by 1.
            assert order.index("heavy", order.index("heavy") + 1) < len(order) - 1
            assert order[:2].count("heavy") >= 1
            assert order[-1] == "thin"

        asyncio.run(run())

    def test_cancelled_waiter_leaks_nothing(self):
        async def run():
            queue = FairQueue(slots=1, max_queue=4)
            await queue.acquire("a")
            waiter = asyncio.ensure_future(queue.acquire("b"))
            await asyncio.sleep(0)
            assert queue.depth == 1
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert queue.depth == 0
            queue.release()
            # The slot is free again: an immediate acquire must succeed.
            await asyncio.wait_for(queue.acquire("c"), timeout=1)
            queue.release()

        asyncio.run(run())

    def test_release_hands_slot_past_dead_waiters(self):
        async def run():
            queue = FairQueue(slots=1, max_queue=4)
            await queue.acquire("a")
            dead = asyncio.ensure_future(queue.acquire("b"))
            await asyncio.sleep(0)
            live = asyncio.ensure_future(queue.acquire("c"))
            await asyncio.sleep(0)
            dead.cancel()
            with pytest.raises(asyncio.CancelledError):
                await dead
            queue.release()
            await asyncio.wait_for(live, timeout=1)
            queue.release()

        asyncio.run(run())

    def test_validation(self):
        with pytest.raises(DiscoveryError):
            FairQueue(slots=0, max_queue=1)
        with pytest.raises(DiscoveryError):
            FairQueue(slots=1, max_queue=-1)


class TestRetryAfterHint:
    def test_backlog_estimate(self):
        # 2s mean, 5 ahead of me, 2 slots: ceil(2 * 6 / 2) = 6 seconds.
        assert errors.retry_after_hint(2.0, 5, 2) == 6

    def test_no_history_falls_back_to_default(self):
        assert errors.retry_after_hint(None, 10, 2, default=5) == 5
        assert errors.retry_after_hint(0.0, 10, 2) == 1

    def test_floor_lifts_the_hint(self):
        assert errors.retry_after_hint(0.1, 0, 4, floor=3.2) == 4

    def test_bounds(self):
        assert errors.retry_after_hint(0.001, 0, 8) == 1
        assert errors.retry_after_hint(1000.0, 50, 1) == errors.MAX_RETRY_AFTER
