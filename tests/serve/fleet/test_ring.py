"""Determinism and remap properties of the consistent-hash ring.

The fleet's correctness rests on three ring properties: assignment is a
pure function of the member set (so every router and every restart agree),
membership churn remaps only the departed worker's arcs (so warm sessions
stay pinned), and the preference list's second entry is exactly where a
dead owner's keys land (so failover retries hit the remapped placement).
"""

import pytest

from repro.exceptions import DiscoveryError
from repro.serve.fleet import DEFAULT_VNODES, HashRing, ring_hash

WORKERS = [f"http://127.0.0.1:{8321 + i}" for i in range(4)]
KEYS = [f"fingerprint-{i:04d}" for i in range(400)]


def ring_of(workers, vnodes=DEFAULT_VNODES):
    ring = HashRing(vnodes=vnodes)
    for worker in workers:
        ring.add(worker)
    return ring


class TestDeterminism:
    def test_assignment_ignores_insertion_order(self):
        forward = ring_of(WORKERS)
        backward = ring_of(list(reversed(WORKERS)))
        for key in KEYS:
            assert forward.assign(key) == backward.assign(key)

    def test_assignment_survives_rebuild(self):
        """A restarted router re-derives its predecessor's placement."""
        before = {key: ring_of(WORKERS).assign(key) for key in KEYS}
        after = {key: ring_of(WORKERS).assign(key) for key in KEYS}
        assert before == after

    def test_ring_hash_is_stable(self):
        # Pinned value: a silent hash change would silently remap every
        # fleet on upgrade, which is exactly what this subsystem promises
        # not to do.
        assert ring_hash("fingerprint-0000") == ring_hash("fingerprint-0000")
        assert ring_hash("a") != ring_hash("b")
        assert 0 <= ring_hash("anything") < 2 ** 64

    def test_preference_starts_with_owner(self):
        ring = ring_of(WORKERS)
        for key in KEYS[:50]:
            preference = ring.preference(key)
            assert preference[0] == ring.assign(key)
            assert sorted(preference) == sorted(WORKERS)
            assert len(set(preference)) == len(preference)


class TestRemap:
    def test_removal_remaps_only_the_departed_workers_keys(self):
        ring = ring_of(WORKERS)
        before = {key: ring.assign(key) for key in KEYS}
        victim = WORKERS[1]
        ring.remove(victim)
        for key in KEYS:
            after = ring.assign(key)
            if before[key] == victim:
                assert after != victim
            else:
                assert after == before[key], "a surviving worker's key moved"

    def test_failover_target_is_preference_successor(self):
        """Index 1 of the preference list is the post-removal owner."""
        ring = ring_of(WORKERS)
        expectations = {}
        for key in KEYS:
            preference = ring.preference(key, limit=2)
            expectations[key] = (preference[0], preference[1])
        for key, (owner, successor) in expectations.items():
            ring.remove(owner)
            assert ring.assign(key) == successor
            ring.add(owner)

    def test_addition_steals_roughly_its_share(self):
        ring = ring_of(WORKERS)
        before = {key: ring.assign(key) for key in KEYS}
        ring.add("http://127.0.0.1:9999")
        moved = sum(1 for key in KEYS if ring.assign(key) != before[key])
        # The new worker owns ~1/5 of the space; allow generous slack for
        # a 400-key sample but reject wholesale reshuffles.
        assert moved < len(KEYS) // 2

    def test_spread_is_not_degenerate(self):
        ring = ring_of(WORKERS)
        counts = {worker: 0 for worker in WORKERS}
        for key in KEYS:
            counts[ring.assign(key)] += 1
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) < len(KEYS) * 0.6


class TestMembership:
    def test_add_remove_round_trip(self):
        ring = HashRing(vnodes=8)
        assert ring.assign("k") is None
        assert ring.preference("k") == []
        assert ring.add("w1") and not ring.add("w1")
        assert "w1" in ring and len(ring) == 1
        assert ring.assign("k") == "w1"
        assert ring.remove("w1") and not ring.remove("w1")
        assert ring.assign("k") is None

    def test_info_shape(self):
        ring = ring_of(WORKERS[:2], vnodes=16)
        info = ring.info()
        assert info["workers"] == sorted(WORKERS[:2])
        assert info["vnodes_per_worker"] == 16
        assert info["points"] == 32

    def test_validation(self):
        with pytest.raises(DiscoveryError):
            HashRing(vnodes=0)
        with pytest.raises(DiscoveryError):
            HashRing().add("")
