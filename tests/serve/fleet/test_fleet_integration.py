"""Socket-level fleet tests: router + two real workers over one shared store.

The acceptance scenarios of the fleet subsystem, each against real
``asyncio.start_server`` sockets:

* requests route by relation fingerprint and survive the owner's death —
  the ring successor serves a byte-identical rules payload, warm-started
  from the shared :class:`~repro.serve.CacheStore` (observable in the
  successor's ``/metrics``);
* a greedy client is throttled (``429`` + honest ``Retry-After``) while a
  light client keeps being admitted, observable in the router's
  ``/metrics``;
* streaming and batch requests pass through the router unchanged.
"""

import http.client
import json
import time

import pytest

from repro.serve import CacheStore, DiscoveryService, SessionPool
from repro.serve.fleet import RouterConfig, RouterThread
from repro.serve.http import ServerConfig, ServerThread

CSV_BODY = (
    "CC,AC,PN,NM,STR,CT,ZIP\n"
    "01,908,1111111,Mike,Tree Ave.,MH,07974\n"
    "01,908,1111111,Rick,Tree Ave.,MH,07974\n"
    "01,212,2222222,Joe,5th Ave,NYC,01202\n"
    "01,908,2222222,Jim,Elm Str.,MH,07974\n"
    "44,131,3333333,Ben,High St.,EDI,EH4 1DT\n"
    "44,131,4444444,Ian,High St.,EDI,EH4 1DT\n"
    "44,908,4444444,Ian,Port PI,MH,W1B 1JH\n"
    "01,131,2222222,Sean,3rd Str.,UN,01202\n"
)
DISCOVER = {"support": 2, "algorithm": "fastcfd"}


def request(handle, method, path, body=None, headers=None, timeout=30):
    """One blocking HTTP exchange; returns (status, headers, bytes)."""
    connection = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def json_request(handle, method, path, document=None, headers=None, timeout=30):
    body = None if document is None else json.dumps(document).encode()
    sent = {"Content-Type": "application/json"}
    sent.update(headers or {})
    status, received, data = request(
        handle, method, path, body=body, headers=sent, timeout=timeout
    )
    return status, received, json.loads(data) if data else None


def metric_value(text, name, **labels):
    """The value of one sample in a Prometheus exposition, or None."""
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest[:1] not in ("{", " "):
            continue
        if labels:
            if not rest.startswith("{"):
                continue
            rendered = rest[1 : rest.index("}")]
            if not all(f'{k}="{v}"' in rendered for k, v in labels.items()):
                continue
        return float(line.rsplit(" ", 1)[1])
    return None


class Fleet:
    """Two workers over one shared cache store, fronted by one router."""

    def __init__(self, tmp_path, **router_overrides):
        self.store_dir = tmp_path / "shared-store"
        self.workers = []
        for index in range(2):
            service = DiscoveryService(
                pool=SessionPool(max_sessions=4, store=CacheStore(self.store_dir)),
                max_workers=2,
            )
            worker = ServerThread(service, ServerConfig(port=0)).start()
            self.workers.append(worker)
        options = dict(
            port=0,
            workers=[worker.address for worker in self.workers],
            health_interval=0.2,
            fail_after=2,
            request_timeout=30.0,
        )
        options.update(router_overrides)
        self.router = RouterThread(RouterConfig(**options)).start()

    def worker_for(self, url):
        for worker in self.workers:
            if worker.address == url:
                return worker
        raise AssertionError(f"unknown worker url {url}")

    def owner_and_successor(self, fingerprint):
        preference = self.router.router.ring.preference(fingerprint, limit=2)
        assert len(preference) == 2
        return self.worker_for(preference[0]), self.worker_for(preference[1])

    def stop(self):
        self.router.stop()
        for worker in self.workers:
            worker.stop()


@pytest.fixture
def fleet(tmp_path):
    handle = Fleet(tmp_path)
    yield handle
    handle.stop()


def upload(handle, name="tax"):
    status, _, data = request(
        handle, "POST", f"/v1/relations?name={name}",
        body=CSV_BODY.encode(), headers={"Content-Type": "text/csv"},
    )
    assert status == 201, data
    return json.loads(data)["fingerprint"]


class TestRoutingThroughRouter:
    def test_healthz_sees_both_workers(self, fleet):
        status, _, document = json_request(fleet.router, "GET", "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert sorted(fleet.router.router.ring.workers()) == sorted(
            worker.address for worker in fleet.workers
        )

    def test_upload_then_discover_by_name_and_fingerprint(self, fleet):
        fingerprint = upload(fleet.router)
        for ref in ("tax", fingerprint):
            status, _, result = json_request(
                fleet.router, "POST", "/v1/discover",
                {"relation": ref, **DISCOVER},
            )
            assert status == 200, result
            assert result["counts"]["total"] > 0

        # The forward went to the ring owner, and only to it.
        owner, successor = fleet.owner_and_successor(fingerprint)
        _, _, text = request(fleet.router, "GET", "/metrics")
        exposition = text.decode()
        assert metric_value(
            exposition, "repro_fleet_forwards_total", worker=owner.address
        ) >= 2

    def test_inline_rows_route_by_computed_fingerprint(self, fleet):
        body = {
            "attributes": ["A", "B"],
            "rows": [["1", "x"], ["1", "x"], ["2", "y"]],
            "support": 1,
            "algorithm": "fastcfd",
        }
        first = json_request(fleet.router, "POST", "/v1/discover", body)
        second = json_request(fleet.router, "POST", "/v1/discover", body)
        assert first[0] == 200 and second[0] == 200
        assert first[2]["rules"] == second[2]["rules"]

    def test_stream_passes_through_chunked(self, fleet):
        fingerprint = upload(fleet.router)
        status, headers, data = request(
            fleet.router, "POST", "/v1/discover",
            body=json.dumps(
                {"relation": fingerprint, "stream": True, **DISCOVER}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert headers.get("Content-Type", "").startswith("application/x-ndjson")
        lines = [json.loads(line) for line in data.decode().strip().split("\n")]
        header, rules = lines[0], lines[1:]
        assert header["kind"] == "result"
        assert header["n_rules"] == len(rules)
        assert all(line["kind"] == "rule" for line in rules)

    def test_batch_splits_and_reassembles(self, fleet):
        fingerprint = upload(fleet.router)
        status, _, document = json_request(
            fleet.router, "POST", "/v1/batch",
            {
                "requests": [
                    {"relation": fingerprint, **DISCOVER},
                    {"relation": "no-such-relation", **DISCOVER},
                ]
            },
        )
        assert status == 200
        assert document["requests"] == 2
        assert document["failed"] == 1
        results = document["results"]
        assert results[0]["counts"]["total"] > 0
        assert results[1]["error"]["code"] == "relation_not_found"

    def test_list_relations_merges_the_fleet(self, fleet):
        fingerprint = upload(fleet.router, name="merged")
        status, _, listing = json_request(fleet.router, "GET", "/v1/relations")
        assert status == 200
        assert listing["relations"]["merged"]["fingerprint"] == fingerprint


class TestFailover:
    def test_owner_death_fails_over_with_identical_rules(self, fleet):
        fingerprint = upload(fleet.router)
        discover = {"relation": fingerprint, **DISCOVER}

        status, _, before = json_request(fleet.router, "POST", "/v1/discover", discover)
        assert status == 200
        baseline = json.dumps(before["rules"], sort_keys=True)
        assert before["counts"]["total"] > 0

        owner, successor = fleet.owner_and_successor(fingerprint)
        owner.stop()  # graceful: the worker spills its warm session

        status, _, after = json_request(
            fleet.router, "POST", "/v1/discover", discover, timeout=60
        )
        assert status == 200, after
        assert json.dumps(after["rules"], sort_keys=True) == baseline

        _, _, text = request(fleet.router, "GET", "/metrics")
        exposition = text.decode()
        assert metric_value(
            exposition, "repro_fleet_failovers_total", worker=owner.address
        ) >= 1

        # The successor warm-started the relation from the shared store
        # rather than rebuilding: its pool counted warm-loaded entries.
        _, _, text = request(successor, "GET", "/metrics")
        warm = metric_value(text.decode(), "repro_pool_warm_loaded_entries_total")
        assert warm is not None and warm > 0

    def test_dead_owner_leaves_the_ring(self, fleet):
        fingerprint = upload(fleet.router)
        owner, successor = fleet.owner_and_successor(fingerprint)
        owner.stop()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if fleet.router.router.ring.workers() == [successor.address]:
                break
            time.sleep(0.1)
        assert fleet.router.router.ring.workers() == [successor.address]
        # And the remaining member owns everything now.
        assert fleet.router.router.ring.assign(fingerprint) == successor.address


class TestFairnessThroughRouter:
    def test_greedy_client_throttled_light_client_admitted(self, tmp_path):
        fleet = Fleet(tmp_path, client_rate=1.0, client_burst=3.0)
        try:
            fingerprint = upload(fleet.router)  # per-connection id: own bucket
            greedy_statuses = []
            retry_after = None
            for _ in range(8):
                status, headers, _ = json_request(
                    fleet.router, "GET", "/v1/relations",
                    headers={"X-Client-Id": "greedy"},
                )
                greedy_statuses.append(status)
                if status == 429 and retry_after is None:
                    retry_after = headers.get("Retry-After")
            assert 429 in greedy_statuses, greedy_statuses
            assert greedy_statuses.count(200) >= 1
            assert retry_after is not None and int(retry_after) >= 1

            # The light client is untouched by greedy's exhaustion.
            status, _, _ = json_request(
                fleet.router, "GET", "/v1/relations",
                headers={"X-Client-Id": "light"},
            )
            assert status == 200

            _, _, text = request(fleet.router, "GET", "/metrics")
            exposition = text.decode()
            assert metric_value(
                exposition, "repro_fleet_client_throttled_total", client="greedy"
            ) >= 1
            assert metric_value(
                exposition, "repro_fleet_client_admitted_total", client="light"
            ) >= 1
            assert (
                metric_value(
                    exposition, "repro_fleet_client_throttled_total", client="light"
                )
                or 0.0
            ) == 0.0
            assert metric_value(exposition, "repro_fleet_throttled_total") >= 1
        finally:
            fleet.stop()
