"""Tests for the repro-discover command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.relational.io import write_csv
from repro.relational.relation import Relation


@pytest.fixture
def csv_path(tmp_path):
    relation = Relation.from_rows(
        ["AC", "CT", "ST"],
        [
            ("908", "MH", "NJ"),
            ("908", "MH", "NJ"),
            ("908", "MH", "NJ"),
            ("212", "NYC", "NY"),
            ("212", "NYC", "NY"),
        ],
    )
    path = tmp_path / "cust.csv"
    write_csv(relation, path)
    return path


class TestParser:
    def test_defaults(self, csv_path):
        args = build_parser().parse_args([str(csv_path)])
        assert args.support == 1
        assert args.algorithm == "auto"

    def test_unknown_algorithm_rejected(self, csv_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args([str(csv_path), "--algorithm", "nope"])


class TestMain:
    def test_discovers_rules_to_stdout(self, csv_path, capsys):
        exit_code = main([str(csv_path), "--support", "2", "--algorithm", "fastcfd"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "([AC] -> CT, (908 || MH))" in captured.out
        assert "rules reported" in captured.err

    def test_constant_only(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--constant-only"])
        out = capsys.readouterr().out
        assert out.strip()
        assert "_" not in out  # no wildcards in constant rules

    def test_variable_only(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--variable-only", "-a", "ctane"])
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            assert "|| _" in line

    def test_conflicting_filters_rejected(self, csv_path):
        with pytest.raises(SystemExit):
            main([str(csv_path), "--constant-only", "--variable-only"])

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path / "missing.csv")])

    def test_output_file(self, csv_path, tmp_path, capsys):
        target = tmp_path / "out" / "rules.txt"
        main([str(csv_path), "--support", "2", "--output", str(target)])
        assert target.exists()
        assert "-> " in target.read_text(encoding="utf-8")
        assert capsys.readouterr().out == ""

    def test_tableau_grouping(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--tableau", "-a", "fastcfd"])
        out = capsys.readouterr().out
        assert "{" in out and "}" in out

    def test_rank_by_support(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--rank-by", "support",
              "--constant-only"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines  # ranked output is still one rule per line

    def test_no_header_mode(self, tmp_path, capsys):
        path = tmp_path / "raw.csv"
        path.write_text("1,2\n1,2\n3,4\n", encoding="utf-8")
        main([str(path), "--no-header", "--support", "2"])
        out = capsys.readouterr().out
        assert "A0" in out or "A1" in out

    def test_limit_rows_and_max_lhs(self, csv_path, capsys):
        exit_code = main(
            [str(csv_path), "--support", "1", "--limit-rows", "3", "--max-lhs", "1"]
        )
        assert exit_code == 0

    def test_delimiter_option(self, tmp_path, capsys):
        path = tmp_path / "semi.csv"
        path.write_text("A;B\n1;2\n1;2\n", encoding="utf-8")
        exit_code = main([str(path), "--delimiter", ";", "--support", "2"])
        assert exit_code == 0
        assert "-> " in capsys.readouterr().out
