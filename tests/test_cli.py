"""Tests for the repro-discover command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.relational.io import write_csv
from repro.relational.relation import Relation


@pytest.fixture
def csv_path(tmp_path):
    relation = Relation.from_rows(
        ["AC", "CT", "ST"],
        [
            ("908", "MH", "NJ"),
            ("908", "MH", "NJ"),
            ("908", "MH", "NJ"),
            ("212", "NYC", "NY"),
            ("212", "NYC", "NY"),
        ],
    )
    path = tmp_path / "cust.csv"
    write_csv(relation, path)
    return path


class TestParser:
    def test_defaults(self, csv_path):
        args = build_parser().parse_args([str(csv_path)])
        assert args.support == 1
        assert args.algorithm == "auto"

    def test_unknown_algorithm_rejected(self, csv_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args([str(csv_path), "--algorithm", "nope"])


class TestMain:
    def test_discovers_rules_to_stdout(self, csv_path, capsys):
        exit_code = main([str(csv_path), "--support", "2", "--algorithm", "fastcfd"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "([AC] -> CT, (908 || MH))" in captured.out
        assert "rules reported" in captured.err

    def test_constant_only(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--constant-only"])
        out = capsys.readouterr().out
        assert out.strip()
        assert "_" not in out  # no wildcards in constant rules

    def test_variable_only(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--variable-only", "-a", "ctane"])
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            assert "|| _" in line

    def test_conflicting_filters_rejected(self, csv_path):
        with pytest.raises(SystemExit):
            main([str(csv_path), "--constant-only", "--variable-only"])

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path / "missing.csv")])

    def test_output_file(self, csv_path, tmp_path, capsys):
        target = tmp_path / "out" / "rules.txt"
        main([str(csv_path), "--support", "2", "--output", str(target)])
        assert target.exists()
        assert "-> " in target.read_text(encoding="utf-8")
        assert capsys.readouterr().out == ""

    def test_tableau_grouping(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--tableau", "-a", "fastcfd"])
        out = capsys.readouterr().out
        assert "{" in out and "}" in out

    def test_rank_by_support(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--rank-by", "support",
              "--constant-only"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines  # ranked output is still one rule per line

    def test_no_header_mode(self, tmp_path, capsys):
        path = tmp_path / "raw.csv"
        path.write_text("1,2\n1,2\n3,4\n", encoding="utf-8")
        main([str(path), "--no-header", "--support", "2"])
        out = capsys.readouterr().out
        assert "A0" in out or "A1" in out

    def test_limit_rows_and_max_lhs(self, csv_path, capsys):
        exit_code = main(
            [str(csv_path), "--support", "1", "--limit-rows", "3", "--max-lhs", "1"]
        )
        assert exit_code == 0

    def test_delimiter_option(self, tmp_path, capsys):
        path = tmp_path / "semi.csv"
        path.write_text("A;B\n1;2\n1;2\n", encoding="utf-8")
        exit_code = main([str(path), "--delimiter", ";", "--support", "2"])
        assert exit_code == 0
        assert "-> " in capsys.readouterr().out

    def test_no_header_quoted_delimiter(self, tmp_path, capsys):
        # The quoted first field contains the delimiter: a naive split would
        # size the schema at 3 attributes instead of 2.
        path = tmp_path / "quoted.csv"
        path.write_text('"a,b",c\n"a,b",c\n"x,y",z\n', encoding="utf-8")
        exit_code = main([str(path), "--no-header", "--support", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "A1" in captured.out
        assert "A2" not in captured.out
        assert "arity=2" in captured.err

    def test_constant_only_auto_routes_to_cfdminer(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "--constant-only"])
        err = capsys.readouterr().err
        # Capability-driven dispatch: variable CFDs are never mined at all.
        assert "cfdminer:" in err

    def test_json_output(self, csv_path, capsys):
        exit_code = main(
            [str(csv_path), "--support", "2", "--algorithm", "fastcfd", "--json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert document["algorithm"] == "fastcfd"
        assert document["min_support"] == 2
        assert document["relation"] == {"rows": 5, "arity": 3}
        assert document["counts"]["total"] == len(document["rules"])
        assert any(r["text"] == "([AC] -> CT, (908 || MH))" for r in document["rules"])
        constant = next(r for r in document["rules"] if r["constant"])
        assert None not in constant["lhs_pattern"]
        variable = next(r for r in document["rules"] if not r["constant"])
        assert variable["rhs_pattern"] is None
        assert document["stats"]  # normalised algorithm statistics present

    def test_impossible_request_reported_cleanly(self, csv_path, capsys):
        # cfdminer emits no variable CFDs: the CLI must error, not traceback.
        with pytest.raises(SystemExit):
            main([str(csv_path), "-a", "cfdminer", "--variable-only"])
        assert "no variable CFDs" in capsys.readouterr().err

    def test_invalid_support_reported_cleanly(self, csv_path, capsys):
        with pytest.raises(SystemExit):
            main([str(csv_path), "--support", "0"])
        assert "min_support" in capsys.readouterr().err

    def test_json_output_to_file(self, csv_path, tmp_path, capsys):
        target = tmp_path / "rules.json"
        main([str(csv_path), "--support", "2", "--json", "-o", str(target)])
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["rules"]
        assert capsys.readouterr().out == ""

    def test_json_output_is_strictly_native(self, csv_path, capsys):
        main([str(csv_path), "--support", "2", "-a", "ctane", "--json"])
        document = json.loads(capsys.readouterr().out)
        # Every stats value survived without a default=str escape hatch.
        assert json.loads(json.dumps(document, allow_nan=False)) == document
        assert "engine_seconds" in document["stats"]


class TestBatch:
    def _write_requests(self, tmp_path, entries):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(entries), encoding="utf-8")
        return path

    def test_batch_serves_all_requests(self, csv_path, tmp_path, capsys):
        batch = self._write_requests(
            tmp_path,
            [
                {"support": 2, "algorithm": "fastcfd"},
                {"support": 2, "algorithm": "fastcfd"},
                {"support": 3, "algorithm": "fastcfd"},
                {"support": 2, "algorithm": "cfdminer", "constant_only": True},
            ],
        )
        exit_code = main([str(csv_path), "--batch", str(batch), "--workers", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        document = json.loads(captured.out)
        assert document["requests"] == 4
        assert len(document["results"]) == 4
        assert document["results"][0]["min_support"] == 2
        assert document["results"][3]["algorithm"] == "cfdminer"
        assert document["service"]["pool"]["sessions"] == 1
        assert document["requests_per_second"] > 0
        assert "req/s" in captured.err
        # Batch output is strictly JSON-native too.
        assert json.loads(json.dumps(document, allow_nan=False)) == document

    def test_batch_results_match_single_runs(self, csv_path, tmp_path, capsys):
        batch = self._write_requests(
            tmp_path, [{"support": 2, "algorithm": "fastcfd"}]
        )
        main([str(csv_path), "--batch", str(batch)])
        batched = json.loads(capsys.readouterr().out)["results"][0]
        main([str(csv_path), "--support", "2", "-a", "fastcfd", "--json"])
        single = json.loads(capsys.readouterr().out)
        assert sorted(r["text"] for r in batched["rules"]) == sorted(
            r["text"] for r in single["rules"]
        )

    def test_batch_document_wrapper_and_output_file(
        self, csv_path, tmp_path, capsys
    ):
        path = tmp_path / "requests.json"
        path.write_text(
            json.dumps({"requests": [{"support": 2}]}), encoding="utf-8"
        )
        target = tmp_path / "batch_out.json"
        main([str(csv_path), "--batch", str(path), "-o", str(target)])
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["requests"] == 1
        assert capsys.readouterr().out == ""

    def test_batch_entry_csv_override(self, csv_path, tmp_path, capsys):
        other = tmp_path / "other.csv"
        other.write_text("A,B\n1,2\n1,2\n", encoding="utf-8")
        batch = self._write_requests(
            tmp_path,
            [{"support": 2}, {"support": 2, "csv": str(other)}],
        )
        main([str(csv_path), "--batch", str(batch)])
        document = json.loads(capsys.readouterr().out)
        assert document["service"]["pool"]["sessions"] == 2
        assert {r["relation"]["rows"] for r in document["results"]} == {5, 2}

    def test_batch_invalid_file_rejected(self, csv_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(SystemExit):
            main([str(csv_path), "--batch", str(bad)])

    def test_batch_unknown_field_is_a_per_request_error(
        self, csv_path, tmp_path, capsys
    ):
        batch = self._write_requests(tmp_path, [{"supprt": 2}])
        exit_code = main([str(csv_path), "--batch", str(batch)])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1  # every request failed
        assert "unknown fields" in document["results"][0]["error"]

    def test_batch_empty_rejected(self, csv_path, tmp_path):
        batch = self._write_requests(tmp_path, [])
        with pytest.raises(SystemExit):
            main([str(csv_path), "--batch", str(batch)])

    def test_batch_invalid_request_is_a_per_request_error(
        self, csv_path, tmp_path, capsys
    ):
        batch = self._write_requests(
            tmp_path, [{"support": 2, "algorithm": "cfdminer", "variable_only": True}]
        )
        exit_code = main([str(csv_path), "--batch", str(batch)])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert "variable" in document["results"][0]["error"]

    def test_batch_mixed_good_and_bad_entries(self, csv_path, tmp_path, capsys):
        """Regression: one malformed entry used to abort the whole batch."""
        other = tmp_path / "missing.csv"
        batch = self._write_requests(
            tmp_path,
            [
                {"support": 2, "algorithm": "fastcfd"},
                {"support": 0},  # invalid threshold
                {"support": 2, "csv": str(other)},  # missing file
                "not-an-object",  # wrong shape
                {"support": 3, "algorithm": "cfdminer"},
            ],
        )
        exit_code = main([str(csv_path), "--batch", str(batch)])
        captured = capsys.readouterr()
        assert exit_code == 0  # not every request failed
        document = json.loads(captured.out)
        assert document["requests"] == 5
        assert document["failed"] == 3
        assert len(document["results"]) == 5
        assert document["results"][0]["algorithm"] == "fastcfd"
        assert "min_support" in document["results"][1]["error"]
        assert "no such file" in document["results"][2]["error"]
        assert "not a JSON object" in document["results"][3]["error"]
        assert document["results"][4]["algorithm"] == "cfdminer"
        assert "2 failed" not in captured.err  # stderr reports 3 failed
        assert "3 failed" in captured.err
        # The document (errors included) stays strictly JSON-native.
        assert json.loads(json.dumps(document, allow_nan=False)) == document

    def test_batch_all_failing_exits_nonzero(self, csv_path, tmp_path, capsys):
        batch = self._write_requests(tmp_path, [{"support": 0}, {"support": -1}])
        exit_code = main([str(csv_path), "--batch", str(batch)])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert document["failed"] == 2
        assert all("error" in record for record in document["results"])


class TestCacheDir:
    def test_second_run_warm_starts_from_the_store(self, csv_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = [str(csv_path), "--support", "2", "-a", "ctane",
                "--cache-dir", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "loaded 0 entries" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        # The second invocation (a fresh "process") loads what the first
        # one stored, and the reported rules are identical.
        assert "# cache-store" in second.err
        assert "loaded 0 entries" not in second.err
        assert second.out == first.out

    def test_json_documents_cache_store_counters(self, csv_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = [str(csv_path), "--support", "2", "-a", "fastcfd", "--json",
                "--cache-dir", str(cache)]
        main(args)
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache_store"]["entries_loaded"] == 0
        assert cold["cache_store"]["entries_stored"] > 0
        main(args)
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache_store"]["entries_loaded"] > 0
        assert warm["rules"] == cold["rules"]

    def test_unusable_cache_dir_degrades_to_a_warning(
        self, csv_path, tmp_path, capsys
    ):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the store directory should be")
        exit_code = main(
            [str(csv_path), "--support", "2", "-a", "fastcfd",
             "--cache-dir", str(blocked)]
        )
        captured = capsys.readouterr()
        # The rules are still delivered; the store failure is only a warning.
        assert exit_code == 0
        assert "->" in captured.out
        assert "cache-store warning" in captured.err

    def test_batch_uses_the_store(self, csv_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        batch = tmp_path / "requests.json"
        batch.write_text(
            json.dumps([{"support": 2, "algorithm": "fastcfd"}]), encoding="utf-8"
        )
        args = [str(csv_path), "--batch", str(batch), "--cache-dir", str(cache)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        # The second batch's pool warm-started its session from the store.
        assert document["service"]["pool"]["warm_loaded_entries"] > 0
        assert document["service"]["pool"]["persistent"] is True


class TestCacheGc:
    def test_gc_shrinks_the_store_and_exits(self, csv_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(
            [str(csv_path), "--support", "2", "-a", "ctane",
             "--cache-dir", str(cache)]
        ) == 0
        capsys.readouterr()
        # Maintenance mode: no CSV argument, removes everything at budget 0.
        assert main(["--cache-gc", "0", "--cache-dir", str(cache)]) == 0
        captured = capsys.readouterr()
        assert "cache-gc" in captured.err
        assert "0 bytes remain" in captured.err
        assert list(cache.glob("*/*.rpc")) == []

    def test_gc_noop_when_under_budget(self, csv_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        main([str(csv_path), "--support", "2", "-a", "fastcfd",
              "--cache-dir", str(cache)])
        entries = list(cache.glob("*/*.rpc"))
        capsys.readouterr()
        assert main(
            ["--cache-gc", str(10 ** 9), "--cache-dir", str(cache)]
        ) == 0
        assert "removed 0 entries" in capsys.readouterr().err
        assert list(cache.glob("*/*.rpc")) == entries

    def test_gc_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            main(["--cache-gc", "0"])

    def test_csv_required_without_gc(self):
        with pytest.raises(SystemExit):
            main(["--support", "2"])


class TestBatchStats:
    def test_stats_summary_on_stderr(self, csv_path, tmp_path, capsys):
        batch = tmp_path / "requests.json"
        batch.write_text(
            json.dumps([{"support": 1}, {"support": 2}]), encoding="utf-8"
        )
        assert main([str(csv_path), "--batch", str(batch), "--stats"]) == 0
        captured = capsys.readouterr()
        assert "# stats:" in captured.err
        assert "executed runs" in captured.err
        assert "pool 1 sessions" in captured.err

    def test_stats_includes_store_counters(self, csv_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        batch = tmp_path / "requests.json"
        batch.write_text(json.dumps([{"support": 2}]), encoding="utf-8")
        assert main(
            [str(csv_path), "--batch", str(batch), "--stats",
             "--cache-dir", str(cache)]
        ) == 0
        captured = capsys.readouterr()
        assert "# stats: store" in captured.err
