"""Clean metrics: valid names, counters end _total, unique families."""


class Metrics:
    def __init__(self):
        self.requests = Counter("repro_demo_requests_total")
        self.latency = Histogram("repro_demo_latency_seconds")
        self.depth = Gauge("repro_demo_queue_depth")

    def render(self):
        return render_family(
            "repro_demo_renders_total", "counter", "renders", 1
        )
