"""Deterministic engine idiom: sorted sets, seeded RNG, perf_counter."""

import random
import time


def emit(attrs):
    for attr in sorted({a for a in attrs}):
        yield attr


def order(values, seed):
    result = sorted({v for v in values})
    rng = random.Random(seed)
    rng.shuffle(result)
    return result, time.perf_counter()
