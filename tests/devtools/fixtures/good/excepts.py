"""Clean exception hygiene: narrow types, justified breadth."""


def risky():
    try:
        return 1
    except ValueError:
        return None


def boundary():
    try:
        return 1
    except Exception:  # noqa: BLE001 - fixture demonstrating the convention
        return None
