"""Clean JSON serialization: payloads are JSON-native before dumps."""

import json


def render(result):
    return json.dumps(result, sort_keys=True, separators=(",", ":"))
