"""Clean fault-point usage: canonical literals and pass-through variables."""


class Store:
    def put(self, plan):
        plan.visit("store.put")

    def wired(self):
        self._visit_fault("service.execute")

    def dynamic(self, plan, point):
        plan.visit(point)  # non-literal: the call site is not the registry
