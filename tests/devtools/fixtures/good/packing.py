"""Clean store packing: allowlisted dtypes only."""

import numpy as np


def pack_rows(rows):
    return np.asarray(rows, dtype=np.int64)


def save(store, arr):
    return store.put("fp", "kind", {}, arrays={"a": arr.astype("float64")})
