"""Clean --fault help: the point list comes from the registry."""

import argparse

from repro.serve.faults import fault_points_help


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--fault",
        action="append",
        help="inject a fault 'point:kind'; points: " + fault_points_help(),
    )
    return parser
