"""Clean async handlers: awaits and executor hops only."""

import asyncio


class Handler:
    async def handle(self, request):
        await asyncio.sleep(0.01)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.service.run, request)

    def sync_stop(self):
        # Blocking in a *sync* method is fine; only coroutine bodies matter.
        return self._future.result(timeout=1)
