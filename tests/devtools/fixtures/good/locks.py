"""Clean lock usage: increasing ranks, builds outside the lock."""


class DemoService:
    def ordered(self, pool):
        with self._lock:  # service rank 10
            with pool._lock:  # pool rank 20 — strictly increasing
                return None

    def build_outside(self, profiler):
        with self._lock:
            token = self._token
        return profiler.dump_caches(), token


class DemoPool:
    def reentrant(self):
        with self._lock:  # RLock rank: re-entry of the same object is fine
            with self._lock:
                return None
