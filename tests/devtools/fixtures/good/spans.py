"""Good fixture for REP009: constants in, dynamic passthrough untouched."""

SPAN_DEMO_WORK = "repro.demo.work"


class Handler:
    def handle(self, tracer):
        with tracer.start_span(SPAN_DEMO_WORK, key="value"):
            pass

    def relay(self, tracer, name):
        # Dynamic names (e.g. the tracer's own internals) are out of scope.
        return tracer.start_span(name)
