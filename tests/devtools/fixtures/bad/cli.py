"""Deliberate REP003 violation: --fault help hand-lists stale points."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--fault",
        action="append",
        help="inject a fault, e.g. 'store.put:torn_write' or 'engine.tick'",
    )
    return parser
