"""Deliberate REP006 violations in an engine-shaped module."""

import random
import time


def emit(attrs):
    for attr in {a for a in attrs}:  # unordered set iteration
        yield attr


def order(values):
    result = list({v for v in values})  # list() over a set expression
    random.shuffle(result)  # unseeded module-level RNG
    return result, time.time()  # wall clock in an engine
