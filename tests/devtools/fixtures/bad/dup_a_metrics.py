"""One half of a cross-module duplicate family registration."""


class MetricsA:
    def __init__(self):
        self.things = Counter("repro_dup_things_total")
