"""Deliberate REP003 violations: typo'd fault points that never fire."""


class Store:
    def put(self, plan):
        plan.visit("store.putt")  # typo: not a canonical point

    def wired(self):
        self._visit_fault("store.write")  # not in the registry
