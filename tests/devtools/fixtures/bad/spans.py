"""Bad fixture for REP009: inline literals and a malformed SPAN_ constant."""

SPAN_SHOUTY = "Repro Spans!"  # does not match repro.[a-z0-9_.]+


class Handler:
    def handle(self, tracer):
        # A registered name, but inlined instead of importing the constant.
        with tracer.start_span("repro.store.put"):
            pass
        # Not a registered name at all.
        with tracer.start_trace("repro.storr.putt"):
            pass
