"""Deliberate REP001 violations: inversion, expensive-under-lock, re-acquire."""


class DemoPool:
    def inverted(self, service):
        with self._lock:  # pool rank 20
            with service._lock:  # service rank 10 — inversion
                return None

    def expensive(self, profiler):
        with self._lock:
            return profiler.dump_caches()  # store I/O under the pool lock


class DemoService:
    def self_deadlock(self):
        with self._lock:
            with self._lock:  # plain Lock re-acquired: deadlock
                return None
