"""Deliberate REP007 violations: unjustified broad excepts."""


def risky():
    try:
        return 1
    except Exception:
        return None


def bare():
    try:
        return 1
    except:
        return None
