"""Deliberate REP002 violations: blocking calls on the event loop."""

import time


class Handler:
    async def handle(self, request):
        time.sleep(0.1)
        with open("/tmp/fixture") as fh:
            data = fh.read()
        value = self._future.result(timeout=1)
        return self.service.run(request), data, value
