"""Deliberate REP008 violations: dtypes the store rejects on load."""

import numpy as np


def pack_rows(rows):
    return np.asarray(rows, dtype=np.float16)


def save(store, arr):
    return store.put("fp", "kind", {}, arrays={"a": arr.astype("complex64")})
