"""Deliberate REP005 violation: the default= escape hatch."""

import json


def render(result):
    return json.dumps(result, default=str)
