"""Other half of a cross-module duplicate family registration."""


class MetricsB:
    def __init__(self):
        self.things = Counter("repro_dup_things_total")
