"""Deliberate REP004 violations: naming breaks in one metrics module."""


class Metrics:
    def __init__(self):
        self.requests = Counter("repro_http_requests")  # counter sans _total
        self.latency = Histogram("repro_Bad-Name_seconds")  # invalid chars
        self.depth = Gauge("repro_depth_total")  # gauge claiming _total
