"""Every REP rule proves it fires (bad fixture) and stays quiet (good)."""

from pathlib import Path

import pytest

from repro.devtools.lint import PARSE_ERROR_RULE, run_lint
from repro.devtools.rules import all_rules

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def lint(paths, rule=None):
    select = [rule] if rule is not None else None
    return run_lint(paths, all_rules(), select=select)


def messages(findings):
    return "\n".join(f.render() for f in findings)


# --------------------------------------------------------------------- #
# REP001 lock-order
# --------------------------------------------------------------------- #
def test_rep001_fires_on_bad_fixture():
    findings = lint([BAD / "locks.py"], "REP001")
    text = messages(findings)
    assert len(findings) == 3
    assert "lock-order inversion" in text
    assert "expensive call" in text
    assert "self-deadlock" in text


def test_rep001_quiet_on_good_fixture():
    assert lint([GOOD / "locks.py"], "REP001") == []


# --------------------------------------------------------------------- #
# REP002 no-blocking-in-async
# --------------------------------------------------------------------- #
def test_rep002_fires_on_bad_fixture():
    findings = lint([BAD / "serve" / "http" / "handlers.py"], "REP002")
    text = messages(findings)
    assert len(findings) == 4
    assert "time.sleep" in text
    assert "'open'" in text
    assert "result" in text
    assert "service.run" in text


def test_rep002_quiet_on_good_fixture():
    assert lint([GOOD / "serve" / "http" / "handlers.py"], "REP002") == []


def test_rep002_is_scoped_to_serving_packages():
    # The same blocking code outside serve/http|fleet is out of scope.
    findings = lint([BAD / "locks.py"], "REP002")
    assert findings == []


# --------------------------------------------------------------------- #
# REP003 fault-point names
# --------------------------------------------------------------------- #
def test_rep003_fires_on_typoed_points():
    findings = lint([BAD / "faults.py"], "REP003")
    text = messages(findings)
    assert len(findings) == 2
    assert "store.putt" in text
    assert "store.write" in text


def test_rep003_fires_on_hand_listed_cli_help():
    findings = lint([BAD / "cli.py"], "REP003")
    assert any("FAULT_POINTS" in f.message for f in findings)


def test_rep003_quiet_on_good_fixtures():
    assert lint([GOOD / "faults.py"], "REP003") == []
    assert lint([GOOD / "cli.py"], "REP003") == []


# --------------------------------------------------------------------- #
# REP004 metrics naming
# --------------------------------------------------------------------- #
def test_rep004_fires_on_bad_names():
    findings = lint([BAD / "bad_metrics.py"], "REP004")
    text = messages(findings)
    assert len(findings) == 3
    assert "repro_http_requests" in text and "_total" in text
    assert "repro_Bad-Name_seconds" in text
    assert "repro_depth_total" in text


def test_rep004_fires_on_cross_module_duplicate():
    findings = lint(
        [BAD / "dup_a_metrics.py", BAD / "dup_b_metrics.py"], "REP004"
    )
    assert any("multiple modules" in f.message for f in findings)


def test_rep004_quiet_on_good_fixture():
    assert lint([GOOD / "good_metrics.py"], "REP004") == []


# --------------------------------------------------------------------- #
# REP005 json-native
# --------------------------------------------------------------------- #
def test_rep005_fires_on_default_kwarg():
    findings = lint([BAD / "payload.py"], "REP005")
    assert len(findings) == 1
    assert "default=" in findings[0].message


def test_rep005_quiet_on_good_fixture():
    assert lint([GOOD / "payload.py"], "REP005") == []


# --------------------------------------------------------------------- #
# REP006 determinism
# --------------------------------------------------------------------- #
def test_rep006_fires_on_engine_nondeterminism():
    findings = lint([BAD / "core" / "engine.py"], "REP006")
    text = messages(findings)
    assert len(findings) == 4
    assert "unordered set" in text
    assert "random.shuffle" in text
    assert "time.time" in text


def test_rep006_quiet_on_good_fixture():
    assert lint([GOOD / "core" / "engine.py"], "REP006") == []


def test_rep006_is_scoped_to_engine_modules():
    # The same constructs outside core/fd/itemsets are out of scope.
    findings = lint([BAD / "payload.py"], "REP006")
    assert findings == []


# --------------------------------------------------------------------- #
# REP007 broad-except hygiene
# --------------------------------------------------------------------- #
def test_rep007_fires_on_unjustified_excepts():
    findings = lint([BAD / "excepts.py"], "REP007")
    text = messages(findings)
    assert len(findings) == 2
    assert "noqa: BLE001" in text
    assert "bare" in text


def test_rep007_quiet_on_good_fixture():
    assert lint([GOOD / "excepts.py"], "REP007") == []


# --------------------------------------------------------------------- #
# REP008 store dtypes
# --------------------------------------------------------------------- #
def test_rep008_fires_on_disallowed_dtypes():
    findings = lint([BAD / "packing.py"], "REP008")
    text = messages(findings)
    assert len(findings) == 2
    assert "float16" in text
    assert "complex64" in text


def test_rep008_quiet_on_good_fixture():
    assert lint([GOOD / "packing.py"], "REP008") == []


# --------------------------------------------------------------------- #
# REP009 span names
# --------------------------------------------------------------------- #
def test_rep009_fires_on_bad_fixture():
    findings = lint([BAD / "spans.py"], "REP009")
    text = messages(findings)
    assert len(findings) == 3
    assert "inline literal" in text  # valid name, but not the constant
    assert "repro.storr.putt" in text  # unknown name
    assert "SPAN_SHOUTY" in text  # malformed constant value


def test_rep009_quiet_on_good_fixture():
    assert lint([GOOD / "spans.py"], "REP009") == []


def test_rep009_registry_matches_design_doc():
    # The real tree: every instrumentation site plus the DESIGN.md span
    # taxonomy must agree with repro.obs.names.SPAN_NAMES.
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert lint([src], "REP009") == []


# --------------------------------------------------------------------- #
# framework behaviour
# --------------------------------------------------------------------- #
def test_parse_error_becomes_rep000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def half(:\n", encoding="utf-8")
    findings = run_lint([broken], all_rules())
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE


def test_good_tree_is_clean_under_all_rules():
    assert lint([GOOD]) == []


def test_bad_tree_fires_every_rule():
    findings = lint([BAD])
    fired = {f.rule for f in findings}
    expected = {f"REP00{i}" for i in range(1, 10)}
    assert expected <= fired


def test_ignore_drops_rules():
    findings = run_lint([BAD], all_rules(), ignore=["REP00%d" % i for i in range(1, 10)])
    assert findings == []


@pytest.mark.parametrize("rule_id", [f"REP00{i}" for i in range(1, 10)])
def test_each_rule_has_a_failing_fixture(rule_id):
    findings = lint([BAD], rule_id)
    assert findings, f"{rule_id} has no failing fixture"
    assert all(f.rule == rule_id for f in findings)
