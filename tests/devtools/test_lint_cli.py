"""The repro-lint CLI: exit codes, rule listing, selection, and the src/ gate."""

import time
from pathlib import Path

from repro.devtools.cli import main
from repro.devtools.lint import run_lint
from repro.devtools.rules import all_rules

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_list_rules_shows_the_whole_table(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for index in range(1, 9):
        assert f"REP00{index}" in out
    assert "REPRO_LOCKCHECK" in out


def test_bad_fixture_exits_one(capsys):
    assert main([str(FIXTURES / "bad" / "payload.py")]) == 1
    out = capsys.readouterr().out
    assert "REP005" in out


def test_good_tree_exits_zero():
    assert main([str(FIXTURES / "good"), "--quiet"]) == 0


def test_select_limits_the_rules(capsys):
    code = main(["--select", "REP005", str(FIXTURES / "bad")])
    assert code == 1
    out = capsys.readouterr().out
    assert "REP005" in out
    assert "REP007" not in out


def test_unknown_rule_is_a_usage_error():
    assert main(["--select", "REP042", str(FIXTURES / "good")]) == 2


def test_missing_path_is_a_usage_error():
    assert main([str(FIXTURES / "no-such-dir")]) == 2


def test_src_lints_clean_with_all_rules():
    # The CI gate: the repo's own source carries zero findings.
    findings = run_lint([SRC], all_rules())
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"src/ has lint findings:\n{rendered}"


def test_full_lint_pass_is_fast():
    # CI guards the wall-clock budget; keep a generous local margin.
    started = time.perf_counter()
    run_lint([SRC], all_rules())
    elapsed = time.perf_counter() - started
    assert elapsed < 10.0, f"lint of src/ took {elapsed:.1f}s (budget 10s)"
