"""The six fault points have one source of truth and every surface tracks it."""

import re
from pathlib import Path

from repro.serve import faults
from repro.serve.faults import FAULT_POINTS, fault_points_help

REPO_ROOT = Path(__file__).resolve().parents[2]

CANONICAL = {
    "store.put",
    "store.get",
    "engine.level",
    "service.execute",
    "fleet.send",
    "fleet.poll",
}


def test_registry_is_exactly_the_six_points():
    assert set(FAULT_POINTS) == CANONICAL
    assert len(FAULT_POINTS) == 6


def test_constants_match_their_names():
    assert faults.FAULT_POINT_STORE_PUT == "store.put"
    assert faults.FAULT_POINT_STORE_GET == "store.get"
    assert faults.FAULT_POINT_ENGINE_LEVEL == "engine.level"
    assert faults.FAULT_POINT_SERVICE_EXECUTE == "service.execute"
    assert faults.FAULT_POINT_FLEET_SEND == "fleet.send"
    assert faults.FAULT_POINT_FLEET_POLL == "fleet.poll"


def test_help_string_lists_every_point():
    rendered = fault_points_help()
    for point in CANONICAL:
        assert point in rendered


def test_design_md_table_matches_registry():
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    documented = set(
        re.findall(r"^\|\s*`([a-z_]+\.[a-z_]+)`\s*\|", text, flags=re.M)
    )
    assert documented == CANONICAL


def test_http_cli_fault_help_lists_every_point():
    from repro.serve.http.cli import build_parser

    rendered = build_parser().format_help()
    for point in CANONICAL:
        assert point in rendered


def test_fleet_cli_fault_help_lists_every_point():
    from repro.serve.fleet.cli import build_parser

    rendered = build_parser().format_help()
    for point in CANONICAL:
        assert point in rendered
