"""The runtime lock-order, I/O-guard, and watchdog checkers."""

import asyncio
import threading
import time

import pytest

from repro.devtools import lockcheck
from repro.devtools.lockcheck import (
    RANK_POOL,
    RANK_SERVICE,
    RANK_SESSION,
    BlockingUnderLockError,
    EventLoopWatchdog,
    LockOrderError,
    check_io_unlocked,
    held_ranked_locks,
    maybe_watch_loop,
    ranked_lock,
)


@pytest.fixture(autouse=True)
def armed_checkers():
    lockcheck.arm()
    try:
        yield
    finally:
        lockcheck.reset_arming()


def test_disarmed_factory_returns_plain_locks():
    lockcheck.disarm()
    lock = ranked_lock(RANK_SERVICE)
    assert not hasattr(lock, "rank")
    rlock = ranked_lock(RANK_POOL, reentrant=True)
    assert not hasattr(rlock, "rank")
    with lock:
        check_io_unlocked("store.put")  # disarmed: never raises


def test_increasing_ranks_are_permitted():
    service = ranked_lock(RANK_SERVICE, "svc")
    pool = ranked_lock(RANK_POOL, "pool", reentrant=True)
    session = ranked_lock(RANK_SESSION, "sess", reentrant=True)
    with service:
        with pool:
            with session:
                assert [r for r, _ in held_ranked_locks()] == [
                    RANK_SERVICE,
                    RANK_POOL,
                    RANK_SESSION,
                ]
    assert held_ranked_locks() == ()


def test_pool_to_service_inversion_raises():
    service = ranked_lock(RANK_SERVICE, "svc")
    pool = ranked_lock(RANK_POOL, "pool", reentrant=True)
    with pool:
        with pytest.raises(LockOrderError, match="inversion"):
            with service:
                pass
    assert held_ranked_locks() == ()


def test_equal_rank_second_lock_raises():
    pool_a = ranked_lock(RANK_POOL, "pool-a", reentrant=True)
    pool_b = ranked_lock(RANK_POOL, "pool-b", reentrant=True)
    with pool_a:
        with pytest.raises(LockOrderError):
            pool_b.acquire()


def test_reentrant_reacquire_is_permitted():
    session = ranked_lock(RANK_SESSION, "sess", reentrant=True)
    with session:
        with session:
            assert len(held_ranked_locks()) == 2
    assert held_ranked_locks() == ()


def test_non_reentrant_reacquire_raises():
    service = ranked_lock(RANK_SERVICE, "svc")
    with service:
        with pytest.raises(LockOrderError, match="re-acquired"):
            service.acquire()


def test_held_stack_is_thread_local():
    pool = ranked_lock(RANK_POOL, "pool", reentrant=True)
    service = ranked_lock(RANK_SERVICE, "svc")
    errors = []

    def other_thread():
        try:
            with service:  # fine: this thread holds nothing
                pass
        except LockOrderError as exc:  # pragma: no cover - the failure case
            errors.append(exc)

    with pool:
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
    assert errors == []


def test_check_io_unlocked_raises_under_ranked_lock():
    pool = ranked_lock(RANK_POOL, "pool", reentrant=True)
    with pool:
        with pytest.raises(BlockingUnderLockError, match="store.put"):
            check_io_unlocked("store.put")
    check_io_unlocked("store.put")  # nothing held: fine


def test_real_pool_then_service_inversion_raises():
    # The integration form of the invariant: the actual serving classes'
    # locks are ranked, so a coded-in inversion surfaces as an error.
    from repro.serve.service import DiscoveryService

    service = DiscoveryService(max_workers=1)
    try:
        pool = service.info()["pool"]  # service->pool is the legal order
        assert isinstance(pool, dict)
        with service._pool._lock:
            with pytest.raises(LockOrderError):
                with service._lock:
                    pass
    finally:
        service.shutdown()
    assert held_ranked_locks() == ()


# --------------------------------------------------------------------- #
# event-loop watchdog
# --------------------------------------------------------------------- #
def _loop_in_thread():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    return loop, thread


def _stop_loop(loop, thread):
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)
    loop.close()


def test_watchdog_detects_a_blocked_loop():
    loop, thread = _loop_in_thread()
    try:
        watchdog = EventLoopWatchdog(
            loop, "test", threshold=0.05, interval=0.01
        ).start()
        loop.call_soon_threadsafe(time.sleep, 0.4)
        time.sleep(0.6)
        watchdog.stop()
        assert watchdog.stalls >= 1
        assert watchdog.worst_delay > 0.05
        report = watchdog.report()
        assert report["name"] == "test"
        assert report["stalls"] == watchdog.stalls
    finally:
        _stop_loop(loop, thread)


def test_watchdog_quiet_on_healthy_loop():
    loop, thread = _loop_in_thread()
    try:
        watchdog = EventLoopWatchdog(
            loop, "test", threshold=0.25, interval=0.01
        ).start()
        time.sleep(0.3)
        watchdog.stop()
        assert watchdog.stalls == 0
    finally:
        _stop_loop(loop, thread)


def test_maybe_watch_loop_respects_arming():
    loop, thread = _loop_in_thread()
    try:
        lockcheck.disarm()
        assert maybe_watch_loop(loop, "test") is None
        lockcheck.arm()
        watchdog = maybe_watch_loop(loop, "test", threshold=0.5)
        assert watchdog is not None
        watchdog.stop()
    finally:
        _stop_loop(loop, thread)
