"""Unit tests for repro.core.validation (satisfaction, support, violations)."""

import pytest

from repro.core.cfd import CFD, cfd_from_fd
from repro.core.pattern import WILDCARD
from repro.core.validation import (
    holds,
    is_frequent,
    matching_rows,
    satisfies,
    satisfies_all,
    support,
    support_count,
    violating_tuples,
    violations,
)
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B", "C"],
        [
            (1, "x", 10),
            (1, "x", 10),
            (1, "y", 20),
            (2, "y", 30),
            (2, "y", 40),
        ],
    )


class TestMatchingAndSupport:
    def test_matching_rows_with_constants(self, relation):
        phi = CFD(("A",), (1,), "B", WILDCARD)
        assert matching_rows(relation, phi) == [0, 1, 2]

    def test_matching_rows_all_wildcards(self, relation):
        assert matching_rows(relation, cfd_from_fd(("A",), "B")) == [0, 1, 2, 3, 4]

    def test_support_includes_rhs_pattern(self, relation):
        phi = CFD(("A",), (1,), "B", "x")
        assert support(relation, phi) == [0, 1]
        assert support_count(relation, phi) == 2

    def test_support_with_wildcard_rhs(self, relation):
        phi = CFD(("A",), (1,), "B", WILDCARD)
        assert support_count(relation, phi) == 3

    def test_support_empty_lhs(self, relation):
        phi = CFD((), (), "B", "y")
        assert support_count(relation, phi) == 3

    def test_is_frequent(self, relation):
        phi = CFD(("A",), (1,), "B", "x")
        assert is_frequent(relation, phi, 2)
        assert not is_frequent(relation, phi, 3)


class TestSatisfaction:
    def test_fd_like_cfd_satisfied(self, relation):
        # C -> B holds on the instance.
        assert satisfies(relation, cfd_from_fd(("C",), "B"))

    def test_fd_like_cfd_violated(self, relation):
        # A -> B is violated (A=1 maps to both x and y).
        assert not satisfies(relation, cfd_from_fd(("A",), "B"))

    def test_conditional_cfd_satisfied(self, relation):
        # Restricted to A=2, B is constant 'y'.
        assert satisfies(relation, CFD(("A",), (2,), "B", WILDCARD))
        assert satisfies(relation, CFD(("A",), (2,), "B", "y"))

    def test_constant_cfd_violated_by_single_tuple(self, relation):
        assert not satisfies(relation, CFD(("A",), (1,), "B", "x"))

    def test_empty_match_is_vacuously_satisfied(self, relation):
        assert satisfies(relation, CFD(("A",), (99,), "B", "x"))

    def test_holds_combines_satisfaction_and_support(self, relation):
        phi = CFD(("A",), (2,), "B", "y")
        assert holds(relation, phi, k=2)
        assert not holds(relation, phi, k=3)

    def test_satisfies_all(self, relation):
        good = [CFD(("A",), (2,), "B", "y"), cfd_from_fd(("C",), "B")]
        assert satisfies_all(relation, good)
        assert not satisfies_all(relation, good + [cfd_from_fd(("A",), "B")])

    def test_paper_semantics_single_tuple_violation(self):
        """(AC -> CT, (131 || EDI)) is violated by a single tuple (Example 3)."""
        r = Relation.from_rows(
            ["AC", "CT"],
            [("131", "EDI"), ("131", "EDI"), ("131", "NYC")],
        )
        assert not satisfies(r, CFD(("AC",), ("131",), "CT", "EDI"))


class TestViolations:
    def test_single_tuple_violation_reported(self, relation):
        phi = CFD(("A",), (1,), "B", "x")
        found = violations(relation, phi)
        kinds = {violation.kind for violation in found}
        assert "single" in kinds
        single = [v for v in found if v.kind == "single"][0]
        assert single.rows == (2,)

    def test_pair_violation_reported(self, relation):
        phi = cfd_from_fd(("A",), "B")
        found = violations(relation, phi)
        assert any(v.kind == "pair" for v in found)
        pair = [v for v in found if v.kind == "pair"][0]
        assert len(pair.rows) == 2

    def test_no_violations_for_satisfied_cfd(self, relation):
        assert violations(relation, cfd_from_fd(("C",), "B")) == []

    def test_max_violations_cap(self, relation):
        phi = CFD(("A",), (1,), "B", "x")
        assert len(violations(relation, phi, max_violations=1)) == 1

    def test_violating_tuples_union(self, relation):
        rows = violating_tuples(relation, [cfd_from_fd(("A",), "B")])
        assert rows  # at least the conflicting pair
        assert rows <= set(range(relation.n_rows))

    def test_satisfied_set_has_no_violating_tuples(self, relation):
        assert violating_tuples(relation, [cfd_from_fd(("C",), "B")]) == set()
