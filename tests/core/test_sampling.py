"""Unit tests for sampling-based discovery (the paper's future-work item)."""

import pytest

from repro.core.minimality import is_minimal
from repro.core.sampling import discover_with_sampling, stratified_sample
from repro.datagen.tax import generate_tax
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


@pytest.fixture(scope="module")
def tax() -> Relation:
    return generate_tax(db_size=600, arity=7, cf=0.7, seed=3)


class TestStratifiedSample:
    def test_invalid_size_rejected(self, tax):
        with pytest.raises(DiscoveryError):
            stratified_sample(tax, 0)

    def test_oversized_sample_returns_relation(self, tax):
        assert stratified_sample(tax, tax.n_rows + 10) is tax

    def test_uniform_sample_size_and_schema(self, tax):
        sample = stratified_sample(tax, 100, seed=1)
        assert sample.n_rows == 100
        assert sample.schema == tax.schema

    def test_sample_rows_come_from_the_relation(self, tax):
        sample = stratified_sample(tax, 50, seed=2)
        original = set(tax.rows())
        assert all(row in original for row in sample.rows())

    def test_deterministic_given_seed(self, tax):
        assert stratified_sample(tax, 80, seed=5) == stratified_sample(tax, 80, seed=5)

    def test_stratified_sample_preserves_proportions(self, tax):
        sample = stratified_sample(tax, 200, strata=["CC"], seed=4)
        assert sample.n_rows == 200
        full_ratio = tax.value_counts("CC")["01"] / tax.n_rows
        sample_ratio = sample.value_counts("CC")["01"] / sample.n_rows
        assert abs(full_ratio - sample_ratio) < 0.05

    def test_stratified_sample_covers_all_large_strata(self, tax):
        sample = stratified_sample(tax, 100, strata=["CC", "AC"], seed=6)
        large_strata = {
            key
            for key, count in _group_counts(tax, ["CC", "AC"]).items()
            if count >= tax.n_rows * 0.05
        }
        sampled_strata = set(_group_counts(sample, ["CC", "AC"]).keys())
        assert large_strata <= sampled_strata


def _group_counts(relation, attributes):
    counts = {}
    columns = [relation.column(a) for a in attributes]
    for row in range(relation.n_rows):
        key = tuple(column[row] for column in columns)
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestDiscoverWithSampling:
    def test_invalid_support_rejected(self, tax):
        with pytest.raises(DiscoveryError):
            discover_with_sampling(tax, 0, sample_size=100)

    def test_validated_rules_hold_on_full_relation(self, tax):
        result = discover_with_sampling(
            tax, 12, sample_size=200, algorithm="fastcfd", seed=7
        )
        assert result.cfds, "expected some rules to survive validation"
        for cfd in result.cfds:
            assert is_minimal(tax, cfd, k=12)

    def test_precision_and_counts_consistent(self, tax):
        result = discover_with_sampling(tax, 12, sample_size=200, seed=7)
        assert result.validated == len(result.cfds)
        assert result.candidates == result.validated + len(result.rejected)
        assert 0.0 <= result.precision <= 1.0

    def test_sample_support_scaled_proportionally(self, tax):
        result = discover_with_sampling(tax, 12, sample_size=300, seed=7)
        assert result.sample_support == max(1, round(12 * 300 / tax.n_rows))

    def test_unvalidated_mode_returns_raw_candidates(self, tax):
        raw = discover_with_sampling(tax, 12, sample_size=200, seed=7, validate=False)
        assert raw.candidates == len(raw.cfds)
        assert raw.rejected == []

    def test_stratified_sampling_mode_runs(self, tax):
        result = discover_with_sampling(
            tax, 12, sample_size=200, strata=["CC"], seed=9
        )
        assert result.sample_size == 200
        assert "sampling discovery" in result.summary()

    def test_pooled_reruns_share_the_sample_session(self, tax):
        from repro.serve import SessionPool

        pool = SessionPool()
        first = discover_with_sampling(
            tax, 12, sample_size=200, algorithm="fastcfd", seed=7, pool=pool
        )
        second = discover_with_sampling(
            tax, 18, sample_size=200, algorithm="fastcfd", seed=7, pool=pool
        )
        assert first.candidates >= 0 and second.candidates >= 0
        info = pool.info()
        # Same seed, same size -> same drawn sample -> one pooled session
        # whose k-independent provider was built exactly once.
        assert info["sessions"] == 1
        assert info["hits"] == 1 and info["misses"] == 1
        session = pool.session(stratified_sample(tax, 200, seed=7))
        cache = session.cache_info()
        assert cache["closed_difference_sets"]["misses"] == 1

    def test_explicit_session_wins_over_pool(self, tax):
        from repro.api import Profiler
        from repro.serve import SessionPool

        sample = stratified_sample(tax, 200, seed=7)
        session = Profiler(sample)
        pool = SessionPool()
        discover_with_sampling(
            tax, 12, sample_size=200, algorithm="fastcfd", seed=7,
            session=session, pool=pool,
        )
        assert len(pool) == 0  # the pool was never consulted
        assert session.cache_info()["closed_difference_sets"]["misses"] == 1
