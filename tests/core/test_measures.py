"""Unit tests for CFD interest measures (support, confidence, conviction, χ²)."""

import pytest

from repro.core.cfd import CFD, cfd_from_fd
from repro.core.measures import (
    chi_squared,
    confidence,
    conviction,
    measures,
    rank_by_interest,
)
from repro.core.pattern import WILDCARD
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    # A=1 maps to B=x in 3 of 4 matching tuples; A=2 maps to B=y always.
    return Relation.from_rows(
        ["A", "B"],
        [
            (1, "x"),
            (1, "x"),
            (1, "x"),
            (1, "z"),
            (2, "y"),
            (2, "y"),
        ],
    )


class TestConfidence:
    def test_exact_rule_has_confidence_one(self, relation):
        assert confidence(relation, CFD(("A",), (2,), "B", "y")) == 1.0

    def test_partial_rule_confidence(self, relation):
        assert confidence(relation, CFD(("A",), (1,), "B", "x")) == pytest.approx(0.75)

    def test_variable_cfd_confidence(self, relation):
        assert confidence(relation, cfd_from_fd(("A",), "B")) == pytest.approx(5 / 6)

    def test_empty_match_confidence_is_one(self, relation):
        assert confidence(relation, CFD(("A",), (99,), "B", "x")) == 1.0

    def test_confidence_counts_only_pattern_compatible_values(self, relation):
        # RHS constant 'z' matches a single tuple of the A=1 group.
        assert confidence(relation, CFD(("A",), (1,), "B", "z")) == pytest.approx(0.25)


class TestConvictionAndChiSquared:
    def test_conviction_none_for_variable_cfds(self, relation):
        assert conviction(relation, cfd_from_fd(("A",), "B")) is None
        assert chi_squared(relation, cfd_from_fd(("A",), "B")) is None

    def test_conviction_infinite_for_exact_rule(self, relation):
        assert conviction(relation, CFD(("A",), (2,), "B", "y")) == float("inf")

    def test_conviction_value(self, relation):
        # P(B=x) = 3/6, confidence = 3/4 -> conviction = (1-0.5)/(1-0.75) = 2.
        assert conviction(relation, CFD(("A",), (1,), "B", "x")) == pytest.approx(2.0)

    def test_chi_squared_positive_for_correlated_rule(self, relation):
        value = chi_squared(relation, CFD(("A",), (2,), "B", "y"))
        assert value is not None and value > 0

    def test_chi_squared_none_for_degenerate_table(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, "x")])
        # every tuple matches both sides: the contingency table is degenerate
        assert chi_squared(r, CFD(("A",), (1,), "B", "x")) is None

    def test_empty_relation(self):
        empty = Relation(["A", "B"], [[], []])
        assert conviction(empty, CFD(("A",), (1,), "B", "x")) is None
        assert chi_squared(empty, CFD(("A",), (1,), "B", "x")) is None


class TestBundleAndRanking:
    def test_measures_bundle(self, relation):
        bundle = measures(relation, CFD(("A",), (2,), "B", "y"))
        assert bundle.support_count == 2
        assert bundle.support_ratio == pytest.approx(2 / 6)
        assert bundle.confidence == 1.0
        assert bundle.conviction == float("inf")

    def test_rank_by_confidence(self, relation):
        exact = CFD(("A",), (2,), "B", "y")
        partial = CFD(("A",), (1,), "B", "x")
        ranked = rank_by_interest(relation, [partial, exact], key="confidence")
        assert ranked[0] == exact

    def test_rank_by_support(self, relation):
        exact = CFD(("A",), (2,), "B", "y")       # support 2
        partial = CFD(("A",), (1,), "B", "x")     # support 3
        ranked = rank_by_interest(relation, [exact, partial], key="support")
        assert ranked[0] == partial

    def test_rank_puts_missing_values_last(self, relation):
        variable = cfd_from_fd(("A",), "B")       # conviction is None
        constant = CFD(("A",), (2,), "B", "y")
        ranked = rank_by_interest(relation, [variable, constant], key="conviction")
        assert ranked[-1] == variable

    def test_rank_rejects_unknown_key(self, relation):
        with pytest.raises(ValueError):
            rank_by_interest(relation, [], key="nope")
