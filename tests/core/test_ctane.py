"""Unit tests for CTANE (levelwise general CFD discovery, Section 4)."""

import pytest

from repro.core.bruteforce import discover_bruteforce
from repro.core.cfd import CFD, cfd_from_fd
from repro.core.ctane import CTane, discover_cfds_ctane
from repro.core.minimality import is_minimal
from repro.core.pattern import WILDCARD
from repro.core.validation import support_count
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    # A -> B holds only for A = 1; C -> B holds globally; D is constant.
    return Relation.from_rows(
        ["A", "B", "C", "D"],
        [
            (1, 5, "p", "k"),
            (1, 5, "q", "k"),
            (2, 6, "r", "k"),
            (2, 7, "s", "k"),
            (2, 7, "s", "k"),
        ],
    )


class TestCTaneBasics:
    def test_invalid_support_rejected(self, relation):
        with pytest.raises(DiscoveryError):
            CTane(relation, min_support=0)

    def test_finds_conditional_constant_rule(self, relation):
        found = set(CTane(relation, 2).discover())
        assert CFD(("A",), (1,), "B", 5) in found

    def test_finds_conditional_variable_rule(self, relation):
        found = set(CTane(relation, 2).discover())
        assert CFD(("A",), (1,), "B", WILDCARD) in found

    def test_finds_global_fd(self, relation):
        found = set(CTane(relation, 1).discover())
        assert cfd_from_fd(("C",), "B") in found

    def test_finds_constant_column_rule(self, relation):
        found = set(CTane(relation, 1).discover())
        assert CFD((), (), "D", "k") in found

    def test_violated_fd_absent(self, relation):
        assert cfd_from_fd(("A",), "B") not in set(CTane(relation, 1).discover())

    def test_every_output_is_minimal_and_frequent(self, relation):
        for k in (1, 2, 3):
            for cfd in CTane(relation, k).discover():
                assert is_minimal(relation, cfd, k=k), str(cfd)
                assert support_count(relation, cfd) >= k

    def test_no_duplicates(self, relation):
        found = CTane(relation, 1).discover()
        assert len(found) == len(set(found))

    def test_equals_bruteforce(self, relation):
        for k in (1, 2):
            assert set(CTane(relation, k).discover()) == discover_bruteforce(relation, k)

    def test_support_threshold_monotone(self, relation):
        counts = [len(CTane(relation, k).discover()) for k in (1, 2, 3)]
        assert counts == sorted(counts, reverse=True)

    def test_statistics_populated(self, relation):
        ctane = CTane(relation, 1)
        ctane.discover()
        assert ctane.candidates_checked > 0
        assert ctane.elements_generated > 0

    def test_wrapper(self, relation):
        assert set(discover_cfds_ctane(relation, 2)) == set(CTane(relation, 2).discover())


class TestCTaneOptions:
    def test_max_lhs_size(self, relation):
        for cfd in CTane(relation, 1, max_lhs_size=1).discover():
            assert len(cfd.lhs) <= 1

    def test_pruning_ablation_preserves_output(self, relation):
        with_pruning = set(CTane(relation, 2, cplus_pruning=True).discover())
        without_pruning = set(CTane(relation, 2, cplus_pruning=False).discover())
        assert with_pruning == without_pruning

    def test_verify_minimality_does_not_change_output(self, relation):
        raw = set(CTane(relation, 2).discover())
        verified = set(CTane(relation, 2, verify_minimality=True).discover())
        assert raw == verified

    def test_incremental_partitions_byte_identical_to_scan(self, relation):
        for k in (1, 2, 3):
            incremental = CTane(relation, k).discover()
            legacy = CTane(relation, k, incremental_partitions=False).discover()
            assert incremental == legacy  # same CFDs in the same order

    def test_incremental_equals_bruteforce_on_random_relations(self):
        import numpy as np

        rng = np.random.default_rng(11)
        for trial in range(6):
            rows = [
                tuple(int(v) for v in rng.integers(0, 3, size=3))
                for _ in range(int(rng.integers(2, 9)))
            ]
            r = Relation.from_rows(["A", "B", "C"], rows)
            for k in (1, 2):
                found = CTane(r, k).discover()
                assert found == CTane(
                    r, k, incremental_partitions=False
                ).discover()
                assert set(found) == discover_bruteforce(r, k)

    def test_session_shares_attribute_partitions(self, relation):
        from repro.api import Profiler

        profiler = Profiler(relation)
        with_session = CTane(relation, 2, session=profiler).discover()
        assert with_session == CTane(relation, 2).discover()
        info = profiler.cache_info()["attribute_partitions"]
        assert info["misses"] > 0
        # a second run over the same session hits the shared cache
        CTane(relation, 2, session=profiler).discover()
        assert profiler.cache_info()["attribute_partitions"]["hits"] > 0


class TestCTaneEdgeCases:
    def test_single_tuple_relation(self):
        r = Relation.from_rows(["A", "B"], [(1, "x")])
        found = set(CTane(r, 1).discover())
        assert CFD((), (), "A", 1) in found
        assert CFD((), (), "B", "x") in found

    def test_duplicate_rows(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, "x"), (1, "x")])
        found = set(CTane(r, 2).discover())
        assert CFD((), (), "A", 1) in found
        assert CFD((), (), "B", "x") in found

    def test_no_frequent_patterns(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (2, "y"), (3, "z")])
        found = set(CTane(r, 2).discover())
        # nothing repeats, so no k=2 CFDs exist at all
        assert found == discover_bruteforce(r, 2)

    def test_two_column_bijection_matches_bruteforce(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, "x"), (2, "y")])
        assert set(CTane(r, 1).discover()) == discover_bruteforce(r, 1)
