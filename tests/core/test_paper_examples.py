"""Integration tests: the worked examples of the paper on the cust relation.

The fixtures reconstruct the instance r0 of Fig. 1; these tests verify the
claims the paper makes about it in Examples 1-7 and check that the discovery
algorithms find the corresponding (left-reduced) rules.
"""

import pytest

from repro.core.cfd import CFD, cfd_from_fd
from repro.core.cfdminer import CFDMiner
from repro.core.ctane import CTane
from repro.core.fastcfd import FastCFD
from repro.core.minimality import is_minimal
from repro.core.pattern import WILDCARD
from repro.core.validation import satisfies, support_count
from repro.itemsets.itemset import encode_items
from repro.itemsets.mining import mine_free_and_closed


# ------------------------------------------------------------------------- #
# Example 1 / Example 3: FDs and CFDs that hold (or fail) on r0
# ------------------------------------------------------------------------- #
class TestExampleCFDs:
    def test_f1_holds(self, cust_relation):
        assert satisfies(cust_relation, cfd_from_fd(("CC", "AC"), "CT"))

    def test_f2_holds(self, cust_relation):
        assert satisfies(cust_relation, cfd_from_fd(("CC", "AC", "PN"), "STR"))

    def test_phi0_holds(self, cust_relation):
        phi0 = CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD)
        assert satisfies(cust_relation, phi0)

    def test_phi1_holds_and_is_3_frequent(self, cust_relation):
        phi1 = CFD(("CC", "AC"), ("01", "908"), "CT", "MH")
        assert satisfies(cust_relation, phi1)
        assert support_count(cust_relation, phi1) >= 3

    def test_phi2_holds_and_is_2_frequent(self, cust_relation):
        phi2 = CFD(("CC", "AC"), ("44", "131"), "CT", "EDI")
        assert satisfies(cust_relation, phi2)
        assert support_count(cust_relation, phi2) == 2

    def test_unconditional_zip_to_str_fails(self, cust_relation):
        """Example 3: ([CC, ZIP] -> STR, (_, _ || _)) is violated."""
        assert not satisfies(cust_relation, cfd_from_fd(("CC", "ZIP"), "STR"))

    def test_ac_to_ct_131_edi_fails_because_of_t8(self, cust_relation):
        """Example 3: (AC -> CT, (131 || EDI)) is violated by a single tuple."""
        assert not satisfies(cust_relation, CFD(("AC",), ("131",), "CT", "EDI"))


# ------------------------------------------------------------------------- #
# Example 5: minimality on r0
# ------------------------------------------------------------------------- #
class TestExampleMinimality:
    def test_phi2_is_minimal(self, cust_relation):
        phi2 = CFD(("CC", "AC"), ("44", "131"), "CT", "EDI")
        assert is_minimal(cust_relation, phi2)

    def test_phi1_is_not_minimal(self, cust_relation):
        """phi1 can be reduced to (AC -> CT, (908 || MH))."""
        phi1 = CFD(("CC", "AC"), ("01", "908"), "CT", "MH")
        assert not is_minimal(cust_relation, phi1)
        assert is_minimal(cust_relation, CFD(("AC",), ("908",), "CT", "MH"))

    def test_f1_and_phi0_are_minimal_variable_cfds(self, cust_relation):
        assert is_minimal(cust_relation, cfd_from_fd(("CC", "AC"), "CT"))
        assert is_minimal(
            cust_relation, CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD)
        )

    def test_specialisations_of_f1_are_not_minimal(self, cust_relation):
        for pattern in [("01", WILDCARD), ("44", WILDCARD), (WILDCARD, "908")]:
            phi = CFD(("CC", "AC"), pattern, "CT", WILDCARD)
            assert not is_minimal(cust_relation, phi), pattern


# ------------------------------------------------------------------------- #
# Examples 6/7: free and closed item sets on r0
# ------------------------------------------------------------------------- #
class TestExampleItemsets:
    def test_ct_mh_closed_set_support_three(self, cust_relation):
        """([CC, AC, CT, ZIP], (01, 908, MH, 07974)) has support 3 (Fig. 2)."""
        result = mine_free_and_closed(cust_relation, min_support=3)
        closed = encode_items(
            cust_relation, {"CC": "01", "AC": "908", "CT": "MH", "ZIP": "07974"}
        )
        assert closed in result.closed_supports
        assert result.closed_supports[closed] == 3

    def test_free_generators_of_that_closed_set(self, cust_relation):
        """Its free generators include ([CC, AC], (01, 908)) and (ZIP, 07974)."""
        result = mine_free_and_closed(cust_relation, min_support=3)
        closed = encode_items(
            cust_relation, {"CC": "01", "AC": "908", "CT": "MH", "ZIP": "07974"}
        )
        generators = {free.items for free in result.closed_to_free[closed]}
        assert encode_items(cust_relation, {"CC": "01", "AC": "908"}) in generators
        assert encode_items(cust_relation, {"ZIP": "07974"}) in generators

    def test_example7_ac_908_to_mh_is_4_frequent_left_reduced(self, cust_relation):
        """(AC -> CT, (908 || MH)) is a 4-frequent left-reduced constant CFD."""
        phi = CFD(("AC",), ("908",), "CT", "MH")
        assert support_count(cust_relation, phi) == 4
        assert is_minimal(cust_relation, phi, k=4)


# ------------------------------------------------------------------------- #
# end-to-end discovery on r0
# ------------------------------------------------------------------------- #
class TestDiscoveryOnCust:
    def test_cfdminer_finds_example_rules(self, cust_relation):
        found = set(CFDMiner(cust_relation, min_support=2).discover())
        assert CFD(("AC",), ("908",), "CT", "MH") in found
        assert CFD(("CC", "AC"), ("44", "131"), "CT", "EDI") in found

    def test_ctane_finds_f1_and_phi0(self, cust_relation):
        found = set(CTane(cust_relation, min_support=2).discover())
        assert cfd_from_fd(("CC", "AC"), "CT") in found
        assert CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD) in found

    def test_fastcfd_finds_f1_and_phi0(self, cust_relation):
        found = set(FastCFD(cust_relation, min_support=2).discover())
        assert cfd_from_fd(("CC", "AC"), "CT") in found
        assert CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD) in found

    def test_all_general_algorithms_find_same_constant_rules(self, cust_relation):
        ctane = {c for c in CTane(cust_relation, 2).discover() if c.is_constant}
        fastcfd = {c for c in FastCFD(cust_relation, 2).discover() if c.is_constant}
        cfdminer = set(CFDMiner(cust_relation, 2).discover())
        assert ctane == cfdminer
        assert fastcfd == cfdminer

    def test_every_discovered_rule_holds_on_r0(self, cust_relation):
        for algorithm in (CTane, FastCFD):
            for cfd in algorithm(cust_relation, 3).discover():
                assert satisfies(cust_relation, cfd)
                assert support_count(cust_relation, cfd) >= 3
