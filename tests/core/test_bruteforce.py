"""Unit tests for the brute-force reference discoverer."""

import pytest

from repro.core.bruteforce import discover_bruteforce
from repro.core.cfd import CFD, cfd_from_fd
from repro.core.minimality import is_minimal
from repro.core.pattern import WILDCARD
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B"],
        [(1, 5), (1, 5), (2, 6), (2, 7)],
    )


class TestBruteforce:
    def test_everything_returned_is_minimal(self, relation):
        for k in (1, 2):
            for cfd in discover_bruteforce(relation, k):
                assert is_minimal(relation, cfd, k=k)

    def test_contains_expected_constant_cfd(self, relation):
        assert CFD(("A",), (1,), "B", 5) in discover_bruteforce(relation, 2)

    def test_contains_expected_variable_cfd(self, relation):
        assert CFD(("A",), (1,), "B", WILDCARD) in discover_bruteforce(relation, 2)

    def test_does_not_contain_violated_fd(self, relation):
        assert cfd_from_fd(("A",), "B") not in discover_bruteforce(relation, 1)

    def test_constant_only_filter(self, relation):
        constant = discover_bruteforce(relation, 1, constant_only=True)
        assert constant
        assert all(cfd.is_constant for cfd in constant)

    def test_variable_only_filter(self, relation):
        variable = discover_bruteforce(relation, 1, variable_only=True)
        assert variable
        assert all(cfd.is_variable for cfd in variable)

    def test_partition_of_classes(self, relation):
        both = discover_bruteforce(relation, 1)
        constant = discover_bruteforce(relation, 1, constant_only=True)
        variable = discover_bruteforce(relation, 1, variable_only=True)
        assert both == constant | variable

    def test_max_lhs_size(self, relation):
        for cfd in discover_bruteforce(relation, 1, max_lhs_size=0):
            assert cfd.lhs == ()

    def test_frequency_filter_reduces_output(self, relation):
        assert len(discover_bruteforce(relation, 2)) <= len(
            discover_bruteforce(relation, 1)
        )
