"""Property-based cross-validation of the discovery algorithms.

For random small relations:

* every CFD emitted by CFDMiner / CTANE / FastCFD / NaiveFast is minimal and
  k-frequent by definition (soundness);
* CFDMiner's output equals the constant part of the brute-force cover;
* every minimal k-frequent CFD (brute force) is either in an algorithm's
  output or implied by it (completeness up to implication — FastCFD omits
  variable CFDs that are subsumed by constant CFDs, see DESIGN.md);
* FastCFD and NaiveFast produce identical covers.
"""

from hypothesis import given, settings, strategies as st

from repro.core.bruteforce import discover_bruteforce
from repro.core.cfdminer import CFDMiner
from repro.core.ctane import CTane
from repro.core.dfd import DFD
from repro.core.fastcfd import FastCFD, NaiveFast
from repro.core.implication import is_implied_by_cover
from repro.core.minimality import is_minimal
from repro.relational.relation import Relation


def small_relations(max_rows: int = 6, n_cols: int = 3, domain: int = 2):
    names = [f"A{i}" for i in range(n_cols)]
    return st.lists(
        st.tuples(*[st.integers(0, domain - 1) for _ in range(n_cols)]),
        min_size=1,
        max_size=max_rows,
    ).map(lambda rows: Relation.from_rows(names, rows))


SUPPORTS = st.integers(min_value=1, max_value=3)


@settings(max_examples=25, deadline=None)
@given(relation=small_relations(), k=SUPPORTS)
def test_all_algorithms_are_sound(relation, k):
    for algorithm in (CFDMiner, CTane, FastCFD, NaiveFast):
        for cfd in algorithm(relation, k).discover():
            assert is_minimal(relation, cfd, k=k), f"{algorithm.__name__}: {cfd}"


@settings(max_examples=25, deadline=None)
@given(relation=small_relations(), k=SUPPORTS)
def test_cfdminer_matches_bruteforce_constants(relation, k):
    expected = discover_bruteforce(relation, k, constant_only=True)
    assert set(CFDMiner(relation, k).discover()) == expected


@settings(max_examples=20, deadline=None)
@given(relation=small_relations(), k=SUPPORTS)
def test_ctane_is_complete_up_to_implication(relation, k):
    cover = set(CTane(relation, k).discover())
    for cfd in discover_bruteforce(relation, k):
        assert is_implied_by_cover(cfd, cover), str(cfd)


@settings(max_examples=20, deadline=None)
@given(relation=small_relations(), k=SUPPORTS)
def test_fastcfd_is_complete_up_to_implication(relation, k):
    cover = set(FastCFD(relation, k).discover())
    for cfd in discover_bruteforce(relation, k):
        assert is_implied_by_cover(cfd, cover), str(cfd)


@settings(max_examples=25, deadline=None)
@given(relation=small_relations(max_rows=7, n_cols=3, domain=3), k=SUPPORTS)
def test_fastcfd_equals_naivefast(relation, k):
    fastcfd = set(FastCFD(relation, k, constant_cfds="inline").discover())
    naivefast = set(NaiveFast(relation, k).discover())
    assert fastcfd == naivefast


@settings(max_examples=20, deadline=None)
@given(relation=small_relations(max_rows=6, n_cols=4, domain=2), k=SUPPORTS)
def test_ctane_and_fastcfd_agree_on_constant_cfds(relation, k):
    ctane = {c for c in CTane(relation, k).discover() if c.is_constant}
    fastcfd = {c for c in FastCFD(relation, k).discover() if c.is_constant}
    assert ctane == fastcfd


@settings(max_examples=25, deadline=None)
@given(
    relation=small_relations(max_rows=7, n_cols=4, domain=2),
    k=SUPPORTS,
    walk_seed=st.integers(0, 3),
)
def test_dfd_equals_fastcfd(relation, k, walk_seed):
    """The random walk confirms exactly FastCFD's cover (FastFD lemma), for
    any walk seed."""
    dfd = set(DFD(relation, k, seed=walk_seed).discover())
    fastcfd = set(FastCFD(relation, k).discover())
    assert dfd == fastcfd
