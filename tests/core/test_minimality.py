"""Unit tests for repro.core.minimality (left-reducedness, minimality, covers)."""

import pytest

from repro.core.cfd import CFD, cfd_from_fd
from repro.core.minimality import (
    assert_cover_properties,
    canonical_cover,
    filter_minimal,
    is_left_reduced,
    is_minimal,
    is_trivial,
)
from repro.core.pattern import WILDCARD
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    # A -> B holds only when A = 1; C is irrelevant padding.
    return Relation.from_rows(
        ["A", "B", "C"],
        [
            (1, 5, 0),
            (1, 5, 1),
            (2, 6, 0),
            (2, 7, 1),
            (2, 7, 0),
        ],
    )


class TestTrivial:
    def test_trivial_cfd(self):
        assert is_trivial(CFD(("A",), (1,), "A", 1))

    def test_non_trivial_cfd(self):
        assert not is_trivial(CFD(("A",), (1,), "B", 2))


class TestLeftReduced:
    def test_minimal_constant_cfd(self, relation):
        assert is_left_reduced(relation, CFD(("A",), (1,), "B", 5))

    def test_constant_cfd_with_redundant_attribute(self, relation):
        phi = CFD(("A", "C"), (1, 0), "B", 5)
        assert not is_left_reduced(relation, phi)

    def test_variable_cfd_with_upgradeable_constant(self):
        # B -> C holds globally, so the pattern (1, _) is not most general.
        r = Relation.from_rows(
            ["A", "B", "C"],
            [(1, "p", "u"), (1, "p", "u"), (2, "q", "v")],
        )
        phi = CFD(("A", "B"), (1, WILDCARD), "C", WILDCARD)
        assert not is_left_reduced(r, phi)
        assert is_left_reduced(r, cfd_from_fd(("B",), "C"))

    def test_variable_cfd_minimal(self, relation):
        phi = CFD(("A",), (1,), "B", WILDCARD)
        assert is_left_reduced(relation, phi)


class TestIsMinimal:
    def test_minimal_constant(self, relation):
        assert is_minimal(relation, CFD(("A",), (1,), "B", 5))

    def test_minimal_variable(self, relation):
        assert is_minimal(relation, CFD(("A",), (1,), "B", WILDCARD))

    def test_not_satisfied_not_minimal(self, relation):
        assert not is_minimal(relation, cfd_from_fd(("A",), "B"))

    def test_trivial_not_minimal(self, relation):
        assert not is_minimal(relation, CFD(("A",), (1,), "A", 1))

    def test_infrequent_not_minimal(self, relation):
        assert is_minimal(relation, CFD(("A",), (1,), "B", 5), k=2)
        assert not is_minimal(relation, CFD(("A",), (1,), "B", 5), k=3)

    def test_redundant_attribute_not_minimal(self, relation):
        assert not is_minimal(relation, CFD(("A", "C"), (1, 0), "B", 5))


class TestCoverHelpers:
    def test_filter_minimal(self, relation):
        candidates = [
            CFD(("A",), (1,), "B", 5),
            CFD(("A", "C"), (1, 0), "B", 5),
            cfd_from_fd(("A",), "B"),
        ]
        assert filter_minimal(relation, candidates) == [CFD(("A",), (1,), "B", 5)]

    def test_canonical_cover_deduplicates(self, relation):
        phi = CFD(("A",), (1,), "B", 5)
        assert canonical_cover(relation, [phi, phi]) == {phi}

    def test_assert_cover_properties_passes(self, relation):
        assert_cover_properties(relation, [CFD(("A",), (1,), "B", 5)], k=2)

    def test_assert_cover_properties_raises(self, relation):
        with pytest.raises(AssertionError):
            assert_cover_properties(relation, [cfd_from_fd(("A",), "B")])


class TestPaperExample5:
    """Example 5: the fi1 patterns of f1 are not minimal because (_, _ || _) holds."""

    def test_specialised_patterns_of_a_holding_fd_are_not_minimal(self):
        r = Relation.from_rows(
            ["CC", "AC", "CT"],
            [
                ("01", "908", "MH"),
                ("01", "908", "MH"),
                ("44", "131", "EDI"),
                ("44", "131", "EDI"),
                # breaks both AC -> CT and CC -> CT, keeping [CC, AC] -> CT minimal
                ("01", "131", "NYC"),
            ],
        )
        fd_cfd = cfd_from_fd(("CC", "AC"), "CT")
        assert is_minimal(r, fd_cfd)
        f11 = CFD(("CC", "AC"), ("01", WILDCARD), "CT", WILDCARD)
        f31 = CFD(("CC", "AC"), (WILDCARD, "908"), "CT", WILDCARD)
        assert not is_minimal(r, f11)
        assert not is_minimal(r, f31)
