"""Unit tests for pattern-tableau CFDs (Section 2.3 of the paper)."""

import pytest

from repro.core.cfd import CFD, cfd_from_fd
from repro.core.fastcfd import FastCFD
from repro.core.pattern import WILDCARD, PatternTuple
from repro.core.tableau import (
    TableauCFD,
    flatten_tableaux,
    group_into_tableaux,
    tableau_satisfies,
    tableau_support,
)
from repro.core.validation import satisfies
from repro.exceptions import DependencyError
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["CC", "AC", "CT"],
        [
            ("01", "908", "MH"),
            ("01", "908", "MH"),
            ("01", "212", "NYC"),
            ("44", "131", "EDI"),
            ("44", "131", "EDI"),
        ],
    )


@pytest.fixture
def tableau_cfd() -> TableauCFD:
    return TableauCFD(
        lhs=("CC", "AC"),
        rhs="CT",
        tableau=(
            PatternTuple(("AC", "CC", "CT"), ("908", "01", "MH")),
            PatternTuple(("AC", "CC", "CT"), ("131", "44", "EDI")),
        ),
    )


class TestTableauCFD:
    def test_lhs_sorted_and_embedded_fd(self, tableau_cfd):
        assert tableau_cfd.lhs == ("AC", "CC")
        assert tableau_cfd.embedded_fd == (("AC", "CC"), "CT")

    def test_pattern_must_range_over_all_attributes(self):
        with pytest.raises(DependencyError):
            TableauCFD(
                lhs=("A",),
                rhs="B",
                tableau=(PatternTuple(("A",), ("x",)),),
            )

    def test_to_cfds_round_trip(self, tableau_cfd):
        cfds = tableau_cfd.to_cfds()
        assert len(cfds) == 2
        assert CFD(("CC", "AC"), ("01", "908"), "CT", "MH") in cfds

    def test_len_and_str(self, tableau_cfd):
        assert len(tableau_cfd) == 2
        text = str(tableau_cfd)
        assert "AC, CC" in text and "||" in text


class TestTableauSemantics:
    def test_satisfied_tableau(self, relation, tableau_cfd):
        assert tableau_satisfies(relation, tableau_cfd)

    def test_violated_tableau(self, relation):
        bad = TableauCFD(
            lhs=("AC",),
            rhs="CT",
            tableau=(PatternTuple(("AC", "CT"), ("908", "EDI")),),
        )
        assert not tableau_satisfies(relation, bad)

    def test_support_is_minimum_over_rows(self, relation, tableau_cfd):
        # (01, 908 || MH) has support 2; (44, 131 || EDI) has support 2.
        assert tableau_support(relation, tableau_cfd) == 2

    def test_support_of_empty_tableau(self, relation):
        empty = TableauCFD(lhs=("AC",), rhs="CT", tableau=())
        assert tableau_support(relation, empty) == 0

    def test_equivalence_with_single_pattern_cfds(self, relation, tableau_cfd):
        assert tableau_satisfies(relation, tableau_cfd) == all(
            satisfies(relation, cfd) for cfd in tableau_cfd.to_cfds()
        )


class TestGrouping:
    def test_group_by_embedded_fd(self):
        cfds = [
            CFD(("AC",), ("908",), "CT", "MH"),
            CFD(("AC",), ("212",), "CT", "NYC"),
            cfd_from_fd(("CC", "AC"), "CT"),
        ]
        tableaux = group_into_tableaux(cfds)
        assert len(tableaux) == 2
        sizes = {t.embedded_fd: len(t) for t in tableaux}
        assert sizes[(("AC",), "CT")] == 2
        assert sizes[(("AC", "CC"), "CT")] == 1

    def test_flatten_is_inverse(self):
        cfds = [
            CFD(("AC",), ("908",), "CT", "MH"),
            CFD(("AC",), ("212",), "CT", "NYC"),
            cfd_from_fd(("CC", "AC"), "CT"),
        ]
        assert set(flatten_tableaux(group_into_tableaux(cfds))) == set(cfds)

    def test_grouping_discovered_cover_preserves_satisfaction(self, relation):
        cover = FastCFD(relation, min_support=2).discover()
        tableaux = group_into_tableaux(cover)
        assert tableaux
        for tableau_cfd in tableaux:
            assert tableau_satisfies(relation, tableau_cfd)
        assert set(flatten_tableaux(tableaux)) == set(cover)

    def test_grouping_is_deterministic(self):
        cfds = [
            CFD(("AC",), ("212",), "CT", "NYC"),
            CFD(("AC",), ("908",), "CT", "MH"),
        ]
        assert group_into_tableaux(cfds) == group_into_tableaux(list(reversed(cfds)))
