"""Unit tests for CFDMiner (constant CFD discovery, Section 3)."""

import pytest

from repro.core.bruteforce import discover_bruteforce
from repro.core.cfd import CFD
from repro.core.cfdminer import CFDMiner, discover_constant_cfds
from repro.core.minimality import is_minimal
from repro.core.validation import support_count
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["AC", "CT", "ST"],
        [
            ("908", "MH", "NJ"),
            ("908", "MH", "NJ"),
            ("908", "MH", "NJ"),
            ("212", "NYC", "NY"),
            ("212", "NYC", "NY"),
            ("201", "HOB", "NJ"),
        ],
    )


class TestCFDMinerBasics:
    def test_invalid_support_rejected(self, relation):
        with pytest.raises(DiscoveryError):
            CFDMiner(relation, min_support=0)

    def test_only_constant_cfds_are_returned(self, relation):
        for cfd in CFDMiner(relation, min_support=2).discover():
            assert cfd.is_constant

    def test_known_rules_found(self, relation):
        found = {str(c) for c in CFDMiner(relation, min_support=2).discover()}
        assert "([AC] -> CT, (908 || MH))" in found
        assert "([AC] -> CT, (212 || NYC))" in found
        assert "([CT] -> AC, (MH || 908))" in found

    def test_left_reduced_rule_preferred(self, relation):
        found = {str(c) for c in CFDMiner(relation, min_support=2).discover()}
        # ([AC, ST] -> CT, (908, NJ || MH)) is implied by the smaller rule and
        # must not be reported.
        assert "([AC, ST] -> CT, (908, NJ || MH))" not in found

    def test_every_output_is_minimal_and_frequent(self, relation):
        for k in (1, 2, 3):
            for cfd in CFDMiner(relation, min_support=k).discover():
                assert is_minimal(relation, cfd, k=k)
                assert support_count(relation, cfd) >= k

    def test_no_duplicates(self, relation):
        found = CFDMiner(relation, min_support=1).discover()
        assert len(found) == len(set(found))

    def test_matches_bruteforce_constants(self, relation):
        for k in (1, 2, 3):
            mined = set(CFDMiner(relation, min_support=k).discover())
            expected = discover_bruteforce(relation, k, constant_only=True)
            assert mined == expected

    def test_support_threshold_monotone(self, relation):
        counts = [
            len(CFDMiner(relation, min_support=k).discover()) for k in (1, 2, 3, 4)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_max_lhs_size_limits_lhs(self, relation):
        for cfd in CFDMiner(relation, min_support=1, max_lhs_size=1).discover():
            assert len(cfd.lhs) <= 1

    def test_wrapper(self, relation):
        assert set(discover_constant_cfds(relation, 2)) == set(
            CFDMiner(relation, 2).discover()
        )

    def test_mining_result_is_cached(self, relation):
        miner = CFDMiner(relation, min_support=2)
        assert miner.mining_result is miner.mining_result

    def test_properties(self, relation):
        miner = CFDMiner(relation, min_support=3)
        assert miner.relation is relation
        assert miner.min_support == 3


class TestEdgeCases:
    def test_constant_column_yields_empty_lhs_rule(self):
        r = Relation.from_rows(["A", "B"], [(1, "k"), (2, "k"), (3, "k")])
        found = CFDMiner(r, min_support=1).discover()
        assert CFD((), (), "B", "k") in found

    def test_unique_columns_yield_no_frequent_rules(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (2, "y"), (3, "z")])
        assert CFDMiner(r, min_support=2).discover() == []

    def test_single_tuple_relation(self):
        r = Relation.from_rows(["A", "B"], [(1, "x")])
        found = CFDMiner(r, min_support=1).discover()
        # every column is constant on a one-tuple relation
        assert CFD((), (), "A", 1) in found
        assert CFD((), (), "B", "x") in found

    def test_support_larger_than_relation(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, "x")])
        assert CFDMiner(r, min_support=5).discover() == []

    def test_two_attribute_equivalence(self):
        # A and B are in bijection: rules both ways, per value pair.
        r = Relation.from_rows(
            ["A", "B"], [(1, "x"), (1, "x"), (2, "y"), (2, "y")]
        )
        found = set(CFDMiner(r, min_support=2).discover())
        assert CFD(("A",), (1,), "B", "x") in found
        assert CFD(("B",), ("x",), "A", 1) in found
        assert CFD(("A",), (2,), "B", "y") in found
        assert CFD(("B",), ("y",), "A", 2) in found
