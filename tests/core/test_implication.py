"""Unit tests for repro.core.implication."""

import pytest

from repro.core.cfd import CFD, cfd_from_fd
from repro.core.implication import (
    covers_equivalent_on,
    implies_constant,
    is_implied_by_cover,
    minimise_constant_cover,
    variable_cfd_subsumed_by_constants,
)
from repro.core.pattern import WILDCARD
from repro.relational.relation import Relation


class TestImpliesConstant:
    def test_membership_implies(self):
        phi = CFD(("A",), (1,), "B", 2)
        assert implies_constant([phi], phi)

    def test_transitive_chase(self):
        # A=1 -> B=2 and B=2 -> C=3 imply A=1 -> C=3.
        premises = [CFD(("A",), (1,), "B", 2), CFD(("B",), (2,), "C", 3)]
        conclusion = CFD(("A",), (1,), "C", 3)
        assert implies_constant(premises, conclusion)

    def test_non_implication(self):
        premises = [CFD(("A",), (1,), "B", 2)]
        assert not implies_constant(premises, CFD(("A",), (2,), "B", 2))

    def test_weaker_lhs_implies_stronger_lhs(self):
        premises = [CFD(("A",), (1,), "C", 3)]
        conclusion = CFD(("A", "B"), (1, 9), "C", 3)
        assert implies_constant(premises, conclusion)

    def test_contradictory_premises_imply_vacuously(self):
        premises = [CFD(("A",), (1,), "B", 2), CFD(("A",), (1,), "B", 3)]
        assert implies_constant(premises, CFD(("A",), (1,), "C", 99))

    def test_variable_conclusion_rejected(self):
        with pytest.raises(ValueError):
            implies_constant([], cfd_from_fd(("A",), "B"))


class TestVariableSubsumption:
    def test_subsumed_by_matching_constant_rule(self):
        variable = CFD(("A", "B"), (1, WILDCARD), "C", WILDCARD)
        constant = CFD(("A",), (1,), "C", 7)
        assert variable_cfd_subsumed_by_constants(variable, [constant])

    def test_not_subsumed_when_rhs_differs(self):
        variable = CFD(("A",), (1,), "C", WILDCARD)
        constant = CFD(("A",), (1,), "D", 7)
        assert not variable_cfd_subsumed_by_constants(variable, [constant])

    def test_not_subsumed_when_pattern_not_contained(self):
        variable = CFD(("A",), (1,), "C", WILDCARD)
        constant = CFD(("A", "B"), (1, 2), "C", 7)
        assert not variable_cfd_subsumed_by_constants(variable, [constant])

    def test_constant_cfd_never_subsumed_by_this_rule(self):
        constant = CFD(("A",), (1,), "C", 7)
        assert not variable_cfd_subsumed_by_constants(constant, [constant])


class TestIsImpliedByCover:
    def test_member_is_implied(self):
        phi = cfd_from_fd(("A",), "B")
        assert is_implied_by_cover(phi, [phi])

    def test_constant_implication_path(self):
        premises = [CFD(("A",), (1,), "B", 2), CFD(("B",), (2,), "C", 3)]
        assert is_implied_by_cover(CFD(("A",), (1,), "C", 3), premises)

    def test_unprovable_returns_false(self):
        assert not is_implied_by_cover(cfd_from_fd(("A",), "B"), [])


class TestMinimiseConstantCover:
    def test_removes_implied_rule(self):
        rules = [
            CFD(("A",), (1,), "B", 2),
            CFD(("B",), (2,), "C", 3),
            CFD(("A",), (1,), "C", 3),  # implied by the other two
        ]
        minimised = minimise_constant_cover(rules)
        assert CFD(("A",), (1,), "C", 3) not in minimised
        assert len(minimised) == 2

    def test_keeps_variable_rules_untouched(self):
        rules = [cfd_from_fd(("A",), "B"), CFD(("A",), (1,), "B", 2)]
        minimised = minimise_constant_cover(rules)
        assert cfd_from_fd(("A",), "B") in minimised

    def test_idempotent(self):
        rules = [CFD(("A",), (1,), "B", 2), CFD(("B",), (2,), "C", 3)]
        once = minimise_constant_cover(rules)
        assert minimise_constant_cover(once) == once


class TestCoversEquivalentOn:
    def test_true_when_both_covers_hold(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (1, 2), (3, 4)])
        first = [CFD(("A",), (1,), "B", 2)]
        second = [cfd_from_fd(("A",), "B")]
        assert covers_equivalent_on(r, first, second)

    def test_false_when_a_cover_is_violated(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (1, 3)])
        assert not covers_equivalent_on(r, [cfd_from_fd(("A",), "B")], [])
