"""Unit tests for repro.core.pattern (pattern values and the ≼ order)."""

import pickle

import pytest

from repro.core.pattern import (
    WILDCARD,
    PatternTuple,
    is_wildcard,
    pattern_leq,
    pattern_str,
    value_matches,
)
from repro.exceptions import PatternError


class TestWildcard:
    def test_singleton(self):
        from repro.core.pattern import _Wildcard

        assert _Wildcard() is WILDCARD

    def test_repr_and_str(self):
        assert repr(WILDCARD) == "_"
        assert str(WILDCARD) == "_"

    def test_equality_only_with_wildcards(self):
        assert WILDCARD == WILDCARD
        assert WILDCARD != "_"
        assert WILDCARD != 0

    def test_hashable(self):
        assert len({WILDCARD, WILDCARD}) == 1

    def test_pickle_round_trip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(WILDCARD)) == WILDCARD

    def test_is_wildcard(self):
        assert is_wildcard(WILDCARD)
        assert not is_wildcard("_")
        assert not is_wildcard(None)


class TestValueMatching:
    def test_value_matches_wildcard(self):
        assert value_matches("anything", WILDCARD)

    def test_value_matches_equal_constant(self):
        assert value_matches("x", "x")
        assert not value_matches("x", "y")

    def test_pattern_leq_reflexive(self):
        assert pattern_leq("a", "a")
        assert pattern_leq(WILDCARD, WILDCARD)

    def test_pattern_leq_constant_below_wildcard(self):
        assert pattern_leq("a", WILDCARD)
        assert not pattern_leq(WILDCARD, "a")

    def test_pattern_leq_different_constants(self):
        assert not pattern_leq("a", "b")

    def test_pattern_str(self):
        assert pattern_str(WILDCARD) == "_"
        assert pattern_str(42) == "42"


class TestPatternTuple:
    def test_construction_and_access(self):
        tp = PatternTuple(("CC", "AC"), ("01", WILDCARD))
        assert tp["CC"] == "01"
        assert is_wildcard(tp["AC"])
        assert len(tp) == 2
        assert "CC" in tp and "ZZ" not in tp

    def test_length_mismatch_rejected(self):
        with pytest.raises(PatternError):
            PatternTuple(("A",), ("x", "y"))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(PatternError):
            PatternTuple(("A", "A"), ("x", "y"))

    def test_unknown_attribute_access(self):
        with pytest.raises(PatternError):
            PatternTuple(("A",), ("x",))["B"]

    def test_from_mapping_and_as_dict(self):
        tp = PatternTuple.from_mapping({"A": 1, "B": WILDCARD})
        assert tp.as_dict() == {"A": 1, "B": WILDCARD}

    def test_all_wildcards(self):
        tp = PatternTuple.all_wildcards(["A", "B"])
        assert tp.is_all_wildcards
        assert not tp.is_constant

    def test_classification(self):
        assert PatternTuple(("A",), ("x",)).is_constant
        assert PatternTuple(("A", "B"), ("x", WILDCARD)).constant_attributes == ("A",)
        assert PatternTuple(("A", "B"), ("x", WILDCARD)).wildcard_attributes == ("B",)

    def test_restrict(self):
        tp = PatternTuple(("A", "B", "C"), (1, 2, 3))
        assert tp.restrict(["C", "A"]).values == (3, 1)

    def test_restrict_unknown_attribute(self):
        with pytest.raises(PatternError):
            PatternTuple(("A",), (1,)).restrict(["B"])

    def test_constant_part(self):
        tp = PatternTuple(("A", "B"), (1, WILDCARD))
        assert tp.constant_part().attributes == ("A",)

    def test_with_value_and_generalise(self):
        tp = PatternTuple(("A", "B"), (1, 2))
        assert tp.with_value("B", 9)["B"] == 9
        assert is_wildcard(tp.generalise("A")["A"])

    def test_with_value_unknown_attribute(self):
        with pytest.raises(PatternError):
            PatternTuple(("A",), (1,)).with_value("B", 2)

    def test_matches_row(self):
        tp = PatternTuple(("A", "B"), (1, WILDCARD))
        assert tp.matches_row({"A": 1, "B": 99})
        assert not tp.matches_row({"A": 2, "B": 99})

    def test_leq_componentwise(self):
        specific = PatternTuple(("A", "B"), (1, 2))
        general = PatternTuple(("A", "B"), (1, WILDCARD))
        assert specific.leq(general)
        assert not general.leq(specific)
        assert general.strictly_more_general_than(specific)

    def test_leq_requires_same_attributes(self):
        with pytest.raises(PatternError):
            PatternTuple(("A",), (1,)).leq(PatternTuple(("B",), (1,)))

    def test_generalisations_upgrade_one_constant_each(self):
        tp = PatternTuple(("A", "B"), (1, 2))
        generalisations = list(tp.generalisations())
        assert len(generalisations) == 2
        for generalisation in generalisations:
            assert generalisation.strictly_more_general_than(tp) or tp.leq(generalisation)

    def test_equality_and_hash(self):
        assert PatternTuple(("A",), (1,)) == PatternTuple(("A",), (1,))
        assert PatternTuple(("A",), (1,)) != PatternTuple(("A",), (2,))
        assert hash(PatternTuple(("A",), (1,))) == hash(PatternTuple(("A",), (1,)))

    def test_str_and_repr(self):
        tp = PatternTuple(("A", "B"), (1, WILDCARD))
        assert str(tp) == "(1, _)"
        assert "A=1" in repr(tp)

    def test_paper_example_order(self):
        """(44, "EH4 1DT", "EDI") ≼ (44, _, _) but not vice versa (Section 2.1.2)."""
        specific = PatternTuple(("CC", "ZIP", "CT"), ("44", "EH4 1DT", "EDI"))
        general = PatternTuple(("CC", "ZIP", "CT"), ("44", WILDCARD, WILDCARD))
        assert specific.leq(general)
        assert not general.leq(specific)
        other = PatternTuple(("CC", "ZIP", "CT"), ("01", "07974", "Tree Ave."))
        assert not other.leq(general)
