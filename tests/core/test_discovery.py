"""Unit tests for the unified discovery front-end."""

import pytest

from repro.core.discovery import (
    ALGORITHMS,
    DiscoveryResult,
    choose_algorithm,
    discover,
)
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B", "C"],
        [
            (1, 5, "p"),
            (1, 5, "q"),
            (2, 6, "p"),
            (2, 6, "q"),
        ],
    )


class TestDiscoverFrontend:
    def test_unknown_algorithm_rejected(self, relation):
        with pytest.raises(DiscoveryError):
            discover(relation, algorithm="nope")

    @pytest.mark.parametrize("algorithm", ["cfdminer", "ctane", "fastcfd", "naivefast"])
    def test_each_algorithm_runs(self, relation, algorithm):
        result = discover(relation, 2, algorithm=algorithm)
        assert result.algorithm == algorithm
        assert result.relation_size == 4
        assert result.relation_arity == 3
        assert result.elapsed_seconds >= 0
        assert result.n_cfds == len(result.cfds)

    def test_cfdminer_returns_constant_only(self, relation):
        result = discover(relation, 2, algorithm="cfdminer")
        assert result.variable_cfds == []
        assert result.constant_cfds == result.cfds

    def test_counts_sum(self, relation):
        result = discover(relation, 2, algorithm="fastcfd")
        counts = result.counts()
        assert counts["constant"] + counts["variable"] == counts["total"]

    def test_summary_mentions_algorithm(self, relation):
        assert "fastcfd" in discover(relation, 2, algorithm="fastcfd").summary()

    def test_ctane_extra_statistics(self, relation):
        result = discover(relation, 2, algorithm="ctane")
        assert result.extra["candidates_checked"] > 0

    def test_options_forwarded(self, relation):
        result = discover(relation, 2, algorithm="fastcfd", constant_cfds="skip")
        assert all(cfd.is_variable for cfd in result.cfds)

    def test_auto_runs(self, relation):
        result = discover(relation, 2, algorithm="auto")
        assert result.algorithm in ALGORITHMS

    def test_max_lhs_size_forwarded(self, relation):
        result = discover(relation, 1, algorithm="ctane", max_lhs_size=1)
        assert all(len(cfd.lhs) <= 1 for cfd in result.cfds)


class TestChooseAlgorithm:
    def test_wide_relation_prefers_fastcfd(self):
        wide = Relation.from_rows(
            [f"A{i}" for i in range(12)], [tuple(range(12)), tuple(range(12))]
        )
        assert choose_algorithm(wide, 2) == "fastcfd"

    def test_high_support_prefers_ctane(self, relation):
        assert choose_algorithm(relation, 2) == "ctane"  # k/|r| = 0.5

    def test_low_support_prefers_fastcfd(self):
        tall = Relation.from_rows(["A", "B"], [(i % 5, i % 3) for i in range(100)])
        assert choose_algorithm(tall, 2) == "fastcfd"
