"""Tests for the DFD random-walk engine.

The load-bearing properties:

* **oracle equality** — on seeded wide relations of ≤62 columns the walk
  produces exactly the canonical cover CTANE (and FastCFD) produce;
* **width-unboundedness** — a 120-column relation, far beyond both CTANE's
  practical reach and the int64 bitmask limit, is served;
* **determinism** — the cover is byte-identical for the same walk seed
  (and, stronger, for *every* walk seed: only the traversal statistics
  vary), regardless of test execution order (``pytest -p randomly``).
"""

import pytest

from repro.core.ctane import CTane
from repro.core.dfd import DFD, discover_cfds_dfd
from repro.core.fastcfd import FastCFD
from repro.datagen.wide import WideRelationGenerator


def canonical(cfds):
    """A byte-comparable canonical rendering of a cover."""
    return sorted(repr(cfd) for cfd in cfds)


class TestOracleEquality:
    """dfd == ctane == fastcfd on seeded 30-column relations."""

    @pytest.mark.parametrize("data_seed", [0, 1, 2])
    def test_cover_matches_ctane_and_fastcfd(self, data_seed):
        gen = WideRelationGenerator(
            n_cols=30, n_rows=96, seed=data_seed, n_fds=3, n_cfds=2
        )
        relation = gen.generate()
        k = gen.min_support
        dfd = canonical(DFD(relation, k, seed=0).discover())
        ctane = canonical(CTane(relation, k).discover())
        fastcfd = canonical(FastCFD(relation, k).discover())
        assert dfd == ctane
        assert dfd == fastcfd
        assert len(dfd) > 0

    def test_embedded_dependencies_are_discovered(self):
        gen = WideRelationGenerator(
            n_cols=30, n_rows=96, seed=0, n_fds=3, n_cfds=2
        )
        relation = gen.generate()
        cover = DFD(relation, gen.min_support, seed=0).discover()
        found = {
            (frozenset(cfd.lhs), cfd.rhs) for cfd in cover if cfd.is_pure_fd
        }
        for lhs, rhs in gen.embedded_fds():
            assert (frozenset(lhs), rhs) in found, f"embedded FD {lhs} -> {rhs}"


class TestWidthUnbounded:
    def test_120_column_relation_is_served(self):
        """Far beyond the bitmask limit — only the walk engine answers this
        in test time (CTANE's levelwise lattice is infeasible at arity 120).
        """
        gen = WideRelationGenerator(
            n_cols=120, n_rows=96, seed=0, n_fds=4, n_cfds=0
        )
        relation = gen.generate()
        engine = DFD(relation, gen.min_support, seed=0)
        cover = engine.discover()
        assert len(cover) > 0
        assert engine.partitions_computed > 0
        found = {
            (frozenset(cfd.lhs), cfd.rhs) for cfd in cover if cfd.is_pure_fd
        }
        for lhs, rhs in gen.embedded_fds():
            assert (frozenset(lhs), rhs) in found


class TestDeterminism:
    """Byte-identical covers under ``pytest -p randomly`` reordering."""

    def test_same_seed_same_cover_and_stats(self):
        gen = WideRelationGenerator(
            n_cols=20, n_rows=48, seed=3, n_fds=2, n_cfds=2
        )
        relation = gen.generate()
        k = gen.min_support
        first = DFD(relation, k, seed=7)
        second = DFD(relation, k, seed=7)
        assert canonical(first.discover()) == canonical(second.discover())
        assert first.partitions_computed == second.partitions_computed
        assert first.restarts == second.restarts

    def test_cover_is_seed_independent(self):
        gen = WideRelationGenerator(
            n_cols=20, n_rows=48, seed=3, n_fds=2, n_cfds=2
        )
        relation = gen.generate()
        k = gen.min_support
        covers = {
            walk_seed: canonical(DFD(relation, k, seed=walk_seed).discover())
            for walk_seed in (0, 1, 99)
        }
        assert covers[0] == covers[1] == covers[99]

    def test_wrapper_matches_engine(self):
        gen = WideRelationGenerator(n_cols=12, n_rows=24, seed=0, n_fds=1)
        relation = gen.generate()
        k = gen.min_support
        assert canonical(discover_cfds_dfd(relation, k, seed=5)) == canonical(
            DFD(relation, k, seed=5).discover()
        )


class TestWalkStats:
    def test_counters_populate(self):
        gen = WideRelationGenerator(n_cols=12, n_rows=24, seed=0, n_fds=1)
        relation = gen.generate()
        engine = DFD(relation, gen.min_support, seed=0)
        engine.discover()
        assert engine.nodes_visited > 0
        assert engine.partitions_computed > 0
        assert engine.restarts > 0
        assert engine.candidates_checked >= engine.partitions_computed
