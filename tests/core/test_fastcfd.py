"""Unit tests for FastCFD and NaiveFast (depth-first discovery, Section 5)."""

import pytest

from repro.core.bruteforce import discover_bruteforce
from repro.core.cfd import CFD, cfd_from_fd
from repro.core.fastcfd import (
    ClosedSetDifferenceSets,
    FastCFD,
    NaiveFast,
    PartitionDifferenceSets,
    discover_cfds_fastcfd,
)
from repro.core.implication import is_implied_by_cover
from repro.core.minimality import is_minimal
from repro.core.pattern import WILDCARD
from repro.core.validation import support_count
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows(
        ["A", "B", "C", "D"],
        [
            (1, 5, "p", "k"),
            (1, 5, "q", "k"),
            (2, 6, "r", "k"),
            (2, 7, "s", "k"),
            (2, 7, "s", "k"),
        ],
    )


class TestFastCFDBasics:
    def test_invalid_support_rejected(self, relation):
        with pytest.raises(DiscoveryError):
            FastCFD(relation, min_support=0)

    def test_invalid_constant_mode_rejected(self, relation):
        with pytest.raises(DiscoveryError):
            FastCFD(relation, constant_cfds="bogus")

    def test_invalid_provider_rejected(self, relation):
        with pytest.raises(DiscoveryError):
            FastCFD(relation, difference_sets="bogus")

    def test_finds_conditional_constant_rule(self, relation):
        found = set(FastCFD(relation, 2).discover())
        assert CFD(("A",), (1,), "B", 5) in found

    def test_finds_global_fd(self, relation):
        found = set(FastCFD(relation, 1).discover())
        assert cfd_from_fd(("C",), "B") in found

    def test_violated_fd_absent(self, relation):
        assert cfd_from_fd(("A",), "B") not in set(FastCFD(relation, 1).discover())

    def test_every_output_is_minimal_and_frequent(self, relation):
        for k in (1, 2, 3):
            for cfd in FastCFD(relation, k).discover():
                assert is_minimal(relation, cfd, k=k), str(cfd)
                assert support_count(relation, cfd) >= k

    def test_no_duplicates(self, relation):
        found = FastCFD(relation, 1).discover()
        assert len(found) == len(set(found))

    def test_output_subset_of_bruteforce(self, relation):
        for k in (1, 2):
            assert set(FastCFD(relation, k).discover()) <= discover_bruteforce(relation, k)

    def test_bruteforce_cover_is_implied(self, relation):
        """Completeness up to implication (see DESIGN.md)."""
        for k in (1, 2):
            cover = set(FastCFD(relation, k).discover())
            for cfd in discover_bruteforce(relation, k):
                assert is_implied_by_cover(cfd, cover), str(cfd)

    def test_wrapper(self, relation):
        assert set(discover_cfds_fastcfd(relation, 2)) == set(
            FastCFD(relation, 2).discover()
        )


class TestProvidersAndModes:
    def test_naivefast_equals_fastcfd(self, relation):
        for k in (1, 2):
            assert set(NaiveFast(relation, k).discover()) == set(
                FastCFD(relation, k, constant_cfds="inline").discover()
            )

    def test_provider_instances_accepted(self, relation):
        provider = PartitionDifferenceSets(relation)
        found = set(FastCFD(relation, 2, difference_sets=provider).discover())
        assert found == set(FastCFD(relation, 2).discover())

    def test_closed_and_partition_providers_agree(self, relation):
        closed = ClosedSetDifferenceSets(relation)
        partition = PartitionDifferenceSets(relation)
        for rhs in range(relation.arity):
            for items in [frozenset(), frozenset({(0, 0)}), frozenset({(3, 0)})]:
                assert closed.minimal_difference_sets(rhs, items) == (
                    partition.minimal_difference_sets(rhs, items)
                )

    def test_constant_mode_inline_equals_cfdminer_delegation(self, relation):
        inline = set(FastCFD(relation, 2, constant_cfds="inline").discover())
        delegated = set(FastCFD(relation, 2, constant_cfds="cfdminer").discover())
        assert inline == delegated

    def test_constant_mode_skip_returns_variable_only(self, relation):
        found = FastCFD(relation, 2, constant_cfds="skip").discover()
        assert found
        assert all(cfd.is_variable for cfd in found)

    def test_dynamic_reordering_does_not_change_output(self, relation):
        with_reordering = set(FastCFD(relation, 2, dynamic_reordering=True).discover())
        without = set(FastCFD(relation, 2, dynamic_reordering=False).discover())
        assert with_reordering == without

    def test_max_lhs_size_caps_constant_patterns(self, relation):
        for cfd in FastCFD(relation, 1, max_lhs_size=1).discover():
            assert len(cfd.constant_lhs_attributes) <= 1


class TestFastCFDEdgeCases:
    def test_single_tuple_relation(self):
        r = Relation.from_rows(["A", "B"], [(1, "x")])
        found = set(FastCFD(r, 1).discover())
        assert CFD((), (), "A", 1) in found
        assert CFD((), (), "B", "x") in found

    def test_no_frequent_patterns(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (2, "y"), (3, "z")])
        found = set(FastCFD(r, 2).discover())
        assert all(support_count(r, cfd) >= 2 for cfd in found)

    def test_key_column(self):
        r = Relation.from_rows(
            ["K", "V"], [(1, "a"), (2, "a"), (3, "b"), (4, "b")]
        )
        found = set(FastCFD(r, 1).discover())
        assert cfd_from_fd(("K",), "V") in found

    def test_constant_column(self):
        r = Relation.from_rows(["A", "B"], [(1, "k"), (2, "k"), (3, "k")])
        assert CFD((), (), "B", "k") in set(FastCFD(r, 1).discover())
