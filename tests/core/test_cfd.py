"""Unit tests for repro.core.cfd (the CFD value object)."""

import pytest

from repro.core.cfd import (
    CFD,
    ConstantCFD,
    VariableCFD,
    cfd_from_fd,
    normalise_constant_cfd,
)
from repro.core.pattern import WILDCARD, PatternTuple, is_wildcard
from repro.exceptions import DependencyError


class TestConstruction:
    def test_basic_fields(self):
        phi = CFD(("CC", "AC"), ("01", "908"), "CT", "MH")
        assert phi.rhs == "CT"
        assert phi.rhs_pattern == "MH"
        assert set(phi.lhs) == {"CC", "AC"}

    def test_lhs_canonicalised_by_name(self):
        phi = CFD(("CC", "AC"), ("01", "908"), "CT", "MH")
        assert phi.lhs == ("AC", "CC")
        assert phi.lhs_pattern == ("908", "01")

    def test_equality_is_order_insensitive(self):
        first = CFD(("CC", "AC"), ("01", "908"), "CT", "MH")
        second = CFD(("AC", "CC"), ("908", "01"), "CT", "MH")
        assert first == second
        assert hash(first) == hash(second)

    def test_mismatched_pattern_length(self):
        with pytest.raises(DependencyError):
            CFD(("A", "B"), ("x",), "C", "y")

    def test_duplicate_lhs_attributes(self):
        with pytest.raises(DependencyError):
            CFD(("A", "A"), ("x", "y"), "C", "z")

    def test_invalid_rhs(self):
        with pytest.raises(DependencyError):
            CFD(("A",), ("x",), "", "z")

    def test_constant_constructor(self):
        phi = CFD.constant({"AC": "908"}, "CT", "MH")
        assert phi.is_constant

    def test_variable_constructor(self):
        phi = CFD.variable({"CC": "01", "AC": WILDCARD}, "CT")
        assert phi.is_variable

    def test_from_pattern_tuple(self):
        pattern = PatternTuple(("CC", "AC", "CT"), ("01", WILDCARD, WILDCARD))
        phi = CFD.from_pattern_tuple(("CC", "AC"), "CT", pattern)
        assert phi.lhs_value("CC") == "01"
        assert is_wildcard(phi.rhs_pattern)

    def test_from_pattern_tuple_missing_attribute(self):
        pattern = PatternTuple(("CC",), ("01",))
        with pytest.raises(DependencyError):
            CFD.from_pattern_tuple(("CC", "AC"), "CT", pattern)

    def test_empty_lhs(self):
        phi = CFD((), (), "CT", "MH")
        assert phi.lhs == ()
        assert "[] -> CT" in str(phi)


class TestClassification:
    def test_constant_cfd(self):
        assert CFD(("A",), ("x",), "B", "y").is_constant

    def test_variable_cfd(self):
        assert CFD(("A",), ("x",), "B", WILDCARD).is_variable

    def test_mixed_rhs_constant_is_not_constant_class(self):
        phi = CFD(("A", "B"), ("x", WILDCARD), "C", "z")
        assert not phi.is_constant
        assert not phi.is_variable

    def test_trivial(self):
        assert CFD(("A",), ("x",), "A", "x").is_trivial
        assert not CFD(("A",), ("x",), "B", "y").is_trivial

    def test_pure_fd(self):
        assert cfd_from_fd(("A", "B"), "C").is_pure_fd
        assert not CFD(("A",), ("x",), "B", WILDCARD).is_pure_fd

    def test_embedded_fd(self):
        assert CFD(("B", "A"), ("x", "y"), "C", WILDCARD).embedded_fd == (("A", "B"), "C")

    def test_constant_and_wildcard_lhs_attributes(self):
        phi = CFD(("A", "B"), ("x", WILDCARD), "C", WILDCARD)
        assert phi.constant_lhs_attributes == ("A",)
        assert phi.wildcard_lhs_attributes == ("B",)

    def test_attributes_property(self):
        assert CFD(("A",), ("x",), "B", "y").attributes == ("A", "B")

    def test_pattern_tuples(self):
        phi = CFD(("A",), ("x",), "B", WILDCARD)
        assert phi.lhs_pattern_tuple == PatternTuple(("A",), ("x",))
        assert phi.pattern_tuple.as_dict() == {"A": "x", "B": WILDCARD}


class TestDerivation:
    def test_drop_lhs_attribute(self):
        phi = CFD(("A", "B"), ("x", "y"), "C", "z")
        reduced = phi.drop_lhs_attribute("A")
        assert reduced.lhs == ("B",)
        assert reduced.lhs_pattern == ("y",)

    def test_drop_unknown_attribute(self):
        with pytest.raises(DependencyError):
            CFD(("A",), ("x",), "B", "y").drop_lhs_attribute("Z")

    def test_generalise_lhs_attribute(self):
        phi = CFD(("A", "B"), ("x", "y"), "C", WILDCARD)
        general = phi.generalise_lhs_attribute("A")
        assert is_wildcard(general.lhs_value("A"))
        assert general.lhs_value("B") == "y"

    def test_generalise_wildcard_rejected(self):
        phi = CFD(("A",), (WILDCARD,), "B", WILDCARD)
        with pytest.raises(DependencyError):
            phi.generalise_lhs_attribute("A")

    def test_restrict_lhs(self):
        phi = CFD(("A", "B", "C"), (1, 2, 3), "D", WILDCARD)
        assert phi.restrict_lhs(["B"]).lhs == ("B",)

    def test_restrict_lhs_unknown(self):
        with pytest.raises(DependencyError):
            CFD(("A",), (1,), "B", WILDCARD).restrict_lhs(["Z"])

    def test_lhs_value_unknown(self):
        with pytest.raises(DependencyError):
            CFD(("A",), (1,), "B", WILDCARD).lhs_value("Z")


class TestRendering:
    def test_str_constant(self):
        phi = CFD(("AC",), ("908",), "CT", "MH")
        assert str(phi) == "([AC] -> CT, (908 || MH))"

    def test_str_variable(self):
        phi = CFD(("CC", "ZIP"), ("44", WILDCARD), "STR", WILDCARD)
        assert str(phi) == "([CC, ZIP] -> STR, (44, _ || _))"

    def test_repr_contains_fields(self):
        assert "rhs='CT'" in repr(CFD(("AC",), ("908",), "CT", "MH"))


class TestSubclassesAndHelpers:
    def test_constant_cfd_class_rejects_wildcards(self):
        with pytest.raises(DependencyError):
            ConstantCFD(("A",), (WILDCARD,), "B", "y")
        with pytest.raises(DependencyError):
            ConstantCFD(("A",), ("x",), "B", WILDCARD)

    def test_variable_cfd_class_requires_wildcard_rhs(self):
        with pytest.raises(DependencyError):
            VariableCFD(("A",), ("x",), "B", "y")
        assert VariableCFD(("A",), ("x",), "B").is_variable

    def test_cfd_from_fd(self):
        phi = cfd_from_fd(("CC", "AC"), "CT")
        assert phi.is_pure_fd
        assert phi.lhs == ("AC", "CC")

    def test_normalise_constant_cfd_drops_wildcard_lhs(self):
        phi = CFD(("A", "B"), ("x", WILDCARD), "C", "z")
        normalised = normalise_constant_cfd(phi)
        assert normalised.lhs == ("A",)
        assert normalised.is_constant

    def test_normalise_keeps_variable_cfds(self):
        phi = CFD(("A",), (WILDCARD,), "C", WILDCARD)
        assert normalise_constant_cfd(phi) == phi
