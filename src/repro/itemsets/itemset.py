"""Decoded item-set views.

Internally the miner works with *encoded items* — ``(attribute_index,
value_code)`` pairs — for speed.  This module provides the decoded,
user-facing view (:class:`Item`, :class:`ItemSetView`) plus the translation
helpers between the two representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Tuple

from repro.relational.relation import Relation

EncodedItem = Tuple[int, int]
EncodedItemSet = FrozenSet[EncodedItem]


@dataclass(frozen=True, order=True)
class Item:
    """A decoded item: an attribute name together with a constant value."""

    attribute: str
    value: Hashable

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.attribute}={self.value})"


@dataclass(frozen=True)
class ItemSetView:
    """A decoded item set ``(X, tp)`` with its support size."""

    items: Tuple[Item, ...]
    support: int

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attributes of the item set, sorted."""
        return tuple(sorted(item.attribute for item in self.items))

    def pattern(self) -> Dict[str, Hashable]:
        """The item set as an ``{attribute: value}`` constant pattern."""
        return {item.attribute: item.value for item in self.items}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(item) for item in sorted(self.items))
        return f"{{{inner}}} (support={self.support})"


def encode_items(relation: Relation, pattern: Dict[str, Hashable]) -> EncodedItemSet:
    """Encode an ``{attribute: value}`` pattern to ``(index, code)`` items.

    Values outside the active domain encode to ``-1`` codes, which never match
    any tuple (support is empty).
    """
    encoding = relation.encoding
    schema = relation.schema
    items = []
    for attribute, value in pattern.items():
        index = schema.index_of(attribute)
        items.append((index, encoding.encode_value(index, value)))
    return frozenset(items)


def decode_items(
    relation: Relation, items: Iterable[EncodedItem], support: int = 0
) -> ItemSetView:
    """Decode ``(index, code)`` items back to an :class:`ItemSetView`."""
    encoding = relation.encoding
    schema = relation.schema
    decoded = tuple(
        sorted(
            Item(
                attribute=schema.name_of(index),
                value=encoding.decode_value(index, code),
            )
            for index, code in items
        )
    )
    return ItemSetView(items=decoded, support=support)


__all__ = [
    "EncodedItem",
    "EncodedItemSet",
    "Item",
    "ItemSetView",
    "encode_items",
    "decode_items",
]
