"""Mining k-frequent free and closed item sets with the C2F mapping.

This module plays the role of the GCGROWTH algorithm [26] used by the paper:
given a relation and a support threshold ``k`` it produces

* every k-frequent **free** item set ``(X, tp)`` — no proper subset has the
  same support — together with its tid-list,
* its **closure** ``clo(X, tp)`` — the unique maximal item set with the same
  support, and
* the **C2F** mapping from each k-frequent closed item set to the free item
  sets that generate it,

which is exactly the artefact CFDMiner consumes (Section 3.2) and which
FastCFD's closed-set-based difference-set provider consumes (Section 5.5).

The implementation is a levelwise (Apriori-style) enumeration of free item
sets.  Freeness is anti-monotone — every subset of a free set is free — and
support is anti-monotone, so candidate generation by prefix join over the
previous level is sound and complete.  Tid-lists are kept as sorted numpy
arrays; candidate supports are tid-list intersections.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DiscoveryError
from repro.itemsets.itemset import EncodedItem, EncodedItemSet
from repro.relational.relation import Relation

TidArray = np.ndarray


@dataclass(frozen=True)
class FreeItemSet:
    """A k-frequent free item set, its tid-list and its closure."""

    items: EncodedItemSet
    tids: TidArray
    closure: EncodedItemSet

    @property
    def support(self) -> int:
        """Number of supporting tuples."""
        return int(self.tids.size)

    @property
    def attributes(self) -> FrozenSet[int]:
        """Attribute indices of the item set."""
        return frozenset(index for index, _ in self.items)

    @property
    def size(self) -> int:
        return len(self.items)


class FreeClosedResult:
    """The output of :func:`mine_free_and_closed`.

    Attributes
    ----------
    free_sets:
        Mapping from an encoded free item set to its :class:`FreeItemSet`.
    closed_to_free:
        The C2F mapping: encoded closed item set → list of its free item sets.
    closed_supports:
        Support size of each closed item set.
    min_support:
        The threshold the mining ran with.
    n_rows:
        Number of tuples of the mined relation.
    """

    def __init__(
        self,
        free_sets: Dict[EncodedItemSet, FreeItemSet],
        min_support: int,
        n_rows: int,
    ):
        self.free_sets = free_sets
        self.min_support = min_support
        self.n_rows = n_rows
        self.closed_to_free: Dict[EncodedItemSet, List[FreeItemSet]] = {}
        self.closed_supports: Dict[EncodedItemSet, int] = {}
        for free in free_sets.values():
            self.closed_to_free.setdefault(free.closure, []).append(free)
            self.closed_supports[free.closure] = free.support

    # ------------------------------------------------------------------ #
    def closed_sets(self) -> List[EncodedItemSet]:
        """All k-frequent closed item sets."""
        return list(self.closed_to_free.keys())

    def free_sets_sorted(self) -> List[FreeItemSet]:
        """Free item sets in ascending size order (the paper's list ``L``)."""
        return sorted(
            self.free_sets.values(),
            key=lambda free: (free.size, sorted(free.items)),
        )

    def is_free(self, items: EncodedItemSet) -> bool:
        """``True`` iff ``items`` was mined as a k-frequent free item set."""
        return frozenset(items) in self.free_sets

    def tids_of(self, items: EncodedItemSet) -> Optional[TidArray]:
        """Tid-list of a mined free item set, or ``None`` if not mined."""
        free = self.free_sets.get(frozenset(items))
        return None if free is None else free.tids

    def __len__(self) -> int:
        return len(self.free_sets)


# ---------------------------------------------------------------------- #
# mining
# ---------------------------------------------------------------------- #
def _closure_of(
    matrix: np.ndarray, tids: TidArray, base_items: EncodedItemSet
) -> EncodedItemSet:
    """The closure of an item set: items shared by every supporting tuple."""
    closure = set(base_items)
    if tids.size == 0:
        return frozenset(closure)
    sub = matrix[tids, :]
    for attribute in range(matrix.shape[1]):
        column = sub[:, attribute]
        first = column[0]
        if (column == first).all():
            closure.add((attribute, int(first)))
    return frozenset(closure)


def mine_free_and_closed(
    relation: Relation,
    min_support: int = 1,
    *,
    max_size: Optional[int] = None,
) -> FreeClosedResult:
    """Mine all ``min_support``-frequent free item sets and their closures.

    Parameters
    ----------
    relation:
        The relation to mine.
    min_support:
        The paper's threshold ``k`` (at least 1).
    max_size:
        Optional cap on the number of items per free set (useful to bound
        work on very wide relations); ``None`` means no cap.

    Returns
    -------
    FreeClosedResult
        Free item sets (with tid-lists and closures) and the C2F mapping.
    """
    if min_support < 1:
        raise DiscoveryError("min_support must be at least 1")
    matrix = relation.encoded_matrix()
    n_rows, arity = matrix.shape

    free_sets: Dict[EncodedItemSet, FreeItemSet] = {}
    all_tids = np.arange(n_rows, dtype=np.int64)

    # The empty item set is always free; its closure captures constant columns.
    if n_rows >= min_support:
        empty: EncodedItemSet = frozenset()
        free_sets[empty] = FreeItemSet(
            items=empty,
            tids=all_tids,
            closure=_closure_of(matrix, all_tids, empty),
        )

    # Level 1: single items.
    level: Dict[EncodedItemSet, TidArray] = {}
    single_tids: Dict[EncodedItem, TidArray] = {}
    free_singletons: List[EncodedItem] = []
    for attribute in range(arity):
        column = matrix[:, attribute]
        for code in np.unique(column):
            tids = np.nonzero(column == code)[0].astype(np.int64)
            if tids.size < min_support:
                continue
            item: EncodedItem = (attribute, int(code))
            single_tids[item] = tids
            if tids.size < n_rows:  # otherwise the empty set has equal support
                itemset = frozenset([item])
                level[itemset] = tids
                free_singletons.append(item)
                free_sets[itemset] = FreeItemSet(
                    items=itemset,
                    tids=tids,
                    closure=_closure_of(matrix, tids, itemset),
                )

    def register(candidate: EncodedItemSet, tids: TidArray) -> None:
        free_sets[candidate] = FreeItemSet(
            items=candidate,
            tids=tids,
            closure=_closure_of(matrix, tids, candidate),
        )

    # Level 2: rather than joining every pair of frequent items (quadratic in
    # the number of items), count co-occurrences transaction by transaction —
    # only item pairs that actually appear together in at least min_support
    # rows can be frequent.
    next_level: Dict[EncodedItemSet, TidArray] = {}
    if max_size is None or max_size >= 2:
        free_singleton_set = set(free_singletons)
        pair_counts: Dict[Tuple[EncodedItem, EncodedItem], int] = {}
        row_items: List[EncodedItem] = []
        for row in range(n_rows):
            row_items = [
                (attribute, int(matrix[row, attribute]))
                for attribute in range(arity)
            ]
            row_items = [item for item in row_items if item in free_singleton_set]
            for i, first in enumerate(row_items):
                for second in row_items[i + 1:]:
                    key = (first, second) if first <= second else (second, first)
                    pair_counts[key] = pair_counts.get(key, 0) + 1
        for (first, second), count in pair_counts.items():
            if count < min_support:
                continue
            first_tids = single_tids[first]
            second_tids = single_tids[second]
            if count == first_tids.size or count == second_tids.size:
                continue  # not free: same support as an immediate subset
            tids = np.intersect1d(first_tids, second_tids, assume_unique=True)
            candidate = frozenset((first, second))
            next_level[candidate] = tids
            register(candidate, tids)
    level = next_level

    # Levels >= 3: classical prefix join restricted to buckets sharing the
    # first (size - 1) items, which keeps the join quadratic only within
    # buckets rather than across the whole level.
    size = 2
    while level and (max_size is None or size < max_size):
        next_level = {}
        buckets: Dict[Tuple[EncodedItem, ...], List[Tuple[EncodedItem, ...]]] = {}
        for itemset in level:
            ordered = tuple(sorted(itemset))
            buckets.setdefault(ordered[:-1], []).append(ordered)
        for prefix, members in buckets.items():
            members.sort()
            for i, left_sorted in enumerate(members):
                left = frozenset(left_sorted)
                for right_sorted in members[i + 1:]:
                    new_item = right_sorted[-1]
                    if any(attr == new_item[0] for attr, _ in left):
                        continue  # two values on the same attribute never co-occur
                    candidate = frozenset(left | {new_item})
                    if candidate in next_level or candidate in free_sets:
                        continue
                    # Downward closure: every immediate subset must be a known
                    # frequent free set with strictly larger support.
                    subset_supports = []
                    is_candidate = True
                    for item in candidate:
                        subset = candidate - {item}
                        known = level.get(subset)
                        if known is None:
                            is_candidate = False
                            break
                        subset_supports.append(known.size)
                    if not is_candidate:
                        continue
                    tids = np.intersect1d(
                        level[left], single_tids[new_item], assume_unique=True
                    )
                    if tids.size < min_support:
                        continue
                    if any(tids.size == support for support in subset_supports):
                        continue  # not free: same support as an immediate subset
                    next_level[candidate] = tids
                    register(candidate, tids)
        level = next_level
        size += 1

    return FreeClosedResult(free_sets, min_support=min_support, n_rows=n_rows)


def closed_itemsets(
    relation: Relation, min_support: int = 2
) -> List[Tuple[EncodedItemSet, int]]:
    """All ``min_support``-frequent closed item sets with their support sizes.

    This is the ``Closed₂(r)`` collection used by FastCFD's difference-set
    optimisation (Section 5.5); it is derived from the free-set mining result
    (every frequent closed set is the closure of a frequent free set).
    """
    result = mine_free_and_closed(relation, min_support=min_support)
    return [
        (closed, result.closed_supports[closed]) for closed in result.closed_sets()
    ]


def itemset_support(relation: Relation, items: Iterable[EncodedItem]) -> TidArray:
    """Tid-list of an arbitrary encoded item set (independent of the miner)."""
    matrix = relation.encoded_matrix()
    mask = np.ones(matrix.shape[0], dtype=bool)
    for attribute, code in items:
        mask &= matrix[:, attribute] == code
    return np.nonzero(mask)[0].astype(np.int64)


def is_free_itemset(relation: Relation, items: EncodedItemSet) -> bool:
    """Definition-level freeness check (used by tests, not by the miner)."""
    items = frozenset(items)
    support = itemset_support(relation, items).size
    for item in items:
        if itemset_support(relation, items - {item}).size == support:
            return False
    return True


def is_closed_itemset(relation: Relation, items: EncodedItemSet) -> bool:
    """Definition-level closedness check (used by tests, not by the miner)."""
    items = frozenset(items)
    tids = itemset_support(relation, items)
    closure = _closure_of(relation.encoded_matrix(), tids, items)
    return closure == items


__all__ = [
    "FreeItemSet",
    "FreeClosedResult",
    "mine_free_and_closed",
    "closed_itemsets",
    "itemset_support",
    "is_free_itemset",
    "is_closed_itemset",
]
