"""Free / closed item-set mining substrate (Section 3.1 of the paper).

An *item* is an ``(attribute, value)`` pair; an *item set* ``(X, tp)`` is a
constant pattern over a set of attributes.  The paper's CFDMiner and the
FastCFD pruning optimisation both consume the output of a miner that produces
all k-frequent **closed** item sets together with their **free** generators
(the GCGROWTH algorithm of reference [26]).  :func:`mine_free_and_closed`
produces exactly that artefact.
"""

from repro.itemsets.itemset import Item, ItemSetView, decode_items, encode_items
from repro.itemsets.mining import (
    FreeItemSet,
    FreeClosedResult,
    mine_free_and_closed,
    closed_itemsets,
)

__all__ = [
    "Item",
    "ItemSetView",
    "decode_items",
    "encode_items",
    "FreeItemSet",
    "FreeClosedResult",
    "mine_free_and_closed",
    "closed_itemsets",
]
