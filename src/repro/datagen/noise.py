"""Error injection.

The motivating use of CFDs is data cleaning: rules are discovered on a clean
(or mostly clean) sample and then used to detect and repair errors elsewhere.
:func:`inject_errors` dirties a relation by replacing a fraction of its cells
with other active-domain values (or with typo-like variants), which is what
the cleaning examples and tests use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import DataGenerationError
from repro.relational.relation import Relation


def inject_errors(
    relation: Relation,
    error_rate: float,
    *,
    seed: int = 0,
    attributes: Optional[Sequence[str]] = None,
    typo_marker: str = "??",
    use_domain_values: bool = True,
) -> Tuple[Relation, List[Tuple[int, str]]]:
    """Return a dirtied copy of ``relation`` plus the list of modified cells.

    Parameters
    ----------
    relation:
        The clean relation.
    error_rate:
        Fraction of cells to corrupt, in ``[0, 1]`` (relative to the number of
        cells in the corruptible attributes).
    seed:
        Seed for reproducibility.
    attributes:
        Attributes eligible for corruption; default: all.
    typo_marker:
        Suffix appended when a typo-style error is produced.
    use_domain_values:
        When ``True`` (default) half of the errors swap in a *different* value
        from the same active domain (harder to spot than typos).

    Returns
    -------
    (Relation, list of (row, attribute))
        The dirty relation and the coordinates of every corrupted cell.
    """
    if not 0 <= error_rate <= 1:
        raise DataGenerationError("error_rate must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    eligible = list(attributes) if attributes is not None else list(relation.attributes)
    for attribute in eligible:
        if attribute not in relation.attributes:
            raise DataGenerationError(f"unknown attribute {attribute!r}")

    n_cells = relation.n_rows * len(eligible)
    n_errors = int(round(error_rate * n_cells))
    if n_errors == 0:
        return relation, []

    chosen: Set[Tuple[int, str]] = set()
    while len(chosen) < min(n_errors, n_cells):
        row = int(rng.integers(0, relation.n_rows))
        attribute = eligible[int(rng.integers(0, len(eligible)))]
        chosen.add((row, attribute))

    columns = {name: list(relation.column(name)) for name in relation.attributes}
    modified: List[Tuple[int, str]] = []
    for row, attribute in sorted(chosen, key=lambda cell: (cell[0], cell[1])):
        current = columns[attribute][row]
        domain = [v for v in relation.active_domain(attribute) if v != current]
        if use_domain_values and domain and rng.random() < 0.5:
            replacement = domain[int(rng.integers(0, len(domain)))]
        else:
            replacement = f"{current}{typo_marker}"
        columns[attribute][row] = replacement
        modified.append((row, attribute))
    return Relation(relation.schema, columns), modified


__all__ = ["inject_errors"]
