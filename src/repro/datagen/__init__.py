"""Synthetic workload generators for the paper's experiments (Section 6.1).

* :mod:`repro.datagen.tax` — the Tax/cust-style generator with the paper's
  three knobs DBSIZE, ARITY and CF (correlation factor).
* :mod:`repro.datagen.uci` — offline stand-ins for the UCI Wisconsin Breast
  Cancer and Chess (KRK) data sets (same shape, cardinalities and dependency
  structure; see DESIGN.md for the substitution rationale).
* :mod:`repro.datagen.noise` — error injection used by the cleaning examples.
* :mod:`repro.datagen.wide` — 100+-column relations with controllable
  embedded FDs/CFDs (the schema-wide profiling scenario served by ``dfd``).
"""

from repro.datagen.tax import TaxGenerator, generate_tax
from repro.datagen.uci import chess, wisconsin_breast_cancer
from repro.datagen.noise import inject_errors
from repro.datagen.wide import WideRelationGenerator, wide_relation

__all__ = [
    "TaxGenerator",
    "generate_tax",
    "WideRelationGenerator",
    "wide_relation",
    "chess",
    "wisconsin_breast_cancer",
    "inject_errors",
]
