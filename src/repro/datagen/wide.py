"""Wide-relation generator: 100+-column tables with embedded FDs and CFDs.

The scenario class the ROADMAP calls "schema-wide profiling" — log exports,
feature stores, denormalised analytics tables — is wide (100-500 columns)
but *low-dimensional*: the columns are views of a couple of underlying
entities.  :class:`WideRelationGenerator` reproduces that shape
deterministically, and the shape is load-bearing.  Uniform random columns
would be useless here: for any per-column cardinality there is a set size
at which the joint cardinality crosses ``n_rows²``, and near that threshold
a constant fraction of *all* attribute combinations accidentally validates
— the canonical cover explodes combinatorially no matter which engine runs.
Real wide tables avoid this through algebraic structure, which the
generator encodes directly:

* **two factor chains**: each chain is a sequence of hidden code columns
  where level ``l+1`` is a deterministic *coarsening* of level ``l``
  (values merged pairwise, like city → region → country).  Within a chain
  all partitions are totally ordered by refinement, so a within-chain
  attribute set is only as strong as its finest member and is never an
  accidental minimal LHS;
* **base columns**: each is a random bijection of one (chain, level)
  factor.  Same-cluster columns mutually determine each other (shallow
  singleton FDs); *cross*-chain sets keep ≥ ``rows_per_value²/2`` expected
  agreeing row pairs at every set size, so they practically never validate
  accidentally — the dependency boundary stays small and engineered;
* **embedded FDs**: dependent ``F``-columns are injective scramblings of
  one chain-0 and one chain-1 factor, discovered as genuinely two-column
  cross-chain LHS sets;
* **embedded CFDs**: a small-domain ``COND`` column gates ``C``-columns
  that are bijections of a source factor *within* one condition group and
  row-unique sentinels outside it — the dependency is genuinely
  conditional.  Condition groups halve the per-value counts, which is why
  the finest factor level keeps ``rows_per_value`` occurrences (default 6):
  in-group counts stay ≥ 3 and the in-group sub-relations inherit the same
  small boundary.

Because every non-``COND`` value occurs at most
``rows_per_value · 2^(levels-1)`` times (the coarsest factor level), no
constant pattern outside the engineered ``COND`` items is frequent at the
derived :attr:`WideRelationGenerator.min_support`.  Discovery at that threshold
visits exactly ``1 + n_groups`` pattern contexts per RHS, the canonical
covers of ``ctane``, ``fastcfd`` and ``dfd`` coincide exactly (asserted by
the oracle tests and the CI wide-smoke step on pinned seeds), and CTANE
stays feasible at 30 columns while at 120+ columns only the walk-based
``dfd`` engine answers in reasonable time.

All generation is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import DataGenerationError
from repro.relational.relation import Relation

#: Default number of independent factor chains (the generated "entities").
DEFAULT_N_CHAINS = 2


def _exact_count_codes(
    rng: np.random.Generator, n_rows: int, rows_per_value: int
) -> np.ndarray:
    """Codes ``0..ceil(n/m)-1``, each occurring exactly ``m`` times
    (the last possibly fewer), in shuffled row order."""
    n_values = -(-n_rows // rows_per_value)
    values = np.repeat(np.arange(n_values), rows_per_value)[:n_rows]
    return values[rng.permutation(n_rows)]


@dataclass
class WideRelationGenerator:
    """Seeded generator for wide relations with controllable dependencies.

    Parameters
    ----------
    n_cols:
        Total number of columns (condition + base + dependent).
    n_rows:
        Number of tuples.
    seed:
        Seed of the pseudo-random generator.
    n_fds:
        Number of embedded functional dependencies; dependent column
        ``F{i}`` is an injective function of a cross-chain factor pair, so
        any base-column pair drawn from the two named clusters (or finer
        ones) is a minimal LHS.
    n_cfds:
        Number of embedded *conditional* dependencies gated on one shared
        small-domain condition column (column 0 when ``n_cfds > 0``).
    rows_per_value:
        Exact occurrence count of every finest-level factor value (default
        6; coarser levels double it per step).  The derived
        :attr:`min_support` threshold ``rows_per_value + 1`` is the
        smallest ``k`` at which no accidental constant pattern is frequent.
    """

    n_cols: int
    n_rows: int
    seed: int = 0
    n_fds: int = 4
    n_cfds: int = 0
    rows_per_value: int = 6
    n_chains: int = DEFAULT_N_CHAINS

    def __post_init__(self) -> None:
        if self.n_cols < 2:
            raise DataGenerationError("n_cols must be at least 2")
        if self.n_rows < 1:
            raise DataGenerationError("n_rows must be positive")
        if self.n_fds < 0 or self.n_cfds < 0:
            raise DataGenerationError("n_fds and n_cfds must not be negative")
        if self.rows_per_value < 1:
            raise DataGenerationError("rows_per_value must be positive")
        if self.n_chains < 2:
            raise DataGenerationError("n_chains must be at least 2")
        condition_cols = 1 if self.n_cfds else 0
        dependents = self.n_fds + self.n_cfds
        if condition_cols + dependents + self.n_chains > self.n_cols:
            raise DataGenerationError(
                "n_cols too small for the requested embedded dependencies "
                f"(need at least {condition_cols + dependents + self.n_chains})"
            )
        if self.n_cfds and self.n_rows < self.n_groups * self.min_support:
            raise DataGenerationError(
                "n_rows too small for the condition groups to be frequent "
                f"(need at least {self.n_groups * self.min_support})"
            )
        if self.n_cfds and self._coarsest_values() < self.n_groups:
            raise DataGenerationError(
                "n_rows too small to fold the coarsest factor into "
                f"{self.n_groups} condition groups"
            )

    # ------------------------------------------------------------------ #
    @property
    def min_support(self) -> int:
        """The smallest ``k`` with no accidental frequent constant pattern.

        Value counts peak at the *coarsest* factor level,
        ``rows_per_value · 2^(n_levels-1)`` — one above that, the frequent
        patterns are exactly the empty pattern and the engineered condition
        items (a coarsest value folds wholly into one condition group, so
        even its pairing with a ``COND`` item never reaches this ``k``).
        Discovery below this threshold still works but drowns in
        accidental constant-pattern contexts.
        """
        return self.rows_per_value * 2 ** (self.n_levels - 1) + 1

    @property
    def n_groups(self) -> int:
        """Number of condition-column groups (0 without embedded CFDs)."""
        return max(2, self.n_cfds) if self.n_cfds else 0

    @property
    def n_levels(self) -> int:
        """Coarsening levels per chain: value counts ``m·2^l`` stay ≤ n/4."""
        levels = 1
        count = self.rows_per_value * 2
        while count <= max(2, self.n_rows // 4) and levels < 8:
            levels += 1
            count *= 2
        n_base = len(self._base_names())
        return max(1, min(levels, n_base // self.n_chains))

    def _coarsest_values(self) -> int:
        """Distinct values of a chain's coarsest level (analytic)."""
        count = -(-self.n_rows // self.rows_per_value)
        for _ in range(1, self.n_levels):
            count = -(-count // 2)
        return count

    def _base_names(self) -> List[str]:
        n_base = (
            self.n_cols
            - (1 if self.n_cfds else 0)
            - self.n_fds
            - self.n_cfds
        )
        return [f"B{i:03d}" for i in range(n_base)]

    def _clusters(self) -> List[Tuple[int, int]]:
        """The (chain, level) clusters, in column round-robin order."""
        return [
            (chain, level)
            for chain in range(self.n_chains)
            for level in range(self.n_levels)
        ]

    def _cluster_representative(self, chain: int, level: int) -> str:
        """The first base column derived from factor ``(chain, level)``."""
        index = self._clusters().index((chain, level))
        return self._base_names()[index]  # column j → cluster j % len

    def attribute_names(self) -> List[str]:
        """``COND, B000.., F00.., C00..`` for the configured layout."""
        names: List[str] = []
        if self.n_cfds:
            names.append("COND")
        names.extend(self._base_names())
        names.extend(f"F{i:02d}" for i in range(self.n_fds))
        names.extend(f"C{i:02d}" for i in range(self.n_cfds))
        return names

    def _fd_factor_pair(self, index: int) -> Tuple[int, int]:
        """Levels of the (chain 0, chain 1) factor pair behind ``F{index}``."""
        levels = self.n_levels
        return (index % levels, (index // levels) % levels)

    def embedded_fds(self) -> List[Tuple[Tuple[str, str], str]]:
        """The embedded FDs as ``((determinant_a, determinant_b), dependent)``.

        The named determinants are cluster *representatives*; same-cluster
        siblings (or finer levels of the same chain) combine into equally
        valid LHS sets.
        """
        out = []
        for i in range(self.n_fds):
            level_a, level_b = self._fd_factor_pair(i)
            pair = (
                self._cluster_representative(0, level_a),
                self._cluster_representative(1, level_b),
            )
            out.append((pair, f"F{i:02d}"))
        return out

    def embedded_cfds(self) -> List[Tuple[str, str, str]]:
        """The embedded CFDs as ``(condition_value, source, target)``."""
        return [
            (f"g{i}", self._cluster_representative(i % self.n_chains, 0), f"C{i:02d}")
            for i in range(self.n_cfds)
        ]

    def generate(self) -> Relation:
        """Generate the relation."""
        rng = np.random.default_rng(self.seed)
        names = self.attribute_names()
        n, m = self.n_rows, self.rows_per_value
        columns: Dict[str, List[str]] = {}

        # Factor chains: finest level drawn with exact counts, coarser
        # levels merge value pairs (deterministic refinement).
        chains: List[List[np.ndarray]] = []
        for _ in range(self.n_chains):
            levels = [_exact_count_codes(rng, n, m)]
            for _ in range(1, self.n_levels):
                levels.append(levels[-1] // 2)
            chains.append(levels)

        def factor_of(chain: int, level: int) -> np.ndarray:
            return chains[chain][level]

        def n_values_of(chain: int, level: int) -> int:
            return int(factor_of(chain, level).max()) + 1

        # Base columns: random bijections of their cluster's factor.
        clusters = self._clusters()
        for j, name in enumerate(self._base_names()):
            chain, level = clusters[j % len(clusters)]
            codes = factor_of(chain, level)
            relabel = rng.permutation(n_values_of(chain, level))
            columns[name] = [f"v{int(relabel[c])}" for c in codes]

        # Embedded FDs: F = injective scrambling of a cross-chain factor
        # pair's joint code, so the minimal LHS sets are exactly the
        # two-column cross-chain combinations (no single chain suffices).
        for i in range(self.n_fds):
            level_a, level_b = self._fd_factor_pair(i)
            codes_a = factor_of(0, level_a)
            codes_b = factor_of(1, level_b)
            width = n_values_of(1, level_b)
            relabel = rng.permutation(n_values_of(0, level_a) * width)
            joint = codes_a * width + codes_b
            columns[f"F{i:02d}"] = [f"f{int(relabel[j])}" for j in joint]

        # Embedded CFDs: within COND == g{i} the target is a bijection of
        # its source factor; other rows carry row-unique sentinels so the
        # dependency holds only conditionally and no accidental constant
        # pattern forms.  COND itself folds chain 0's *coarsest* factor
        # into the groups — were it independent noise, no engineered set
        # would determine it and near-key attribute combinations would
        # accidentally separate the groups in droves (the cover-explosion
        # problem the chain structure exists to prevent).
        if self.n_cfds:
            group_codes = chains[0][-1] % self.n_groups
            columns["COND"] = [f"g{int(c)}" for c in group_codes]
            for i in range(self.n_cfds):
                source = factor_of(i % self.n_chains, 0)
                relabel = rng.permutation(n_values_of(i % self.n_chains, 0))
                gated = group_codes == i
                columns[f"C{i:02d}"] = [
                    f"c{int(relabel[source[row]])}" if gated[row] else f"u{row}"
                    for row in range(n)
                ]

        return Relation(names, columns)


def wide_relation(
    n_cols: int,
    n_rows: int,
    seed: int = 0,
    *,
    n_fds: int = 4,
    n_cfds: int = 0,
    rows_per_value: int = 6,
    n_chains: int = DEFAULT_N_CHAINS,
) -> Relation:
    """Convenience wrapper around :class:`WideRelationGenerator`."""
    return WideRelationGenerator(
        n_cols=n_cols,
        n_rows=n_rows,
        seed=seed,
        n_fds=n_fds,
        n_cfds=n_cfds,
        rows_per_value=rows_per_value,
        n_chains=n_chains,
    ).generate()


__all__ = ["DEFAULT_N_CHAINS", "WideRelationGenerator", "wide_relation"]
