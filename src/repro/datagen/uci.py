"""Offline stand-ins for the UCI data sets used in Section 6.2.2.

The paper evaluates CTANE and FastCFD on two UCI data sets:

* **Wisconsin Breast Cancer (WBC)** — 699 tuples, 11 attributes (a sample
  code number, nine cytological features with integer domains 1–10 and a
  binary class);
* **Chess (King-Rook versus King, KRK)** — 28 056 tuples, 7 attributes (the
  files/ranks of the three pieces and an 18-valued depth-to-win class).

This environment has no network access, so the functions below *synthesise*
relations with the same shape (arity, size, per-attribute cardinalities) and
the same kind of dependency structure (correlated features and a class
attribute that is a function of the others), which is what the runtime and
CFD-count experiments are sensitive to.  The substitution is recorded in
DESIGN.md and EXPERIMENTS.md.

Both generators are deterministic given ``seed``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import DataGenerationError
from repro.relational.relation import Relation

#: Attribute names of the WBC stand-in (the UCI column names, abbreviated).
WBC_ATTRIBUTES: Tuple[str, ...] = (
    "id",
    "clump_thickness",
    "cell_size",
    "cell_shape",
    "adhesion",
    "epithelial_size",
    "bare_nuclei",
    "bland_chromatin",
    "normal_nucleoli",
    "mitoses",
    "class",
)

#: Attribute names of the Chess (KRK) stand-in.
CHESS_ATTRIBUTES: Tuple[str, ...] = (
    "wk_file",
    "wk_rank",
    "wr_file",
    "wr_rank",
    "bk_file",
    "bk_rank",
    "depth",
)


def wisconsin_breast_cancer(n_rows: int = 699, seed: int = 7) -> Relation:
    """A WBC-shaped relation: 11 attributes, feature domains 1–10, binary class.

    Features are generated from a latent *severity* variable so that they are
    strongly correlated (as in the real data set), and the class is a
    deterministic function of a feature aggregate — this yields both exact and
    conditional dependencies for the discovery algorithms to find.
    """
    if n_rows < 1:
        raise DataGenerationError("n_rows must be positive")
    rng = np.random.default_rng(seed)
    severity = rng.beta(a=1.3, b=2.2, size=n_rows)  # skewed towards benign

    def feature(noise_scale: float, quantisation: int = 10) -> np.ndarray:
        noisy = severity + rng.normal(0.0, noise_scale, size=n_rows)
        values = np.clip(np.round(noisy * (quantisation - 1)) + 1, 1, quantisation)
        return values.astype(int)

    columns = {
        "id": [f"{1000000 + int(i)}" for i in rng.integers(0, n_rows // 2 + 1, size=n_rows)],
        "clump_thickness": feature(0.10).tolist(),
        "cell_size": feature(0.08).tolist(),
        "cell_shape": feature(0.08).tolist(),
        "adhesion": feature(0.15).tolist(),
        "epithelial_size": feature(0.15).tolist(),
        "bare_nuclei": feature(0.12).tolist(),
        "bland_chromatin": feature(0.18).tolist(),
        "normal_nucleoli": feature(0.18).tolist(),
        "mitoses": np.clip(feature(0.25) // 2, 1, 10).astype(int).tolist(),
    }
    aggregate = (
        np.asarray(columns["cell_size"])
        + np.asarray(columns["cell_shape"])
        + np.asarray(columns["bare_nuclei"])
    )
    columns["class"] = ["malignant" if value >= 18 else "benign" for value in aggregate]
    ordered = {name: columns[name] for name in WBC_ATTRIBUTES}
    return Relation(list(WBC_ATTRIBUTES), ordered)


def _king_distance(file_a: int, rank_a: int, file_b: int, rank_b: int) -> int:
    """Chebyshev distance between two squares."""
    return max(abs(file_a - file_b), abs(rank_a - rank_b))


def chess(n_rows: int = 28056, seed: int = 11) -> Relation:
    """A KRK-shaped relation: 6 position attributes and an 18-valued class.

    Positions are sampled uniformly from the legal KRK configurations (pieces
    on distinct squares, kings not adjacent) and the ``depth`` class is a
    deterministic function of the position (a bucketed combination of king
    distance, rook alignment and board edge proximity producing the 18 class
    labels ``draw, zero, one, …, sixteen`` of the original data set).  Being a
    function of the other six attributes, it induces the same kind of
    dependency structure the real data set has.
    """
    if n_rows < 1:
        raise DataGenerationError("n_rows must be positive")
    rng = np.random.default_rng(seed)
    files = "abcdefgh"
    labels = [
        "draw", "zero", "one", "two", "three", "four", "five", "six", "seven",
        "eight", "nine", "ten", "eleven", "twelve", "thirteen", "fourteen",
        "fifteen", "sixteen",
    ]
    rows: List[Tuple[str, int, str, int, str, int, str]] = []
    while len(rows) < n_rows:
        batch = rng.integers(0, 8, size=(max(1024, n_rows), 6))
        for wkf, wkr, wrf, wrr, bkf, bkr in batch:
            if len(rows) >= n_rows:
                break
            squares = {(wkf, wkr), (wrf, wrr), (bkf, bkr)}
            if len(squares) < 3:
                continue
            if _king_distance(wkf, wkr, bkf, bkr) <= 1:
                continue
            king_distance = _king_distance(wkf, wkr, bkf, bkr)
            edge = min(bkf, 7 - bkf, bkr, 7 - bkr)
            aligned = int(wrf == bkf) + int(wrr == bkr)
            rook_king = _king_distance(wrf, wrr, bkf, bkr)
            if aligned and rook_king <= 1 and king_distance > 2:
                label = labels[0]  # stalemate-ish positions labelled "draw"
            else:
                score = (
                    2 * edge
                    + king_distance
                    + 2 * aligned
                    + (rook_king // 2)
                )
                label = labels[1 + min(score, 16)]
            rows.append(
                (
                    files[wkf], int(wkr) + 1,
                    files[wrf], int(wrr) + 1,
                    files[bkf], int(bkr) + 1,
                    label,
                )
            )
    return Relation.from_rows(list(CHESS_ATTRIBUTES), rows[:n_rows])


__all__ = ["WBC_ATTRIBUTES", "CHESS_ATTRIBUTES", "wisconsin_breast_cancer", "chess"]
