"""Relation schemas.

A :class:`Schema` is an ordered collection of uniquely named attributes.  All
discovery algorithms address attributes either by name (public API) or by
positional index (internal, fast path); the schema is the translation layer
between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A named attribute at a fixed position of a schema.

    Attributes
    ----------
    name:
        The attribute name, unique within its schema.
    index:
        Zero-based position of the attribute in the schema.
    """

    name: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


AttributeLike = Union[str, int, Attribute]


class Schema:
    """An ordered, immutable collection of uniquely named attributes.

    Parameters
    ----------
    names:
        Attribute names in column order.  Names must be non-empty strings and
        unique.

    Examples
    --------
    >>> schema = Schema(["CC", "AC", "PN"])
    >>> schema.arity
    3
    >>> schema.index_of("AC")
    1
    >>> schema.names
    ('CC', 'AC', 'PN')
    """

    __slots__ = ("_names", "_index", "_attributes")

    def __init__(self, names: Iterable[str]):
        names = tuple(names)
        if not names:
            raise SchemaError("a schema needs at least one attribute")
        seen = set()
        for name in names:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"invalid attribute name: {name!r}")
            if name in seen:
                raise SchemaError(f"duplicate attribute name: {name!r}")
            seen.add(name)
        self._names: Tuple[str, ...] = names
        self._index = {name: i for i, name in enumerate(names)}
        self._attributes = tuple(
            Attribute(name=name, index=i) for i, name in enumerate(names)
        )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in column order."""
        return self._names

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The :class:`Attribute` objects in column order."""
        return self._attributes

    @property
    def arity(self) -> int:
        """Number of attributes (the paper's ``|R|``)."""
        return len(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and other._names == self._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return f"Schema({list(self._names)!r})"

    # ------------------------------------------------------------------ #
    # name/index translation
    # ------------------------------------------------------------------ #
    def index_of(self, attribute: AttributeLike) -> int:
        """Return the positional index of ``attribute``.

        ``attribute`` may be a name, an index (validated and passed through)
        or an :class:`Attribute`.
        """
        if isinstance(attribute, Attribute):
            attribute = attribute.name
        if isinstance(attribute, str):
            try:
                return self._index[attribute]
            except KeyError:
                raise SchemaError(
                    f"unknown attribute {attribute!r}; schema has {self._names}"
                ) from None
        if isinstance(attribute, int):
            if not 0 <= attribute < len(self._names):
                raise SchemaError(
                    f"attribute index {attribute} out of range for arity "
                    f"{len(self._names)}"
                )
            return attribute
        raise SchemaError(f"cannot interpret {attribute!r} as an attribute")

    def name_of(self, attribute: AttributeLike) -> str:
        """Return the name of ``attribute`` (name, index or Attribute)."""
        return self._names[self.index_of(attribute)]

    def indices_of(self, attributes: Iterable[AttributeLike]) -> Tuple[int, ...]:
        """Translate a collection of attributes to a tuple of indices."""
        return tuple(self.index_of(a) for a in attributes)

    def names_of(self, attributes: Iterable[AttributeLike]) -> Tuple[str, ...]:
        """Translate a collection of attributes to a tuple of names."""
        return tuple(self.name_of(a) for a in attributes)

    def sorted_indices(self, attributes: Iterable[AttributeLike]) -> Tuple[int, ...]:
        """Translate to indices and sort them in schema order."""
        return tuple(sorted(self.indices_of(attributes)))

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def project(self, attributes: Sequence[AttributeLike]) -> "Schema":
        """Return a new schema restricted to ``attributes`` (given order)."""
        return Schema(self.names_of(attributes))

    def complement(self, attributes: Iterable[AttributeLike]) -> Tuple[str, ...]:
        """Names of the attributes *not* listed in ``attributes``."""
        excluded = set(self.indices_of(attributes))
        return tuple(
            name for i, name in enumerate(self._names) if i not in excluded
        )
