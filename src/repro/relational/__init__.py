"""Relational substrate: schemas, relations, encodings and partitions.

This subpackage provides the storage layer shared by every discovery
algorithm in the library:

* :class:`~repro.relational.attrset.AttrSet` — the width-unbounded frozen
  attribute-index set every engine's difference sets, covers and lattice
  nodes are built from (frozenset-compatible hashing, sorted iteration).
* :class:`~repro.relational.schema.Schema` — an ordered set of named
  attributes.
* :class:`~repro.relational.relation.Relation` — an immutable, column
  oriented relation instance with dictionary-encoded integer views used by
  the mining algorithms.
* :class:`~repro.relational.partition.Partition` and
  :func:`~repro.relational.partition.pattern_partition` — equivalence-class
  partitions (the TANE/CTANE workhorse).
* :mod:`~repro.relational.io` — CSV import/export helpers.
"""

from repro.relational.attrset import (
    AttrSet,
    EMPTY_ATTRSET,
    attrset_from_packed,
    pack_bool_rows,
)
from repro.relational.schema import Attribute, Schema
from repro.relational.encoding import ColumnEncoder, RelationEncoding
from repro.relational.relation import Relation
from repro.relational.partition import (
    Partition,
    attribute_partition,
    pattern_partition,
)
from repro.relational.io import read_csv, write_csv

__all__ = [
    "AttrSet",
    "EMPTY_ATTRSET",
    "attrset_from_packed",
    "pack_bool_rows",
    "Attribute",
    "Schema",
    "ColumnEncoder",
    "RelationEncoding",
    "Relation",
    "Partition",
    "attribute_partition",
    "pattern_partition",
    "read_csv",
    "write_csv",
]
