"""Equivalence-class partitions on an array-backed label substrate.

Partitions are the core data structure of TANE-style algorithms (Section 4.4
of the paper): a set of attributes ``X`` partitions the tuples of a relation
into equivalence classes of tuples agreeing on ``X``.  CTANE generalises this
to *pattern partitions* ``Π(X, sp)``: only tuples matching the constants of
the pattern ``sp`` participate, grouped by their values on the wildcard
attributes of ``X``.

Representation
--------------
A :class:`Partition` is logically one ``int32`` array ``labels`` with
``labels[row] = class id`` and ``-1`` for rows that are excluded — either
because they do not match the constants of a pattern or because their
singleton class was stripped.  Class ids are dense (``0 .. n_classes-1``).
Physically the partition is stored *compressed*: a sorted array of covered
row indices plus the class id of each covered row; the full label array is
materialised lazily through :attr:`labels`.  The operations TANE/CTANE
hammer on are linear-time array passes whose cost scales with the covered
subset, not the relation:

* :meth:`product` — mixed-radix pairing of the class ids on the common rows
  (a ``searchsorted`` merge of the covered-row arrays);
* :meth:`refine_by_column` / :meth:`restrict` — the two special products
  CTANE derives level-ℓ pattern partitions with (joining in a wildcard or a
  constant single-attribute pattern);
* :meth:`refines` and the column checks
  (:meth:`column_constant_on_classes`, :meth:`column_all_equal`) — one
  pairing pass instead of Python dict loops.  (CTANE itself validates via
  O(1) count comparisons between cached partitions, see
  ``CTane._cfd_valid_partition``; the column checks are the direct,
  definition-level formulation of the same tests.)

Two row counts are deliberately distinct (they silently coincided — and then
silently diverged after :meth:`stripped` — in the old tuple-of-tuples
implementation): :attr:`n_rows` is the number of rows of the underlying
relation and never changes under stripping or products, while
:attr:`covered_rows` counts the rows actually present in some class.

The tuple-of-tuples view is still available through :attr:`classes` /
iteration for the edges that want explicit row groups (tests, small
fixtures); it is materialised lazily and cached.  The original dict-loop
implementation lives on in :mod:`repro.relational._reference` for property
testing and benchmarking.

The module provides:

* :class:`Partition` — the label-array partition;
* :func:`attribute_partition` — the partition of a relation by a set of
  attributes;
* :func:`pattern_partition` — the CTANE pattern partition ``Π(X, sp)``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pattern import WILDCARD, is_wildcard


def _densify(codes: np.ndarray, bound: int) -> Tuple[np.ndarray, int]:
    """Relabel non-negative ``codes`` (< ``bound``) densely as ``0..k-1``.

    Uses a counting pass when the code range is comparable to the input size
    (much faster than sorting) and falls back to ``np.unique`` for sparse
    ranges.  Returns ``(labels, k)`` with ``labels`` of dtype int32.
    """
    if codes.size == 0:
        return np.empty(0, dtype=np.int32), 0
    if bound <= max(1024, 4 * codes.size):
        counts = np.bincount(codes, minlength=bound)
        mapping = np.cumsum(counts > 0, dtype=np.int64) - 1
        return mapping[codes].astype(np.int32), int(mapping[-1]) + 1
    uniques, inverse = np.unique(codes, return_inverse=True)
    return inverse.reshape(-1).astype(np.int32), int(uniques.size)


def _encode_columns(columns: Iterable[np.ndarray]) -> Tuple[np.ndarray, int]:
    """Dense row labels for the tuple of values across ``columns``.

    Pairs the columns one by one in mixed radix, re-densifying after each
    step so intermediate codes stay small.  Returns ``(labels, n_classes)``.

    Wide attribute sets over few rows (the ``dfd`` walk regime) instead take
    a single row-wise :func:`np.unique` over a byte view of the stacked
    columns: one vectorised sort beats dozens of per-column densify rounds
    there, while the incremental path stays linear for the many-row,
    few-column shapes CTANE produces.  Label *numbering* differs between the
    two paths but the grouping — all any caller relies on — is identical.
    """
    materialised = [np.asarray(column) for column in columns]
    n_rows = materialised[0].shape[0] if materialised else 0
    if len(materialised) >= 4 and 0 < n_rows <= 2048:
        stacked = np.ascontiguousarray(np.stack(materialised, axis=1))
        row_bytes = stacked.view(
            np.dtype((np.void, stacked.dtype.itemsize * stacked.shape[1]))
        ).ravel()
        _, inverse = np.unique(row_bytes, return_inverse=True)
        inverse = inverse.reshape(-1)
        return inverse.astype(np.int32), int(inverse.max()) + 1
    labels: Optional[np.ndarray] = None
    count = 1
    for column in materialised:
        column = column.astype(np.int64, copy=False)
        low = int(column.min()) if column.size else 0
        span = (int(column.max()) - low + 1) if column.size else 1
        if labels is None:
            codes = column - low
        else:
            codes = labels.astype(np.int64) * span + (column - low)
        labels, count = _densify(codes, count * span)
    assert labels is not None
    return labels, count


class Partition:
    """A partition of row indices into equivalence classes (label-array backed).

    The compatibility constructor accepts explicit classes (any iterable of
    disjoint row-index sequences); hot paths use the trusted constructors
    (:meth:`from_labels`, :meth:`from_covered`, :meth:`from_mask`) and the
    module-level builders instead.  The :attr:`classes` view is normalised
    exactly as before: classes are sorted tuples of row indices, ordered by
    their first element, which keeps partitions hashable and
    deterministically comparable.
    """

    __slots__ = (
        "_labels",
        "_size",
        "_n_rows",
        "_n_classes",
        "_covered_index",
        "_covered_labels",
        "_classes",
    )

    def __init__(self, classes: Iterable[Sequence[int]], n_rows: Optional[int] = None):
        groups = [
            np.asarray(sorted(int(i) for i in cls), dtype=np.int64)
            for cls in classes
            if len(cls) > 0
        ]
        groups.sort(key=lambda g: int(g[0]))
        covered = int(sum(g.size for g in groups))
        highest = max((int(g[-1]) for g in groups), default=-1)
        if n_rows is None:
            n_rows = covered
        rows = np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)
        labels = np.concatenate(
            [np.full(g.size, i, dtype=np.int32) for i, g in enumerate(groups)]
        ) if groups else np.empty(0, dtype=np.int32)
        order = np.argsort(rows, kind="stable")
        self._covered_index: Optional[np.ndarray] = rows[order]
        self._covered_labels: Optional[np.ndarray] = labels[order]
        self._labels: Optional[np.ndarray] = None
        self._size = max(int(n_rows), highest + 1)
        self._n_rows = int(n_rows)
        self._n_classes = len(groups)
        self._classes: Optional[Tuple[Tuple[int, ...], ...]] = tuple(
            tuple(g.tolist()) for g in groups
        )

    # ------------------------------------------------------------------ #
    # trusted constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labels(
        cls, labels: np.ndarray, n_rows: int, n_classes: int
    ) -> "Partition":
        """Wrap a label array (dense class ids ``0..n_classes-1``, ``-1`` excluded)."""
        partition = cls.__new__(cls)
        partition._labels = labels
        partition._size = int(labels.shape[0])
        partition._n_rows = int(n_rows)
        partition._n_classes = int(n_classes)
        partition._covered_index = None
        partition._covered_labels = None
        partition._classes = None
        return partition

    @classmethod
    def from_covered(
        cls,
        rows: np.ndarray,
        row_labels: np.ndarray,
        n_rows: int,
        n_classes: int,
        size: Optional[int] = None,
    ) -> "Partition":
        """Wrap the compressed form: sorted covered ``rows`` and their class ids."""
        partition = cls.__new__(cls)
        partition._labels = None
        if size is None:
            size = max(int(n_rows), (int(rows[-1]) + 1) if rows.size else 0)
        partition._size = int(size)
        partition._n_rows = int(n_rows)
        partition._n_classes = int(n_classes)
        partition._covered_index = rows
        partition._covered_labels = row_labels
        partition._classes = None
        return partition

    @classmethod
    def from_mask(cls, mask: np.ndarray, n_rows: int) -> "Partition":
        """The single-class partition of the rows selected by a boolean mask."""
        rows = np.nonzero(mask)[0]
        return cls.from_covered(
            rows,
            np.zeros(rows.size, dtype=np.int32),
            n_rows,
            1 if rows.size else 0,
            size=int(mask.shape[0]),
        )

    # ------------------------------------------------------------------ #
    @property
    def labels(self) -> np.ndarray:
        """The full ``int32`` label array (``-1`` marks uncovered rows; lazy)."""
        if self._labels is None:
            labels = np.full(self._size, -1, dtype=np.int32)
            labels[self._covered_index] = self._covered_labels
            self._labels = labels
        return self._labels

    @property
    def covered_index(self) -> np.ndarray:
        """Sorted row indices of the covered rows (cached)."""
        if self._covered_index is None:
            self._covered_index = np.nonzero(self._labels >= 0)[0]
            self._covered_labels = self._labels[self._covered_index]
        return self._covered_index

    @property
    def covered_labels(self) -> np.ndarray:
        """Class ids of the covered rows, aligned with :attr:`covered_index`."""
        if self._covered_labels is None:
            self.covered_index  # materialises both
        return self._covered_labels

    @property
    def n_classes(self) -> int:
        """Number of equivalence classes, ``|π|``."""
        return self._n_classes

    @property
    def n_rows(self) -> int:
        """Number of rows of the underlying relation (stable under stripping)."""
        return self._n_rows

    @property
    def covered_rows(self) -> int:
        """Number of rows that belong to some class (``-1`` entries excluded)."""
        return int(self.covered_index.size)

    @property
    def size(self) -> int:
        """Length of the full label array (row-index space of the partition)."""
        return self._size

    @property
    def classes(self) -> Tuple[Tuple[int, ...], ...]:
        """The classes as sorted tuples of row indices, ordered by first element."""
        if self._classes is None:
            rows = self.covered_index
            labels = self.covered_labels
            order = np.argsort(labels, kind="stable")
            boundaries = np.nonzero(np.diff(labels[order]))[0] + 1
            groups = np.split(rows[order], boundaries) if rows.size else []
            groups.sort(key=lambda g: int(g[0]))
            self._classes = tuple(tuple(g.tolist()) for g in groups)
        return self._classes

    def class_sizes(self) -> np.ndarray:
        """Sizes of the classes, indexed by class id."""
        return np.bincount(self.covered_labels, minlength=self._n_classes)

    @property
    def nbytes(self) -> int:
        """Estimated bytes held by the partition's materialised backing stores.

        Counts the numpy arrays exactly and the lazily materialised
        ``classes`` view approximately (Python ints dominate it); views that
        have not been materialised cost nothing.  The session pool's memory
        accounting sums this over every cached partition.
        """
        total = 0
        for array in (self._labels, self._covered_index, self._covered_labels):
            if array is not None:
                total += int(array.nbytes)
        if self._classes is not None:
            # ~28 bytes per small int plus 8 per tuple slot, 56 per tuple.
            total += sum(56 + 36 * len(cls) for cls in self._classes)
        return total

    def __iter__(self):
        return iter(self.classes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Partition) and other.classes == self.classes

    def __hash__(self) -> int:
        return hash(self.classes)

    def __repr__(self) -> str:
        return f"Partition(n_classes={self.n_classes}, n_rows={self.n_rows})"

    # ------------------------------------------------------------------ #
    def stripped(self) -> "Partition":
        """Drop singleton classes (TANE's *stripped partition*)."""
        sizes = self.class_sizes()
        keep_class = sizes > 1
        kept = int(keep_class.sum())
        if kept == self._n_classes:
            return self
        mapping = np.where(
            keep_class, np.cumsum(keep_class, dtype=np.int64) - 1, np.int64(-1)
        )
        relabelled = mapping[self.covered_labels]
        keep_rows = relabelled >= 0
        return Partition.from_covered(
            self.covered_index[keep_rows],
            relabelled[keep_rows].astype(np.int32),
            self._n_rows,
            kept,
            size=self._size,
        )

    # ------------------------------------------------------------------ #
    # products and refinement
    # ------------------------------------------------------------------ #
    def _align(self, other: "Partition") -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rows covered by both partitions and their class ids on each side.

        Returns ``(rows, mine, theirs)`` with ``rows`` sorted.  The merge
        works on the covered-row index arrays (a ``searchsorted`` probe, or a
        direct gather when ``other`` covers every row), so its cost scales
        with the covered subsets, not with the relation.
        """
        ra = self.covered_index
        rb = other.covered_index
        if ra.size == 0 or rb.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int32),
            )
        if rb.size == other._size and int(ra[-1]) < other._size:
            # ``other`` covers every row: class ids line up with row indices.
            return ra, self.covered_labels, other.covered_labels[ra]
        positions = np.searchsorted(rb, ra)
        positions[positions == rb.size] = 0  # out-of-range probes can't match
        hit = rb[positions] == ra
        return (
            ra[hit],
            self.covered_labels[hit],
            other.covered_labels[positions[hit]],
        )

    def refines(self, other: "Partition") -> bool:
        """``True`` iff every class of ``self`` is contained in a class of ``other``."""
        rows, mine, theirs = self._align(other)
        if int(rows.size) != self.covered_rows:
            return False  # some row of self is not covered by other at all
        if rows.size == 0:
            return True
        pairs = mine.astype(np.int64) * max(other._n_classes, 1) + theirs
        return int(np.unique(pairs).size) == self._n_classes

    def product(self, other: "Partition") -> "Partition":
        """The product partition (tuples equivalent under both partitions).

        Only rows present in both partitions survive, mirroring the CTANE
        pattern-partition semantics where tuples not matching the constant
        pattern are dropped.
        """
        rows, mine, theirs = self._align(other)
        count = 0
        row_labels = np.empty(0, dtype=np.int32)
        if rows.size:
            radix = max(other._n_classes, 1)
            pairs = mine.astype(np.int64) * radix + theirs
            row_labels, count = _densify(pairs, max(self._n_classes, 1) * radix)
        return Partition.from_covered(
            rows,
            row_labels,
            self._n_rows,
            count,
            size=max(self._size, other._size),
        )

    def restrict(self, keep: np.ndarray) -> "Partition":
        """The product with a single-class partition, given as a keep-flag array.

        ``keep`` is boolean and aligned with :attr:`covered_index`; rows with
        a false flag drop out and the surviving classes are re-densified.
        This is how CTANE joins a constant item ``(A = c)`` into a cached
        pattern partition.
        """
        rows = self.covered_index[keep]
        sub = self.covered_labels[keep]
        row_labels, count = _densify(sub, max(self._n_classes, 1))
        return Partition.from_covered(
            rows, row_labels, self._n_rows, count, size=self._size
        )

    def refine_by_column(self, column: np.ndarray, span: int) -> "Partition":
        """The product with the attribute partition of an encoded ``column``.

        ``span`` bounds the column's codes (``0 <= code < span``).  Covered
        rows are unchanged; every class splits by the column's value.  This is
        how CTANE joins a wildcard item into a cached pattern partition.
        """
        rows = self.covered_index
        codes = self.covered_labels.astype(np.int64) * span + column[rows]
        row_labels, count = _densify(codes, max(self._n_classes, 1) * span)
        return Partition.from_covered(
            rows, row_labels, self._n_rows, count, size=self._size
        )

    def error(self) -> int:
        """TANE's ``g3``-style error: covered rows minus number of classes.

        For the partition of ``X ∪ {A}`` compared against ``X`` this counts
        the minimum number of tuples to remove for the FD ``X → A`` to hold.
        """
        return self.covered_rows - self.n_classes

    # ------------------------------------------------------------------ #
    # vectorized column checks
    # ------------------------------------------------------------------ #
    def column_all_equal(self, column: np.ndarray, code: int) -> bool:
        """``True`` iff every covered row has ``column[row] == code``."""
        return bool((column[self.covered_index] == code).all())

    def column_constant_on_classes(self, column: np.ndarray) -> bool:
        """``True`` iff every class is constant on ``column``.

        The definition-level wildcard-RHS validity test (``self`` as the LHS
        pattern partition, ``column`` the encoded RHS attribute), computed in
        one vectorized pass.  CTANE's hot path uses the equivalent O(1)
        class-count comparison against the element's own partition instead;
        the property tests cross-check the two formulations.
        """
        if self.covered_index.size == 0:
            return True
        values = column[self.covered_index].astype(np.int64)
        low = int(values.min())
        span = int(values.max()) - low + 1
        pairs = self.covered_labels.astype(np.int64) * span + (values - low)
        return int(np.unique(pairs).size) == self._n_classes


# ---------------------------------------------------------------------- #
# constructors from encoded relations
# ---------------------------------------------------------------------- #
def attribute_partition(matrix: np.ndarray, attributes: Sequence[int]) -> Partition:
    """Partition of all rows of ``matrix`` by the attribute indices given.

    An empty attribute list yields a single class containing every row.
    """
    n_rows = matrix.shape[0]
    if n_rows == 0:
        return Partition.from_labels(np.empty(0, dtype=np.int32), 0, 0)
    if not attributes:
        return Partition.from_labels(np.zeros(n_rows, dtype=np.int32), n_rows, 1)
    labels, count = _encode_columns(matrix[:, a] for a in attributes)
    return Partition.from_labels(labels.astype(np.int32), n_rows, count)


def pattern_partition(
    matrix: np.ndarray,
    attributes: Sequence[int],
    pattern_codes: Sequence[object],
) -> Partition:
    """The CTANE pattern partition ``Π(X, sp)``.

    Parameters
    ----------
    matrix:
        Encoded relation matrix.
    attributes:
        Attribute indices ``X``.
    pattern_codes:
        One entry per attribute of ``X``: either an integer code (constant
        pattern) or :data:`~repro.core.pattern.WILDCARD`.

    Returns
    -------
    Partition
        Only rows matching every constant of the pattern participate; they are
        grouped by their values on the wildcard attributes.  (Grouping by the
        constant attributes as well would be a no-op since all matching rows
        share those values.)
    """
    n_rows = matrix.shape[0]
    if len(attributes) != len(pattern_codes):
        raise ValueError("attributes and pattern codes must have equal length")
    mask = np.ones(n_rows, dtype=bool)
    wildcard_attrs: List[int] = []
    for attr, code in zip(attributes, pattern_codes):
        if is_wildcard(code):
            wildcard_attrs.append(attr)
        else:
            mask &= matrix[:, attr] == int(code)
    rows = np.nonzero(mask)[0]
    if rows.size == 0:
        return Partition.from_covered(
            rows, np.empty(0, dtype=np.int32), n_rows, 0, size=n_rows
        )
    if not wildcard_attrs:
        return Partition.from_covered(
            rows, np.zeros(rows.size, dtype=np.int32), n_rows, 1, size=n_rows
        )
    sub = matrix[rows]
    grouped, count = _encode_columns(sub[:, a] for a in wildcard_attrs)
    return Partition.from_covered(
        rows, grouped.astype(np.int32), n_rows, count, size=n_rows
    )


def matching_rows(
    matrix: np.ndarray,
    attributes: Sequence[int],
    pattern_codes: Sequence[object],
) -> np.ndarray:
    """Row indices matching the constants of a pattern (wildcards ignored)."""
    n_rows = matrix.shape[0]
    mask = np.ones(n_rows, dtype=bool)
    for attr, code in zip(attributes, pattern_codes):
        if not is_wildcard(code):
            mask &= matrix[:, attr] == int(code)
    return np.nonzero(mask)[0]


__all__ = [
    "Partition",
    "attribute_partition",
    "pattern_partition",
    "matching_rows",
    "WILDCARD",
]
