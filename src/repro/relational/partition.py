"""Equivalence-class partitions.

Partitions are the core data structure of TANE-style algorithms (Section 4.4
of the paper): a set of attributes ``X`` partitions the tuples of a relation
into equivalence classes of tuples agreeing on ``X``.  CTANE generalises this
to *pattern partitions* ``Π(X, sp)``: only tuples matching the constants of
the pattern ``sp`` participate, grouped by their values on the wildcard
attributes of ``X``.

The module provides:

* :class:`Partition` — an immutable partition with products, refinement tests,
  stripping (dropping singleton classes) and the ``g3`` error measure used for
  approximate FDs;
* :func:`attribute_partition` — the partition of a relation by a set of
  attributes;
* :func:`pattern_partition` — the CTANE pattern partition ``Π(X, sp)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pattern import WILDCARD, is_wildcard


class Partition:
    """A partition of row indices into equivalence classes.

    Classes are stored as sorted tuples of row indices and the classes
    themselves are sorted by their first element, which makes partitions
    hashable and deterministically comparable.
    """

    __slots__ = ("classes", "_n_rows")

    def __init__(self, classes: Iterable[Sequence[int]], n_rows: Optional[int] = None):
        normalised = tuple(
            sorted(tuple(sorted(int(i) for i in cls)) for cls in classes if len(cls) > 0)
        )
        self.classes: Tuple[Tuple[int, ...], ...] = normalised
        if n_rows is None:
            n_rows = sum(len(cls) for cls in normalised)
        self._n_rows = n_rows

    # ------------------------------------------------------------------ #
    @property
    def n_classes(self) -> int:
        """Number of equivalence classes, ``|π|``."""
        return len(self.classes)

    @property
    def n_rows(self) -> int:
        """Number of rows covered by the partition."""
        return sum(len(cls) for cls in self.classes)

    def __iter__(self):
        return iter(self.classes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Partition) and other.classes == self.classes

    def __hash__(self) -> int:
        return hash(self.classes)

    def __repr__(self) -> str:
        return f"Partition(n_classes={self.n_classes}, n_rows={self.n_rows})"

    # ------------------------------------------------------------------ #
    def stripped(self) -> "Partition":
        """Drop singleton classes (TANE's *stripped partition*)."""
        return Partition(
            [cls for cls in self.classes if len(cls) > 1], n_rows=self._n_rows
        )

    def refines(self, other: "Partition") -> bool:
        """``True`` iff every class of ``self`` is contained in a class of ``other``."""
        membership: Dict[int, int] = {}
        for idx, cls in enumerate(other.classes):
            for row in cls:
                membership[row] = idx
        for cls in self.classes:
            targets = {membership.get(row, -1) for row in cls}
            if len(targets) != 1 or -1 in targets:
                return False
        return True

    def product(self, other: "Partition") -> "Partition":
        """The product partition (tuples equivalent under both partitions).

        Only rows present in both partitions survive, mirroring the CTANE
        pattern-partition semantics where tuples not matching the constant
        pattern are dropped.
        """
        membership: Dict[int, int] = {}
        for idx, cls in enumerate(other.classes):
            for row in cls:
                membership[row] = idx
        groups: Dict[Tuple[int, int], List[int]] = {}
        for idx, cls in enumerate(self.classes):
            for row in cls:
                other_idx = membership.get(row)
                if other_idx is None:
                    continue
                groups.setdefault((idx, other_idx), []).append(row)
        return Partition(groups.values(), n_rows=self._n_rows)

    def error(self) -> int:
        """TANE's ``g3``-style error: rows minus number of classes.

        For the partition of ``X ∪ {A}`` compared against ``X`` this counts
        the minimum number of tuples to remove for the FD ``X → A`` to hold.
        Here it is simply ``n_rows - n_classes`` of the product partition; the
        FD module combines partitions appropriately.
        """
        return self.n_rows - self.n_classes


# ---------------------------------------------------------------------- #
# constructors from encoded relations
# ---------------------------------------------------------------------- #
def attribute_partition(matrix: np.ndarray, attributes: Sequence[int]) -> Partition:
    """Partition of all rows of ``matrix`` by the attribute indices given.

    An empty attribute list yields a single class containing every row.
    """
    n_rows = matrix.shape[0]
    if n_rows == 0:
        return Partition([], n_rows=0)
    if not attributes:
        return Partition([range(n_rows)], n_rows=n_rows)
    groups: Dict[Tuple[int, ...], List[int]] = {}
    sub = matrix[:, list(attributes)]
    for row_index, key in enumerate(map(tuple, sub.tolist())):
        groups.setdefault(key, []).append(row_index)
    return Partition(groups.values(), n_rows=n_rows)


def pattern_partition(
    matrix: np.ndarray,
    attributes: Sequence[int],
    pattern_codes: Sequence[object],
) -> Partition:
    """The CTANE pattern partition ``Π(X, sp)``.

    Parameters
    ----------
    matrix:
        Encoded relation matrix.
    attributes:
        Attribute indices ``X``.
    pattern_codes:
        One entry per attribute of ``X``: either an integer code (constant
        pattern) or :data:`~repro.core.pattern.WILDCARD`.

    Returns
    -------
    Partition
        Only rows matching every constant of the pattern participate; they are
        grouped by their values on the wildcard attributes.  (Grouping by the
        constant attributes as well would be a no-op since all matching rows
        share those values.)
    """
    n_rows = matrix.shape[0]
    if len(attributes) != len(pattern_codes):
        raise ValueError("attributes and pattern codes must have equal length")
    mask = np.ones(n_rows, dtype=bool)
    wildcard_attrs: List[int] = []
    for attr, code in zip(attributes, pattern_codes):
        if is_wildcard(code):
            wildcard_attrs.append(attr)
        else:
            mask &= matrix[:, attr] == int(code)
    rows = np.nonzero(mask)[0]
    if rows.size == 0:
        return Partition([], n_rows=n_rows)
    if not wildcard_attrs:
        return Partition([rows.tolist()], n_rows=n_rows)
    groups: Dict[Tuple[int, ...], List[int]] = {}
    sub = matrix[np.ix_(rows, wildcard_attrs)]
    for row_index, key in zip(rows.tolist(), map(tuple, sub.tolist())):
        groups.setdefault(key, []).append(row_index)
    return Partition(groups.values(), n_rows=n_rows)


def matching_rows(
    matrix: np.ndarray,
    attributes: Sequence[int],
    pattern_codes: Sequence[object],
) -> np.ndarray:
    """Row indices matching the constants of a pattern (wildcards ignored)."""
    n_rows = matrix.shape[0]
    mask = np.ones(n_rows, dtype=bool)
    for attr, code in zip(attributes, pattern_codes):
        if not is_wildcard(code):
            mask &= matrix[:, attr] == int(code)
    return np.nonzero(mask)[0]


__all__ = [
    "Partition",
    "attribute_partition",
    "pattern_partition",
    "matching_rows",
    "WILDCARD",
]
