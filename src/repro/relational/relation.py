"""Column-oriented relation instances.

:class:`Relation` is the central data container of the library.  It stores raw
values column-wise, exposes a lazily computed dictionary-encoded integer view
(:class:`~repro.relational.encoding.RelationEncoding`) that the discovery
algorithms use, and offers the usual relational helpers (projection, row
selection, active domains, CSV round-trips).

Relations are treated as immutable: all "modifying" operations return new
relations.  The cleaning subpackage builds mutable *repairs* on top of this by
materialising new relations.
"""

from __future__ import annotations

import copy
import hashlib
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.exceptions import RelationError
from repro.relational.encoding import RelationEncoding
from repro.relational.schema import AttributeLike, Schema

Row = Tuple[Hashable, ...]


class Relation:
    """An immutable instance ``r`` of a relation schema ``R``.

    Parameters
    ----------
    schema:
        The :class:`~repro.relational.schema.Schema` (or a list of attribute
        names, which is converted).
    columns:
        A mapping from attribute name to a sequence of values, or a sequence
        of column sequences aligned with the schema order.

    Examples
    --------
    >>> r = Relation.from_rows(["CC", "AC"], [("01", "908"), ("01", "212")])
    >>> r.n_rows, r.arity
    (2, 2)
    >>> r.value(0, "AC")
    '908'
    """

    __slots__ = ("_schema", "_columns", "_encoding", "_fingerprint")

    def __init__(
        self,
        schema: Union[Schema, Sequence[str]],
        columns: Union[Mapping[str, Sequence[Hashable]], Sequence[Sequence[Hashable]]],
    ):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self._schema = schema
        if isinstance(columns, Mapping):
            ordered: List[Tuple[Hashable, ...]] = []
            missing = [name for name in schema.names if name not in columns]
            if missing:
                raise RelationError(f"missing columns for attributes {missing}")
            for name in schema.names:
                ordered.append(tuple(columns[name]))
        else:
            columns = list(columns)
            if len(columns) != schema.arity:
                raise RelationError(
                    f"expected {schema.arity} columns, got {len(columns)}"
                )
            ordered = [tuple(column) for column in columns]
        lengths = {len(column) for column in ordered}
        if len(lengths) > 1:
            raise RelationError(f"columns have inconsistent lengths: {lengths}")
        self._columns: Tuple[Tuple[Hashable, ...], ...] = tuple(ordered)
        self._encoding: Optional[RelationEncoding] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        schema: Union[Schema, Sequence[str]],
        rows: Iterable[Sequence[Hashable]],
    ) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        rows = [tuple(row) for row in rows]
        for row in rows:
            if len(row) != schema.arity:
                raise RelationError(
                    f"row {row!r} has {len(row)} values, expected {schema.arity}"
                )
        columns = [
            tuple(row[j] for row in rows) for j in range(schema.arity)
        ]
        return cls(schema, columns)

    @classmethod
    def from_dicts(
        cls,
        rows: Sequence[Mapping[str, Hashable]],
        schema: Optional[Union[Schema, Sequence[str]]] = None,
    ) -> "Relation":
        """Build a relation from a list of ``{attribute: value}`` mappings."""
        if not rows and schema is None:
            raise RelationError("cannot infer a schema from zero dictionaries")
        if schema is None:
            schema = Schema(list(rows[0].keys()))
        elif not isinstance(schema, Schema):
            schema = Schema(schema)
        tuples = []
        for row in rows:
            try:
                tuples.append(tuple(row[name] for name in schema.names))
            except KeyError as exc:
                raise RelationError(f"row {row!r} is missing attribute {exc}") from None
        return cls.from_rows(schema, tuples)

    @classmethod
    def from_encoded(
        cls,
        schema: Union[Schema, Sequence[str]],
        encoding: RelationEncoding,
        row_indices: Optional[Sequence[int]] = None,
    ) -> "Relation":
        """Materialise a relation (or a row subset of it) from an encoding."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        matrix = encoding.matrix
        if row_indices is not None:
            matrix = matrix[np.asarray(row_indices, dtype=np.int64), :]
        columns = []
        for j in range(schema.arity):
            decoder = encoding.encoders[j]
            columns.append(tuple(decoder.decode(int(code)) for code in matrix[:, j]))
        return cls(schema, columns)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names (schema order)."""
        return self._schema.names

    @property
    def arity(self) -> int:
        """Number of attributes (the paper's ARITY)."""
        return self._schema.arity

    @property
    def n_rows(self) -> int:
        """Number of tuples (the paper's DBSIZE)."""
        return len(self._columns[0]) if self._columns else 0

    def __len__(self) -> int:
        return self.n_rows

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and other._schema == self._schema
            and other._columns == self._columns
        )

    def __hash__(self) -> int:
        return hash((self._schema, self._columns))

    def __repr__(self) -> str:
        return (
            f"Relation(arity={self.arity}, n_rows={self.n_rows}, "
            f"attributes={list(self.attributes)})"
        )

    # ------------------------------------------------------------------ #
    # cell / row / column access
    # ------------------------------------------------------------------ #
    def column(self, attribute: AttributeLike) -> Tuple[Hashable, ...]:
        """The raw values of one column."""
        return self._columns[self._schema.index_of(attribute)]

    def value(self, row: int, attribute: AttributeLike) -> Hashable:
        """The raw value of tuple ``row`` on ``attribute``."""
        return self._columns[self._schema.index_of(attribute)][row]

    def row(self, row: int) -> Row:
        """Tuple ``row`` as a tuple of raw values in schema order."""
        return tuple(column[row] for column in self._columns)

    def rows(self) -> Iterator[Row]:
        """Iterate over all tuples in order."""
        for i in range(self.n_rows):
            yield self.row(i)

    def row_dict(self, row: int) -> Dict[str, Hashable]:
        """Tuple ``row`` as an ``{attribute: value}`` dictionary."""
        return dict(zip(self._schema.names, self.row(row)))

    def to_dicts(self) -> List[Dict[str, Hashable]]:
        """The whole relation as a list of dictionaries."""
        return [self.row_dict(i) for i in range(self.n_rows)]

    def to_rows(self) -> List[Row]:
        """The whole relation as a list of tuples."""
        return list(self.rows())

    # ------------------------------------------------------------------ #
    # derived relations
    # ------------------------------------------------------------------ #
    def project(self, attributes: Sequence[AttributeLike]) -> "Relation":
        """Project onto ``attributes`` (duplicates of rows are kept)."""
        indices = self._schema.indices_of(attributes)
        schema = self._schema.project(attributes)
        return Relation(schema, [self._columns[i] for i in indices])

    def take(self, row_indices: Sequence[int]) -> "Relation":
        """Select the rows with the given indices (in the given order)."""
        rows = [self.row(i) for i in row_indices]
        return Relation.from_rows(self._schema, rows)

    def head(self, n: int) -> "Relation":
        """The first ``n`` rows."""
        return self.take(range(min(n, self.n_rows)))

    def sample(self, n: int, seed: int = 0) -> "Relation":
        """A deterministic random sample of ``n`` rows (without replacement)."""
        if n >= self.n_rows:
            return self
        rng = np.random.default_rng(seed)
        indices = rng.choice(self.n_rows, size=n, replace=False)
        return self.take(sorted(int(i) for i in indices))

    def with_value(self, row: int, attribute: AttributeLike, value: Hashable) -> "Relation":
        """Return a copy of the relation with one cell replaced."""
        j = self._schema.index_of(attribute)
        columns = list(self._columns)
        column = list(columns[j])
        if not 0 <= row < self.n_rows:
            raise RelationError(f"row index {row} out of range")
        column[row] = value
        columns[j] = tuple(column)
        return Relation(self._schema, columns)

    def concat(self, other: "Relation") -> "Relation":
        """Append the rows of ``other`` (same schema required)."""
        if other.schema != self._schema:
            raise RelationError("cannot concatenate relations with different schemas")
        columns = [
            self._columns[j] + other._columns[j] for j in range(self.arity)
        ]
        return Relation(self._schema, columns)

    def distinct(self) -> "Relation":
        """Remove duplicate rows, keeping first occurrences in order."""
        seen = set()
        keep: List[int] = []
        for i, row in enumerate(self.rows()):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        return self.take(keep)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def active_domain(self, attribute: AttributeLike) -> Tuple[Hashable, ...]:
        """Distinct values of ``attribute`` in first-appearance order."""
        seen: Dict[Hashable, None] = {}
        for value in self.column(attribute):
            if value not in seen:
                seen[value] = None
        return tuple(seen.keys())

    def domain_size(self, attribute: AttributeLike) -> int:
        """Size of the active domain of ``attribute``."""
        return len(set(self.column(attribute)))

    def domain_sizes(self) -> Dict[str, int]:
        """Active-domain sizes of every attribute."""
        return {name: self.domain_size(name) for name in self.attributes}

    def value_counts(self, attribute: AttributeLike) -> Dict[Hashable, int]:
        """Frequency of each value of ``attribute``."""
        counts: Dict[Hashable, int] = {}
        for value in self.column(attribute):
            counts[value] = counts.get(value, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # encoded view
    # ------------------------------------------------------------------ #
    @property
    def encoding(self) -> RelationEncoding:
        """The dictionary-encoded integer view (computed lazily, cached)."""
        if self._encoding is None:
            self._encoding = RelationEncoding.from_columns(self._columns)
        return self._encoding

    def encoded_matrix(self) -> np.ndarray:
        """The ``(n_rows, arity)`` int32 code matrix."""
        return self.encoding.matrix

    def fingerprint(self) -> str:
        """A stable content digest of schema and data (computed lazily, cached).

        The serving layer keys its session pool on this: the digest depends
        only on attribute names and the ``repr`` of each column, not on
        object identity or the process's hash seed, so equal relations built
        independently share one pooled session.  Being ``repr``-based it is
        content-faithful for the supported value types (strings, numbers,
        tuples thereof); exotic value objects whose ``repr`` hides state can
        collide, and numerically equal values of different types (``1`` vs
        ``1.0`` vs ``True``) digest differently even though ``==`` holds.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(self._schema.names).encode("utf-8"))
            for column in self._columns:
                digest.update(b"\x00")
                digest.update(repr(column).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (missing names kept)."""
        new_names = [mapping.get(name, name) for name in self._schema.names]
        return Relation(Schema(new_names), list(self._columns))

    def copy(self) -> "Relation":
        """A shallow copy (relations are immutable, so this is cheap)."""
        return copy.copy(self)

    def pretty(self, max_rows: int = 20) -> str:
        """A small fixed-width textual rendering (for examples and docs)."""
        names = list(self.attributes)
        rows = [list(map(str, row)) for row in list(self.rows())[:max_rows]]
        widths = [len(name) for name in names]
        for row in rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell))
        header = " | ".join(name.ljust(widths[j]) for j, name in enumerate(names))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
            for row in rows
        ]
        suffix = []
        if self.n_rows > max_rows:
            suffix.append(f"... ({self.n_rows - max_rows} more rows)")
        return "\n".join([header, rule, *body, *suffix])
