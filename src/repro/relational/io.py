"""CSV import and export for relations.

The paper's experiments load UCI data sets from flat files; this module
provides the equivalent plumbing so that users can point the discovery
algorithms at their own CSV data.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.exceptions import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema

PathLike = Union[str, Path]


def read_csv(
    path: PathLike,
    *,
    has_header: bool = True,
    attribute_names: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    limit: Optional[int] = None,
) -> Relation:
    """Load a relation from a CSV file.

    Parameters
    ----------
    path:
        Path of the CSV file.
    has_header:
        When ``True`` (default) the first row provides the attribute names.
    attribute_names:
        Explicit attribute names; required when ``has_header`` is ``False``
        and, when given together with a header, overrides it.
    delimiter:
        Field separator.
    limit:
        Optional maximum number of data rows to read.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        return _relation_from_reader(
            csv.reader(handle, delimiter=delimiter),
            has_header=has_header,
            attribute_names=attribute_names,
            limit=limit,
        )


def read_csv_text(
    text: str,
    *,
    has_header: bool = True,
    attribute_names: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    limit: Optional[int] = None,
) -> Relation:
    """Load a relation from CSV *text* (an upload body, a snippet).

    Same semantics as :func:`read_csv` — one shared parsing core, so a CSV
    uploaded over HTTP and the same file read by the CLI always produce
    equal relations (and therefore equal fingerprints / shared cache-store
    entries).
    """
    import io as io_mod

    return _relation_from_reader(
        csv.reader(io_mod.StringIO(text), delimiter=delimiter),
        has_header=has_header,
        attribute_names=attribute_names,
        limit=limit,
    )


def _relation_from_reader(
    reader,
    *,
    has_header: bool,
    attribute_names: Optional[Sequence[str]],
    limit: Optional[int],
) -> Relation:
    """The shared CSV-records → Relation core (strip cells, skip blanks)."""
    rows = []
    header: Optional[Sequence[str]] = None
    for i, row in enumerate(reader):
        if i == 0 and has_header:
            header = row
            continue
        if not row:
            continue
        rows.append(tuple(cell.strip() for cell in row))
        if limit is not None and len(rows) >= limit:
            break
    if attribute_names is not None:
        names = list(attribute_names)
    elif header is not None:
        names = [name.strip() for name in header]
    else:
        raise RelationError(
            "attribute_names must be provided when the CSV file has no header"
        )
    return Relation.from_rows(Schema(names), rows)


def write_csv(relation: Relation, path: PathLike, *, delimiter: str = ",") -> None:
    """Write a relation to a CSV file (header row included)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.attributes)
        for row in relation.rows():
            writer.writerow(list(row))
