"""Reference tuple-of-tuples partition implementation.

This module preserves the original, obviously-correct :class:`Partition`
representation (classes as sorted tuples of row indices, Python-dict loops
for products and refinement) that the label-array substrate in
:mod:`repro.relational.partition` replaced.  It exists for two reasons:

* the property tests check that the vectorized implementation agrees with
  this one on randomized inputs (construction, stripping, products,
  refinement, the ``g3`` error);
* ``benchmarks/bench_perf_suite.py`` times both implementations side by
  side, so the speedup of the substrate is re-measured — not merely
  recorded — on every benchmark run.

It is *not* part of the public API and nothing on the hot paths imports it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pattern import is_wildcard


class ReferencePartition:
    """A partition of row indices stored as sorted tuples of tuples."""

    __slots__ = ("classes", "_n_rows")

    def __init__(self, classes: Iterable[Sequence[int]], n_rows: Optional[int] = None):
        normalised = tuple(
            sorted(tuple(sorted(int(i) for i in cls)) for cls in classes if len(cls) > 0)
        )
        self.classes: Tuple[Tuple[int, ...], ...] = normalised
        if n_rows is None:
            n_rows = sum(len(cls) for cls in normalised)
        self._n_rows = n_rows

    # ------------------------------------------------------------------ #
    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def covered_rows(self) -> int:
        return sum(len(cls) for cls in self.classes)

    def __iter__(self):
        return iter(self.classes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReferencePartition) and other.classes == self.classes

    def __hash__(self) -> int:
        return hash(self.classes)

    # ------------------------------------------------------------------ #
    def stripped(self) -> "ReferencePartition":
        return ReferencePartition(
            [cls for cls in self.classes if len(cls) > 1], n_rows=self._n_rows
        )

    def refines(self, other: "ReferencePartition") -> bool:
        membership: Dict[int, int] = {}
        for idx, cls in enumerate(other.classes):
            for row in cls:
                membership[row] = idx
        for cls in self.classes:
            targets = {membership.get(row, -1) for row in cls}
            if len(targets) != 1 or -1 in targets:
                return False
        return True

    def product(self, other: "ReferencePartition") -> "ReferencePartition":
        membership: Dict[int, int] = {}
        for idx, cls in enumerate(other.classes):
            for row in cls:
                membership[row] = idx
        groups: Dict[Tuple[int, int], List[int]] = {}
        for idx, cls in enumerate(self.classes):
            for row in cls:
                other_idx = membership.get(row)
                if other_idx is None:
                    continue
                groups.setdefault((idx, other_idx), []).append(row)
        return ReferencePartition(groups.values(), n_rows=self._n_rows)

    def error(self) -> int:
        return self.covered_rows - self.n_classes


# ---------------------------------------------------------------------- #
def reference_attribute_partition(
    matrix: np.ndarray, attributes: Sequence[int]
) -> ReferencePartition:
    """The original dict-of-groups attribute partition."""
    n_rows = matrix.shape[0]
    if n_rows == 0:
        return ReferencePartition([], n_rows=0)
    if not attributes:
        return ReferencePartition([range(n_rows)], n_rows=n_rows)
    groups: Dict[Tuple[int, ...], List[int]] = {}
    sub = matrix[:, list(attributes)]
    for row_index, key in enumerate(map(tuple, sub.tolist())):
        groups.setdefault(key, []).append(row_index)
    return ReferencePartition(groups.values(), n_rows=n_rows)


def reference_pattern_partition(
    matrix: np.ndarray,
    attributes: Sequence[int],
    pattern_codes: Sequence[object],
) -> ReferencePartition:
    """The original mask-and-group pattern partition ``Π(X, sp)``."""
    n_rows = matrix.shape[0]
    if len(attributes) != len(pattern_codes):
        raise ValueError("attributes and pattern codes must have equal length")
    mask = np.ones(n_rows, dtype=bool)
    wildcard_attrs: List[int] = []
    for attr, code in zip(attributes, pattern_codes):
        if is_wildcard(code):
            wildcard_attrs.append(attr)
        else:
            mask &= matrix[:, attr] == int(code)
    rows = np.nonzero(mask)[0]
    if rows.size == 0:
        return ReferencePartition([], n_rows=n_rows)
    if not wildcard_attrs:
        return ReferencePartition([rows.tolist()], n_rows=n_rows)
    groups: Dict[Tuple[int, ...], List[int]] = {}
    sub = matrix[np.ix_(rows, wildcard_attrs)]
    for row_index, key in zip(rows.tolist(), map(tuple, sub.tolist())):
        groups.setdefault(key, []).append(row_index)
    return ReferencePartition(groups.values(), n_rows=n_rows)


__all__ = [
    "ReferencePartition",
    "reference_attribute_partition",
    "reference_pattern_partition",
]
