"""Dictionary encoding of relation columns.

All discovery algorithms operate on small non-negative integer codes instead
of raw Python values: equality checks become integer comparisons and columns
become dense numpy arrays.  :class:`ColumnEncoder` maps the values of a single
column to codes ``0..n-1`` (in first-appearance order, which keeps encodings
deterministic), and :class:`RelationEncoding` bundles the encoders of a whole
relation together with the encoded integer matrix.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import RelationError


class ColumnEncoder:
    """Bidirectional mapping between raw column values and integer codes.

    Codes are assigned in order of first appearance so that encoding the same
    column twice yields identical codes (important for reproducible tests and
    benchmarks).
    """

    __slots__ = ("_value_to_code", "_code_to_value")

    def __init__(self) -> None:
        self._value_to_code: Dict[Hashable, int] = {}
        self._code_to_value: List[Hashable] = []

    # ------------------------------------------------------------------ #
    @property
    def cardinality(self) -> int:
        """Number of distinct values seen so far (the active domain size)."""
        return len(self._code_to_value)

    def encode(self, value: Hashable) -> int:
        """Return the code of ``value``, assigning a fresh one if unseen."""
        code = self._value_to_code.get(value)
        if code is None:
            code = len(self._code_to_value)
            self._value_to_code[value] = code
            self._code_to_value.append(value)
        return code

    def encode_existing(self, value: Hashable) -> int:
        """Return the code of ``value``; raise if the value was never seen."""
        try:
            return self._value_to_code[value]
        except KeyError:
            raise RelationError(f"value {value!r} is not in the active domain") from None

    def try_encode(self, value: Hashable) -> int:
        """Return the code of ``value`` or ``-1`` if it was never seen."""
        return self._value_to_code.get(value, -1)

    def decode(self, code: int) -> Hashable:
        """Return the raw value for ``code``."""
        try:
            return self._code_to_value[code]
        except IndexError:
            raise RelationError(f"code {code} is out of range") from None

    def __contains__(self, value: Hashable) -> bool:
        return value in self._value_to_code

    def values(self) -> Tuple[Hashable, ...]:
        """All distinct values, ordered by their code."""
        return tuple(self._code_to_value)

    def encode_column(self, values: Iterable[Hashable]) -> np.ndarray:
        """Encode an entire column into an ``int32`` numpy array."""
        return np.fromiter(
            (self.encode(v) for v in values), dtype=np.int32, count=-1
        )


class RelationEncoding:
    """The integer-encoded view of a relation.

    Attributes
    ----------
    matrix:
        ``(n_rows, arity)`` int32 matrix; ``matrix[t, a]`` is the code of the
        value of tuple ``t`` on attribute index ``a``.
    encoders:
        One :class:`ColumnEncoder` per attribute, aligned with schema order.
    """

    __slots__ = ("matrix", "encoders")

    def __init__(self, matrix: np.ndarray, encoders: Sequence[ColumnEncoder]):
        if matrix.ndim != 2:
            raise RelationError("encoded matrix must be two-dimensional")
        if matrix.shape[1] != len(encoders):
            raise RelationError(
                "number of encoders must match the number of columns"
            )
        self.matrix = matrix
        self.encoders = tuple(encoders)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_columns(cls, columns: Sequence[Sequence[Hashable]]) -> "RelationEncoding":
        """Encode raw columns (one sequence per attribute)."""
        encoders = [ColumnEncoder() for _ in columns]
        if columns:
            n_rows = len(columns[0])
        else:
            n_rows = 0
        matrix = np.empty((n_rows, len(columns)), dtype=np.int32)
        for j, (column, encoder) in enumerate(zip(columns, encoders)):
            if len(column) != n_rows:
                raise RelationError("all columns must have the same length")
            matrix[:, j] = encoder.encode_column(column)
        return cls(matrix, encoders)

    @property
    def n_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def arity(self) -> int:
        return int(self.matrix.shape[1])

    def column(self, attr_index: int) -> np.ndarray:
        """Encoded column for attribute index ``attr_index``."""
        return self.matrix[:, attr_index]

    def cardinality(self, attr_index: int) -> int:
        """Active-domain size of attribute index ``attr_index``."""
        return self.encoders[attr_index].cardinality

    def decode_value(self, attr_index: int, code: int) -> Hashable:
        """Decode ``code`` of attribute ``attr_index`` back to the raw value."""
        return self.encoders[attr_index].decode(code)

    def encode_value(self, attr_index: int, value: Hashable) -> int:
        """Encode ``value`` of attribute ``attr_index``; ``-1`` if unseen."""
        return self.encoders[attr_index].try_encode(value)

    def decode_row(self, row: Sequence[int]) -> Tuple[Hashable, ...]:
        """Decode a full encoded row back to raw values."""
        return tuple(
            self.encoders[j].decode(int(code)) for j, code in enumerate(row)
        )
