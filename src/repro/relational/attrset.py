"""Width-unbounded attribute sets.

Every discovery engine reasons about *sets of attribute indices* — difference
sets, minimal covers, lattice nodes, closed-item-set complements.  The
original representation leaned on ``1 << attr`` int64 bitmasks, which caps a
relation at 62 attributes.  :class:`AttrSet` replaces that with a frozen,
sorted tuple of ``int`` indices plus numpy index-array batch helpers, so the
same code path serves a 4-column toy table and a 500-column log schema.

Design constraints (load-bearing — the whole test suite relies on them):

* **frozenset compatibility.**  ``AttrSet`` subclasses
  :class:`collections.abc.Set` and hashes with ``Set._hash()``, the same
  algorithm CPython's ``frozenset`` uses.  ``AttrSet({1, 2}) ==
  frozenset({1, 2})`` and both land in the same hash bucket, so families that
  mix the two (e.g. a store-rehydrated query cache of plain frozensets merged
  into live ``AttrSet`` results) behave as one coherent set family.
* **deterministic iteration.**  Iteration yields indices in ascending order,
  so an ``AttrSet`` never needs ``sorted(...)`` guards to satisfy the REP006
  determinism lint — engines can iterate it directly into output.
* **batch decode.**  The pairwise difference-set scan above 62 attributes
  packs boolean difference rows with :func:`numpy.packbits`;
  :func:`attrset_from_packed` decodes one packed row back into an
  :class:`AttrSet` without a Python-level bit loop.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Set as _AbstractSet
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

import numpy as np


class AttrSet(_AbstractSet):
    """A frozen, ordered set of attribute indices (width-unbounded).

    Supports the full :class:`collections.abc.Set` operator algebra
    (``&``, ``|``, ``-``, ``^``, ``<=`` …) against any other set type;
    operator results are again ``AttrSet``.  Comparisons and binary
    operators against another ``AttrSet`` (or a builtin ``set`` /
    ``frozenset``) take C-speed :class:`frozenset` fast paths — the walk
    engines hammer ``<=`` and ``-`` millions of times per discovery run.
    """

    __slots__ = ("_attrs", "_elems", "_hashcode")

    _attrs: Tuple[int, ...]
    _elems: FrozenSet[int]

    def __init__(self, attrs: Iterable[int] = ()):
        elems = frozenset({int(a) for a in attrs})
        object.__setattr__(self, "_attrs", tuple(sorted(elems)))
        object.__setattr__(self, "_elems", elems)
        object.__setattr__(self, "_hashcode", None)

    @classmethod
    def _from_iterable(cls, iterable: Iterable[int]) -> "AttrSet":
        # collections.abc.Set builds operator results through this hook.
        return cls(iterable)

    @classmethod
    def _from_sorted(
        cls, attrs: Tuple[int, ...], elems: FrozenSet[int]
    ) -> "AttrSet":
        # Internal fast path: callers guarantee attrs == tuple(sorted(elems)).
        self = object.__new__(cls)
        object.__setattr__(self, "_attrs", attrs)
        object.__setattr__(self, "_elems", elems)
        object.__setattr__(self, "_hashcode", None)
        return self

    @classmethod
    def _from_frozenset(cls, elems: FrozenSet[int]) -> "AttrSet":
        return cls._from_sorted(tuple(sorted(elems)), elems)

    @classmethod
    def of(cls, *attrs: int) -> "AttrSet":
        """``AttrSet.of(3, 1, 4)`` — variadic constructor."""
        return cls(attrs)

    @classmethod
    def full(cls, arity: int) -> "AttrSet":
        """The complete attribute set ``{0, …, arity - 1}``."""
        return cls(range(arity))

    @classmethod
    def from_indices(cls, indices: np.ndarray) -> "AttrSet":
        """Build from a numpy index array (any integer dtype)."""
        return cls(int(a) for a in np.asarray(indices).ravel())

    @classmethod
    def from_bitmask(cls, mask: int, exclude: Optional[int] = None) -> "AttrSet":
        """Decode a ``1 << attr`` difference bitmask (any width — Python
        ints are unbounded; only the *numpy* bitmask pipeline caps at 62)."""
        attrs = []
        index = 0
        while mask:
            if mask & 1 and index != exclude:
                attrs.append(index)
            mask >>= 1
            index += 1
        return cls(attrs)

    # -- core Set protocol ------------------------------------------------ #
    def __contains__(self, attr: object) -> bool:
        if type(attr) is int:
            return attr in self._elems
        try:
            needle = int(attr)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        return needle in self._elems

    def __iter__(self) -> Iterator[int]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __hash__(self) -> int:
        code = self._hashcode
        if code is None:
            # frozenset's hash is the Set._hash() algorithm: AttrSet and
            # frozenset of the same indices collide into the same bucket.
            code = hash(self._elems)
            object.__setattr__(self, "_hashcode", code)
        return code

    # -- frozenset fast paths --------------------------------------------- #
    @staticmethod
    def _as_elems(other: object) -> Optional[FrozenSet[int]]:
        if isinstance(other, AttrSet):
            return other._elems
        if isinstance(other, (set, frozenset)):
            return other  # type: ignore[return-value]
        return None

    def __eq__(self, other: object) -> bool:
        elems = self._as_elems(other)
        if elems is None:
            return super().__eq__(other)
        return self._elems == elems

    def __ne__(self, other: object) -> bool:
        elems = self._as_elems(other)
        if elems is None:
            return super().__ne__(other)
        return self._elems != elems

    def __le__(self, other) -> bool:
        elems = self._as_elems(other)
        if elems is None:
            return super().__le__(other)
        return self._elems <= elems

    def __lt__(self, other) -> bool:
        elems = self._as_elems(other)
        if elems is None:
            return super().__lt__(other)
        return self._elems < elems

    def __ge__(self, other) -> bool:
        elems = self._as_elems(other)
        if elems is None:
            return super().__ge__(other)
        return self._elems >= elems

    def __gt__(self, other) -> bool:
        elems = self._as_elems(other)
        if elems is None:
            return super().__gt__(other)
        return self._elems > elems

    def isdisjoint(self, other: Iterable[int]) -> bool:
        elems = self._as_elems(other)
        if elems is None:
            return super().isdisjoint(other)
        return self._elems.isdisjoint(elems)

    def __and__(self, other) -> "AttrSet":
        elems = self._as_elems(other)
        if elems is None:
            return super().__and__(other)
        return AttrSet._from_frozenset(self._elems & elems)

    def __or__(self, other) -> "AttrSet":
        elems = self._as_elems(other)
        if elems is None:
            return super().__or__(other)
        return AttrSet._from_frozenset(self._elems | elems)

    def __sub__(self, other) -> "AttrSet":
        elems = self._as_elems(other)
        if elems is None:
            return super().__sub__(other)
        return AttrSet._from_frozenset(self._elems - elems)

    def __xor__(self, other) -> "AttrSet":
        elems = self._as_elems(other)
        if elems is None:
            return super().__xor__(other)
        return AttrSet._from_frozenset(self._elems ^ elems)

    def __repr__(self) -> str:
        return f"AttrSet({list(self._attrs)!r})"

    def __reduce__(self):
        return (AttrSet, (self._attrs,))

    # -- convenience views ------------------------------------------------ #
    @property
    def as_tuple(self) -> Tuple[int, ...]:
        """The backing sorted tuple of attribute indices."""
        return self._attrs

    @property
    def as_frozenset(self) -> FrozenSet[int]:
        """The backing :class:`frozenset` (for C-speed bulk set algebra)."""
        return self._elems

    @property
    def indices(self) -> np.ndarray:
        """The indices as an ``int64`` array (for fancy-indexing columns)."""
        return np.fromiter(self._attrs, dtype=np.int64, count=len(self._attrs))

    def bitmask(self) -> int:
        """The ``1 << attr`` encoding as an unbounded Python int."""
        mask = 0
        for attr in self._attrs:
            mask |= 1 << attr
        return mask

    def add(self, attr: int) -> "AttrSet":
        """A new set with ``attr`` added (frozen sets never mutate)."""
        attr = int(attr)
        if attr in self._elems:
            return self
        position = bisect_left(self._attrs, attr)
        attrs = self._attrs[:position] + (attr,) + self._attrs[position:]
        return AttrSet._from_sorted(attrs, self._elems | {attr})

    def discard(self, attr: int) -> "AttrSet":
        """A new set with ``attr`` removed (no-op when absent)."""
        attr = int(attr)
        if attr not in self._elems:
            return self
        attrs = tuple(a for a in self._attrs if a != attr)
        return AttrSet._from_sorted(attrs, self._elems - {attr})


#: The canonical empty attribute set (shared — AttrSet is immutable).
EMPTY_ATTRSET = AttrSet()


def pack_bool_rows(rows: np.ndarray) -> np.ndarray:
    """Pack an ``(n, arity)`` boolean matrix into ``(n, ceil(arity/8))``
    uint8 rows (:func:`numpy.packbits` along axis 1).

    Two packed rows are byte-equal iff the attribute sets are equal, so the
    packed form deduplicates with ``np.unique(axis=0)`` or a ``set`` of
    ``bytes`` — the width-unbounded analogue of deduplicating int64 bitmasks.
    """
    return np.packbits(np.asarray(rows, dtype=bool), axis=1)


def attrset_from_packed(
    packed: bytes, arity: int, exclude: Optional[int] = None
) -> AttrSet:
    """Decode one :func:`pack_bool_rows` row back into an :class:`AttrSet`."""
    bits = np.unpackbits(
        np.frombuffer(packed, dtype=np.uint8), count=int(arity)
    )
    attrs = np.nonzero(bits)[0]
    if exclude is not None:
        attrs = attrs[attrs != exclude]
    return AttrSet.from_indices(attrs)


__all__ = [
    "AttrSet",
    "EMPTY_ATTRSET",
    "attrset_from_packed",
    "pack_bool_rows",
]
