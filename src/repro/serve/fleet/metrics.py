"""Router observability: the fleet's own Prometheus instrument bundle.

Reuses the dependency-free primitives of :mod:`repro.obs.promfmt` — the
single shared exposition path.  The exposition covers the routing layer end
to end:

* ``repro_fleet_requests_total{route,status}`` — router responses;
* ``repro_fleet_forwards_total{worker}`` — requests forwarded per worker;
* ``repro_fleet_forward_seconds`` — forward round-trip latency histogram
  (also the source of the honest ``Retry-After`` hints);
* ``repro_fleet_failovers_total{worker}`` — forwards retried away from a
  worker that failed mid-request;
* ``repro_fleet_reuploads_total`` — cached relation bodies replayed onto a
  worker that had never seen the relation (the warm-start handoff);
* ``repro_fleet_throttled_total`` / ``repro_fleet_client_*`` — rate-limit
  rejections, in total and per tracked client (rendered from the bounded
  :class:`~repro.serve.fleet.fairness.ClientRegistry` snapshot, so client-id
  churn cannot grow the exposition without limit);
* ``repro_fleet_queue_depth`` / ``repro_fleet_queue_rejections_total`` — the
  weighted-fair forward queue;
* ``repro_fleet_ring_workers`` / ``repro_fleet_ring_points`` /
  ``repro_fleet_worker_up{worker}`` — ring and membership state.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.obs.promfmt import (
    Counter,
    Gauge,
    Histogram,
    escape_label_value,
    render_family,
)
from repro.serve.http.metrics import HttpMetrics

#: Forward-latency bucket bounds (seconds) — proxy hops are much faster than
#: discovery runs, so the grid starts finer than the service histogram.
FORWARD_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


class FleetMetrics:
    """Instrument bundle + renderer for the router's ``/metrics``."""

    def __init__(self) -> None:
        self.requests_total = Counter(
            "repro_fleet_requests_total",
            "Router responses by route and status code.",
            ("route", "status"),
        )
        self.forwards_total = Counter(
            "repro_fleet_forwards_total",
            "Requests forwarded to each worker.",
            ("worker",),
        )
        self.forward_seconds = Histogram(
            "repro_fleet_forward_seconds",
            "Round-trip seconds of one worker forward.",
            buckets=FORWARD_BUCKETS,
        )
        self.failovers_total = Counter(
            "repro_fleet_failovers_total",
            "Forwards retried on a ring successor after this worker failed.",
            ("worker",),
        )
        self.breaker_skips_total = Counter(
            "repro_fleet_breaker_skips_total",
            "Forwards skipped because the worker's circuit breaker was open.",
            ("worker",),
        )
        self.reuploads_total = Counter(
            "repro_fleet_reuploads_total",
            "Cached relation bodies re-uploaded to a worker during failover.",
        )
        self.throttled_total = Counter(
            "repro_fleet_throttled_total",
            "Requests answered 429 by the per-client rate limiter.",
        )
        self.queue_rejections_total = Counter(
            "repro_fleet_queue_rejections_total",
            "Requests refused because the fair queue's wait room was full.",
        )
        self.queue_depth = Gauge(
            "repro_fleet_queue_depth",
            "Requests waiting for a forward slot right now.",
        )
        self.ring_workers = Gauge(
            "repro_fleet_ring_workers", "Workers currently on the hash ring."
        )
        self.ring_points = Gauge(
            "repro_fleet_ring_points", "Virtual nodes currently on the ring."
        )
        self.worker_up = Gauge(
            "repro_fleet_worker_up",
            "1 when the worker is a ring member, 0 otherwise.",
            ("worker",),
        )
        # Forward-latency aggregates for the Retry-After hints: kept apart
        # from the histogram so reading the mean needs no bucket walk.
        self._latency_lock = threading.Lock()
        self._latency_count = 0
        self._latency_total = 0.0

    # ------------------------------------------------------------------ #
    def observe_forward(self, worker: str, elapsed: float) -> None:
        self.forwards_total.inc(worker=worker)
        self.forward_seconds.observe(elapsed)
        with self._latency_lock:
            self._latency_count += 1
            self._latency_total += elapsed

    def mean_forward_seconds(self) -> Optional[float]:
        """Mean forward round-trip (``None`` before the first forward)."""
        with self._latency_lock:
            if self._latency_count == 0:
                return None
            return self._latency_total / self._latency_count

    # ------------------------------------------------------------------ #
    def render(self, router) -> str:
        """The exposition document; ``router`` supplies live ring/client state."""
        lines: List[str] = []
        lines += self.requests_total.render()
        lines += self.forwards_total.render()
        lines += self.forward_seconds.render()
        lines += self.failovers_total.render()
        lines += self.breaker_skips_total.render()
        lines += self.reuploads_total.render()
        lines += self.throttled_total.render()
        lines += self.queue_rejections_total.render()
        lines += self.queue_depth.render()
        lines += self.ring_workers.render()
        lines += self.ring_points.render()
        lines += self.worker_up.render()
        lines += self._render_breakers(router)
        lines += self._render_clients(router)
        faults = getattr(router, "faults", None)
        if faults is not None:
            lines += HttpMetrics._render_faults(faults.describe())
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_breakers(router) -> List[str]:
        """Breaker states and the shared retry budget, from live router state."""
        lines: List[str] = []
        states = router.breakers.states()
        if states:
            name = "repro_breaker_state"
            lines.append(
                f"# HELP {name} Circuit breaker state per worker "
                "(0=closed, 1=open, 2=half-open)."
            )
            lines.append(f"# TYPE {name} gauge")
            for worker, state in states:
                lines.append(f'{name}{{worker="{escape_label_value(worker)}"}} {state}')
        lines += render_family(
            "repro_fleet_breaker_opened_total",
            "counter",
            "Circuit breaker open transitions across all workers.",
            float(router.breakers.opened_total()),
        )
        budget = router.retry_budget
        lines += render_family(
            "repro_fleet_retry_tokens",
            "gauge",
            "Retry-budget tokens currently available.",
            float(budget.tokens),
        )
        lines += render_family(
            "repro_fleet_retries_total",
            "counter",
            "Failover retries paid for from the retry budget.",
            float(budget.spent_total),
        )
        lines += render_family(
            "repro_fleet_retry_budget_exhausted_total",
            "counter",
            "Failovers abandoned because the retry budget was empty.",
            float(budget.exhausted_total),
        )
        return lines

    @staticmethod
    def _render_clients(router) -> List[str]:
        snapshot = router.clients.snapshot()
        if not snapshot:
            return []
        lines: List[str] = []
        for name, help_text, attribute, kind in (
            ("repro_fleet_client_admitted_total",
             "Requests admitted per tracked client.", "admitted", "counter"),
            ("repro_fleet_client_throttled_total",
             "Requests throttled per tracked client.", "throttled", "counter"),
        ):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for client, stats in sorted(snapshot):
                value = getattr(stats, attribute)
                lines.append(f'{name}{{client="{escape_label_value(client)}"}} {value}')
        name = "repro_fleet_client_queue_depth"
        lines.append(f"# HELP {name} Queued requests per tracked client.")
        lines.append(f"# TYPE {name} gauge")
        for client, _stats in sorted(snapshot):
            depth = router.queue.depth_of(client)
            lines.append(f'{name}{{client="{escape_label_value(client)}"}} {depth}')
        return lines


__all__ = ["FORWARD_BUCKETS", "FleetMetrics"]
