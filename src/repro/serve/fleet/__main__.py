"""``python -m repro.serve.fleet`` — the ``repro-fleet`` router command."""

import sys

from repro.serve.fleet.cli import main

if __name__ == "__main__":
    sys.exit(main())
