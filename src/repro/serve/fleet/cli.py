"""The ``repro-fleet`` command: the shard router in front of N workers.

Run with ``python -m repro.serve.fleet``::

    repro-serve --port 8321 --cache-dir /var/cache/repro &
    repro-serve --port 8322 --cache-dir /var/cache/repro &
    repro-fleet --port 8400 \\
        --worker http://127.0.0.1:8321 --worker http://127.0.0.1:8322

    curl -s -X POST --data-binary @tax.csv \\
         'http://127.0.0.1:8400/v1/relations?name=tax'
    curl -s -X POST -H 'Content-Type: application/json' \\
         -H 'X-Client-Id: team-a' \\
         -d '{"relation": "tax", "support": 10}' \\
         http://127.0.0.1:8400/v1/discover
    curl -s http://127.0.0.1:8400/metrics

Clients speak to the router exactly as they would to a single worker; the
router pins each relation to one worker (consistent hashing), fails over to
the ring successor when a worker dies or drains, rate-limits per client
(``--client-rate``/``--client-burst``) and schedules contended forwards
weighted-fair.  Workers sharing one ``--cache-dir`` hand warm sessions to
each other across failovers through the persistent store.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional, Sequence

from repro import obs
from repro.obs.cli import (
    add_observability_arguments,
    configure_observability,
    validate_observability,
)
from repro.obs.logs import EventLog
from repro.serve.faults import fault_points_help, resolve_fault_plan
from repro.serve.fleet.router import FleetRouter, RouterConfig


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-fleet`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Route CFD discovery across repro-serve workers "
        "(consistent hashing + failover + per-client fairness).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8400,
        help="TCP port; 0 picks an ephemeral port (default: 8400)",
    )
    parser.add_argument(
        "--worker", action="append", default=[], metavar="URL",
        help="a worker base URL (repeat per worker), "
        "e.g. --worker http://127.0.0.1:8321",
    )
    parser.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per worker on the hash ring (default: 64)",
    )
    parser.add_argument(
        "--client-rate", type=float, default=0.0, metavar="RPS",
        help="per-client token-bucket rate in requests/second; "
        "0 disables rate limiting (default: 0)",
    )
    parser.add_argument(
        "--client-burst", type=float, default=16.0,
        help="per-client token-bucket burst capacity (default: 16)",
    )
    parser.add_argument(
        "--forward-slots", type=int, default=16,
        help="concurrent forwards; more wait weighted-fair (default: 16)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=64,
        help="forwards allowed to wait for a slot before 503 (default: 64)",
    )
    parser.add_argument(
        "--deadline", type=float, default=60.0, metavar="SECONDS",
        help="per-forward deadline; 0 disables it (default: 60)",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=32 * 2 ** 20,
        help="request body cap in bytes (default: 32 MiB)",
    )
    parser.add_argument(
        "--health-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between worker health sweeps (default: 1)",
    )
    parser.add_argument(
        "--fail-after", type=int, default=2,
        help="consecutive failed polls before a worker leaves the ring "
        "(default: 2)",
    )
    parser.add_argument(
        "--upload-cache-bytes", type=int, default=64 * 2 ** 20,
        help="byte budget of the raw upload cache backing failover "
        "re-uploads (default: 64 MiB)",
    )
    parser.add_argument(
        "--breaker-fail-threshold", type=int, default=3,
        help="consecutive transport failures that open a worker's circuit "
        "breaker (default: 3)",
    )
    parser.add_argument(
        "--breaker-reset", type=float, default=5.0, metavar="SECONDS",
        help="seconds an open breaker waits before one half-open probe "
        "(default: 5)",
    )
    parser.add_argument(
        "--retry-budget-ratio", type=float, default=0.1,
        help="retry tokens earned per forwarded request; each failover "
        "retry spends one (default: 0.1)",
    )
    parser.add_argument(
        "--retry-budget-capacity", type=float, default=10.0,
        help="retry-token bucket capacity (default: 10)",
    )
    parser.add_argument(
        "--backoff-base", type=float, default=0.05, metavar="SECONDS",
        help="base of the jittered exponential failover backoff; 0 "
        "disables backoff (default: 0.05)",
    )
    parser.add_argument(
        "--backoff-max", type=float, default=2.0, metavar="SECONDS",
        help="failover backoff ceiling (default: 2)",
    )
    parser.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="inject a deterministic fault, 'point:kind[:key=value,...]' "
        "(repeatable; merged with $REPRO_FAULTS), e.g. "
        "'fleet.send:reset:p=0.2'; points: " + fault_points_help(),
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed of the fault plan's RNG (default: $REPRO_FAULT_SEED or 0)",
    )
    add_observability_arguments(parser)
    return parser


def _validate(args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    if not args.worker:
        parser.error("at least one --worker URL is required")
    if args.vnodes < 1:
        parser.error("--vnodes must be at least 1")
    if args.forward_slots < 1:
        parser.error("--forward-slots must be at least 1")
    if args.max_queue < 0:
        parser.error("--max-queue must be at least 0")
    if args.client_rate < 0:
        parser.error("--client-rate must be at least 0")
    if args.client_burst < 1:
        parser.error("--client-burst must be at least 1")
    if args.deadline < 0:
        parser.error("--deadline must be at least 0")
    if args.health_interval <= 0:
        parser.error("--health-interval must be positive")
    if args.fail_after < 1:
        parser.error("--fail-after must be at least 1")
    if args.breaker_fail_threshold < 1:
        parser.error("--breaker-fail-threshold must be at least 1")
    if args.breaker_reset < 0:
        parser.error("--breaker-reset must be at least 0")
    if args.retry_budget_ratio < 0:
        parser.error("--retry-budget-ratio must be at least 0")
    if args.retry_budget_capacity < 1:
        parser.error("--retry-budget-capacity must be at least 1")
    if args.backoff_base < 0:
        parser.error("--backoff-base must be at least 0")
    if args.backoff_max < 0:
        parser.error("--backoff-max must be at least 0")
    validate_observability(args, parser)


def config_from_args(
    args: argparse.Namespace, log: Optional[EventLog] = None
) -> RouterConfig:
    try:
        faults = resolve_fault_plan(args.fault, args.fault_seed)
    except ValueError as exc:
        raise SystemExit(f"repro-fleet: {exc}")
    if faults is not None:
        (log or EventLog("router")).event(
            "faults.active",
            seed=faults.seed,
            rules=[rule.spec() for rule in faults.rules()],
        )
    return RouterConfig(
        host=args.host,
        port=args.port,
        workers=list(args.worker),
        vnodes=args.vnodes,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        forward_slots=args.forward_slots,
        max_queue=args.max_queue,
        request_timeout=args.deadline or None,
        max_body_bytes=args.max_body_bytes,
        health_interval=args.health_interval,
        fail_after=args.fail_after,
        upload_cache_bytes=args.upload_cache_bytes,
        breaker_fail_threshold=args.breaker_fail_threshold,
        breaker_reset_seconds=args.breaker_reset,
        retry_budget_ratio=args.retry_budget_ratio,
        retry_budget_capacity=args.retry_budget_capacity,
        backoff_base=args.backoff_base,
        backoff_max=args.backoff_max,
        faults=faults,
    )


async def serve(config: RouterConfig, log: Optional[EventLog] = None) -> None:
    """Start the router, wire signals to a clean stop, run until stopped."""
    log = log or EventLog("router")
    router = FleetRouter(config)
    await router.start()
    loop = asyncio.get_running_loop()

    def request_stop() -> None:
        asyncio.ensure_future(router.stop())

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without loop signal support (Windows)
    members = router.membership.members()
    log.event(
        "router.listening",
        address=f"http://{config.host}:{router.port}",
        workers_healthy=len(members),
        workers_total=len(config.workers),
        vnodes=config.vnodes,
    )
    await router.wait_stopped()
    log.event("router.stopped")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-fleet`` command; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(args, parser)
    log = configure_observability(args, "router")
    config = config_from_args(args, log)
    try:
        asyncio.run(serve(config, log))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C fallback
        pass
    finally:
        obs.get_tracer().close()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
