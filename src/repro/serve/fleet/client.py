"""A minimal asyncio HTTP/1.1 client for router → worker forwarding.

The counterpart of :mod:`repro.serve.http.protocol` on the client side, and
just as deliberately small: request line + headers + fixed-length body out,
status line + headers in, body either ``Content-Length`` or chunked.  A
chunked body (the workers' JSONL rule streams) is surfaced as an async
iterator of raw chunks so the router can re-stream it to its own client
without buffering an unbounded tableau in memory.

Connections are pooled per worker (keep-alive): a forward takes an idle
connection when one exists, and returns it after a cleanly-finished
fixed-length exchange.  Streamed responses and error paths close the
connection instead — cheap insurance against half-consumed bodies poisoning
the pool.  Connection failures raise :class:`WorkerUnavailableError`, which
is the router's failover trigger.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro import obs
from repro.exceptions import DiscoveryError
from repro.serve.faults import (
    FAULT_POINT_FLEET_POLL,
    FAULT_POINT_FLEET_SEND,
    FaultPlan,
)

#: Caps mirroring the server-side parser: a worker answering absurd heads is
#: treated as broken, not buffered.
MAX_STATUS_LINE_BYTES = 8192
MAX_HEADER_BYTES = 65536

#: Idle connections kept per worker.
MAX_IDLE_PER_WORKER = 4


class WorkerUnavailableError(DiscoveryError):
    """The worker could not be reached or answered garbage — fail over."""


class WorkerResponse:
    """One upstream response: status, headers, and exactly one body form.

    ``body`` is set for fixed-length responses; ``chunks`` (an async
    iterator) for chunked ones.  Exactly one of the two is non-``None``.
    """

    def __init__(
        self,
        status: int,
        headers: Dict[str, str],
        body: Optional[bytes] = None,
        chunks: Optional[AsyncIterator[bytes]] = None,
    ):
        self.status = status
        self.headers = headers
        self.body = body
        self.chunks = chunks

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "application/json")

    def json(self) -> object:
        """The fixed-length body decoded as JSON (``None`` when undecodable)."""
        if self.body is None:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None


class WorkerClient:
    """Keep-alive HTTP client over the fleet's workers, addressed by URL."""

    def __init__(
        self,
        *,
        connect_timeout: float = 5.0,
        faults: Optional[FaultPlan] = None,
    ):
        self._connect_timeout = connect_timeout
        self._faults = faults
        self._idle: Dict[str, List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]] = {}

    async def _visit_fault(self, worker: str, target: str) -> None:
        """Visit the client's injection point before an exchange.

        Health probes visit ``fleet.poll`` and everything else visits
        ``fleet.send`` — two traffic classes, so a drill can flap the data
        path deterministically without the membership poller racing it for
        the armed rule (or flap the poller alone, with ``fleet.poll:...``).

        Runs in the default executor so an injected latency fault never
        blocks the event loop.  An injected connection reset surfaces as
        :class:`WorkerUnavailableError` — exactly the failover signal a real
        mid-flight reset would produce.
        """
        if self._faults is None:
            return
        point = (
            FAULT_POINT_FLEET_POLL
            if target == "/healthz"
            else FAULT_POINT_FLEET_SEND
        )
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self._faults.visit, point)
        except ConnectionResetError as exc:
            raise WorkerUnavailableError(
                f"worker {worker} dropped (injected): {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    @staticmethod
    def endpoint(worker: str) -> Tuple[str, int]:
        """``(host, port)`` of a worker URL like ``http://127.0.0.1:8321``."""
        split = urlsplit(worker if "//" in worker else f"//{worker}")
        if not split.hostname or not split.port:
            raise DiscoveryError(f"worker URL needs host and port: {worker!r}")
        return split.hostname, split.port

    async def _connect(
        self, worker: str
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        idle = self._idle.get(worker)
        while idle:
            reader, writer = idle.pop()
            if not writer.is_closing() and not reader.at_eof():
                return reader, writer
            self._discard(writer)
        host, port = self.endpoint(worker)
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), self._connect_timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise WorkerUnavailableError(f"cannot reach worker {worker}: {exc}") from exc

    def _park(self, worker: str, reader, writer) -> None:
        idle = self._idle.setdefault(worker, [])
        if len(idle) < MAX_IDLE_PER_WORKER and not writer.is_closing():
            idle.append((reader, writer))
        else:
            self._discard(writer)

    @staticmethod
    def _discard(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # noqa: BLE001 - closing a dead socket is best-effort
            pass

    async def close(self) -> None:
        """Close every pooled connection (router shutdown)."""
        for idle in self._idle.values():
            for _reader, writer in idle:
                self._discard(writer)
        self._idle.clear()

    # ------------------------------------------------------------------ #
    async def request(
        self,
        worker: str,
        method: str,
        target: str,
        *,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> WorkerResponse:
        """One HTTP exchange with ``worker``; raises
        :class:`WorkerUnavailableError` on transport failure.

        Fixed-length responses are read fully (and the connection returned
        to the pool); chunked responses come back as a chunk iterator that
        owns — and finally closes — the connection.
        """
        await self._visit_fault(worker, target)
        reader, writer = await self._connect(worker)
        try:
            head = [f"{method} {target} HTTP/1.1"]
            host, port = self.endpoint(worker)
            sent = {"host": f"{host}:{port}", "content-length": str(len(body))}
            for name, value in (headers or {}).items():
                sent[name.lower()] = value
            # Every hop under an active span carries the trace context: the
            # worker continues the router's trace (forwards, failover
            # retries and 404 re-uploads alike).  Health polls run outside
            # any span, so they stay header-free.
            span = obs.current_span()
            if span is not None and span.sampled:
                sent.setdefault(obs.TRACEPARENT_HEADER, span.traceparent())
            head.extend(f"{name}: {value}" for name, value in sent.items())
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            if body:
                writer.write(body)
            await writer.drain()
            return await asyncio.wait_for(
                self._read_response(worker, reader, writer), timeout
            )
        except WorkerUnavailableError:
            self._discard(writer)
            raise
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            self._discard(writer)
            raise WorkerUnavailableError(f"worker {worker} dropped: {exc}") from exc
        except asyncio.TimeoutError:
            self._discard(writer)
            raise
        except asyncio.CancelledError:
            self._discard(writer)
            raise

    async def _read_response(
        self, worker: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> WorkerResponse:
        line = await reader.readline()
        if not line:
            raise WorkerUnavailableError(f"worker {worker} closed before answering")
        if len(line) > MAX_STATUS_LINE_BYTES:
            raise WorkerUnavailableError(f"worker {worker} sent an absurd status line")
        parts = line.decode("latin-1").strip().split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise WorkerUnavailableError(
                f"worker {worker} answered a malformed status line"
            )
        status = int(parts[1])
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise WorkerUnavailableError(f"worker {worker} sent absurd headers")
            name, sep, value = line.decode("latin-1").rstrip("\r\n").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        if "chunked" in headers.get("transfer-encoding", "").lower():
            return WorkerResponse(
                status, headers, chunks=self._iter_chunks(reader, writer)
            )
        length = int(headers.get("content-length", "0") or 0)
        payload = await reader.readexactly(length) if length else b""
        if keep_alive:
            self._park(worker, reader, writer)
        else:
            self._discard(writer)
        return WorkerResponse(status, headers, body=payload)

    async def _iter_chunks(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> AsyncIterator[bytes]:
        """Decode a chunked body; the iterator owns and closes the socket."""
        try:
            while True:
                size_line = await reader.readline()
                try:
                    size = int(size_line.strip().split(b";")[0], 16)
                except ValueError as exc:
                    raise WorkerUnavailableError(
                        f"malformed chunk header {size_line!r}"
                    ) from exc
                if size == 0:
                    await reader.readline()  # trailing CRLF of the last chunk
                    return
                chunk = await reader.readexactly(size)
                await reader.readexactly(2)  # chunk CRLF
                yield chunk
        finally:
            # Streamed connections never rejoin the pool: a half-consumed
            # stream would poison the next exchange.
            self._discard(writer)

    # ------------------------------------------------------------------ #
    async def healthz(
        self, worker: str, *, timeout: float = 5.0
    ) -> Optional[Dict[str, object]]:
        """The worker's ``/healthz`` document, or ``None`` when unreachable."""
        try:
            response = await self.request(worker, "GET", "/healthz", timeout=timeout)
        except (WorkerUnavailableError, asyncio.TimeoutError):
            return None
        document = response.json()
        if not isinstance(document, dict):
            return None
        document["_status_code"] = response.status
        return document


__all__ = [
    "WorkerClient",
    "WorkerResponse",
    "WorkerUnavailableError",
]
