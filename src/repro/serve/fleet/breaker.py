"""Per-worker circuit breakers and the fleet's retry budget.

The router's failover loop walks a preference list; this module decides
*whether each step is worth taking*.  Two complementary guards:

:class:`CircuitBreaker` — one per worker, a three-state machine over
**transport** failures (connection refused/reset, malformed answers — the
``WorkerUnavailableError`` family; a worker answering an honest ``503`` is
alive and does not trip it):

* ``CLOSED`` — healthy; forwards flow.  ``fail_threshold`` *consecutive*
  failures trip the breaker to ``OPEN``.
* ``OPEN`` — every forward to this worker is skipped without touching the
  socket, so a flapping worker cannot tax each request with a connect
  timeout.  After ``reset_seconds`` the breaker admits exactly one probe.
* ``HALF_OPEN`` — one probe in flight; success closes the breaker, failure
  re-opens it (and restarts the reset clock).  Concurrent forwards keep
  skipping while the probe is out.

:class:`RetryBudget` — a token bucket over *retries* (failover attempts past
the first), shared across the router.  Every first attempt earns ``ratio``
tokens; every retry spends one.  During an outage broad enough that most
requests retry, the budget drains and the router starts failing fast instead
of multiplying load onto the survivors — the classic retry-storm brake.
The per-request refill keeps occasional retries working forever under a
mostly-healthy steady state.

Both are lock-free by construction: the router mutates them only from its
event loop.  The metrics renderer reads from another thread, but only ever
single word-sized snapshots (ints/floats), which CPython reads atomically.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

#: Breaker state encoding used by the ``repro_breaker_state`` gauge.
STATE_CLOSED = 0
STATE_OPEN = 1
STATE_HALF_OPEN = 2

_STATE_NAMES = {
    STATE_CLOSED: "closed",
    STATE_OPEN: "open",
    STATE_HALF_OPEN: "half_open",
}


class CircuitBreaker:
    """One worker's transport-failure state machine (see module docstring)."""

    def __init__(
        self,
        fail_threshold: int = 3,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if fail_threshold < 1:
            raise ValueError("fail_threshold must be at least 1")
        if reset_seconds < 0:
            raise ValueError("reset_seconds must be non-negative")
        self._fail_threshold = fail_threshold
        self._reset_seconds = reset_seconds
        self._clock = clock
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opened_total = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> int:
        return self._state

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self._state]

    def allow(self) -> bool:
        """May a forward go to this worker right now?

        An ``OPEN`` breaker past its reset deadline transitions to
        ``HALF_OPEN`` and admits the caller as the single probe; the
        outcome must be reported via :meth:`record_success` /
        :meth:`record_failure` or the breaker stays half-open.
        """
        if self._state == STATE_CLOSED:
            return True
        if self._state == STATE_OPEN:
            if self._clock() - self._opened_at >= self._reset_seconds:
                self._state = STATE_HALF_OPEN
                self._probe_in_flight = True
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def cancel_probe(self) -> None:
        """Release an admitted probe that was never actually sent.

        Without this a probe admitted by :meth:`allow` but abandoned before
        the exchange (retry budget dry, forward timed out upstream) would
        leave the breaker half-open and refusing probes forever.
        """
        self._probe_in_flight = False

    def record_success(self) -> None:
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self) -> None:
        self._probe_in_flight = False
        self._consecutive_failures += 1
        if self._state == STATE_HALF_OPEN:
            self._open()
        elif (
            self._state == STATE_CLOSED
            and self._consecutive_failures >= self._fail_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self.opened_total += 1

    def seconds_until_probe(self) -> float:
        """How long until an ``OPEN`` breaker admits a probe (0 otherwise)."""
        if self._state != STATE_OPEN:
            return 0.0
        return max(0.0, self._reset_seconds - (self._clock() - self._opened_at))


class BreakerBoard:
    """The router's breakers, one per worker URL, created on first sight."""

    def __init__(
        self,
        fail_threshold: int = 3,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._fail_threshold = fail_threshold
        self._reset_seconds = reset_seconds
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, worker: str) -> CircuitBreaker:
        breaker = self._breakers.get(worker)
        if breaker is None:
            breaker = CircuitBreaker(
                self._fail_threshold, self._reset_seconds, self._clock
            )
            self._breakers[worker] = breaker
        return breaker

    def allow(self, worker: str) -> bool:
        return self.breaker(worker).allow()

    def record_success(self, worker: str) -> None:
        self.breaker(worker).record_success()

    def record_failure(self, worker: str) -> None:
        self.breaker(worker).record_failure()

    def states(self) -> List[Tuple[str, int]]:
        """``(worker, state)`` pairs, sorted — the gauge's label set."""
        return sorted(
            (worker, breaker.state) for worker, breaker in self._breakers.items()
        )

    def opened_total(self) -> int:
        return sum(breaker.opened_total for breaker in self._breakers.values())

    def min_seconds_until_probe(self) -> float:
        """The soonest any open breaker will probe (0 when none are open)."""
        waits = [
            breaker.seconds_until_probe()
            for breaker in self._breakers.values()
            if breaker.state == STATE_OPEN
        ]
        return min(waits) if waits else 0.0


class RetryBudget:
    """A token bucket over failover retries (see module docstring).

    ``ratio`` tokens are earned per first attempt, one token is spent per
    retry, and the balance is clamped to ``[0, capacity]`` — the ceiling
    stops a long quiet period from banking an unbounded retry storm, while
    the per-request refill keeps isolated failures retryable forever under
    a mostly-healthy steady state.
    """

    def __init__(self, ratio: float = 0.1, capacity: float = 10.0):
        if ratio < 0:
            raise ValueError("ratio must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._ratio = ratio
        self._capacity = capacity
        self._tokens = capacity
        self.spent_total = 0
        self.exhausted_total = 0

    @property
    def tokens(self) -> float:
        return self._tokens

    def on_request(self) -> None:
        """Earn the per-request refill (called once per forward, not retry)."""
        self._tokens = min(self._capacity, self._tokens + self._ratio)

    def try_spend(self) -> bool:
        """Spend one token for a retry; ``False`` means fail fast instead."""
        if self._tokens < 1.0:
            self.exhausted_total += 1
            return False
        self._tokens -= 1.0
        self.spent_total += 1
        return True


__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "RetryBudget",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]
