"""Fleet membership: health-polled worker liveness driving the hash ring.

The router is configured with a *static roster* of worker URLs; membership
decides, continuously, which of them are ring members.  A background task
polls each worker's ``/healthz`` every ``interval`` seconds:

* ``200 {"status": "ok"}``       → member (added back if it was out);
* ``503 {"status": "draining"}`` → removed immediately — a draining worker
  finishes its in-flight requests but must take no new arcs;
* unreachable                    → removed after ``fail_after`` consecutive
  misses (one lost poll is not an outage).

The router can also call :meth:`mark_dead` the instant a *forward* hits a
connection error — failover must not wait for the next poll tick.  A dead
worker keeps being polled and rejoins the ring on its first healthy answer,
at which point the ring's determinism hands it back exactly the arcs it
owned before (warm sessions and store entries intact).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional

from repro.serve.fleet.client import WorkerClient
from repro.serve.fleet.ring import HashRing

#: Consecutive failed polls before an unreachable worker leaves the ring.
DEFAULT_FAIL_AFTER = 2

#: Seconds between health sweeps.
DEFAULT_INTERVAL = 1.0


class WorkerHealth:
    """One worker's last observed health state."""

    __slots__ = ("url", "member", "status", "failures", "polls")

    def __init__(self, url: str):
        self.url = url
        self.member = False
        self.status = "unknown"
        self.failures = 0
        self.polls = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "url": self.url,
            "member": self.member,
            "status": self.status,
            "consecutive_failures": self.failures,
        }


class FleetMembership:
    """Keeps the ring's member set in step with observed worker health."""

    def __init__(
        self,
        workers: List[str],
        ring: HashRing,
        client: WorkerClient,
        *,
        interval: float = DEFAULT_INTERVAL,
        fail_after: int = DEFAULT_FAIL_AFTER,
        poll_timeout: float = 2.0,
        on_change: Optional[Callable[[str, bool], None]] = None,
    ):
        self._ring = ring
        self._client = client
        self._interval = interval
        self._fail_after = max(1, fail_after)
        self._poll_timeout = poll_timeout
        self._on_change = on_change
        self._health: Dict[str, WorkerHealth] = {
            url: WorkerHealth(url) for url in workers
        }
        self._task: Optional["asyncio.Task[None]"] = None
        self._wake = asyncio.Event()

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> List[str]:
        """The configured roster (members and non-members alike)."""
        return list(self._health)

    def members(self) -> List[str]:
        return [h.url for h in self._health.values() if h.member]

    def info(self) -> List[Dict[str, object]]:
        return [h.to_dict() for h in self._health.values()]

    # ------------------------------------------------------------------ #
    def _set_member(self, health: WorkerHealth, member: bool) -> None:
        if member and self._ring.add(health.url):
            health.member = True
            if self._on_change is not None:
                self._on_change(health.url, True)
        elif not member and self._ring.remove(health.url):
            health.member = False
            if self._on_change is not None:
                self._on_change(health.url, False)
        else:
            health.member = member

    def mark_dead(self, worker: str) -> None:
        """Evict a worker now (a forward just hit a connection error)."""
        health = self._health.get(worker)
        if health is None:
            return
        health.status = "dead"
        health.failures = max(health.failures, self._fail_after)
        self._set_member(health, False)
        self._wake.set()  # re-poll soon: it may come straight back

    # ------------------------------------------------------------------ #
    async def poll_once(self) -> None:
        """One health sweep over the whole roster (concurrently)."""
        await asyncio.gather(
            *(self._poll_worker(h) for h in self._health.values())
        )

    async def _poll_worker(self, health: WorkerHealth) -> None:
        health.polls += 1
        document = await self._client.healthz(
            health.url, timeout=self._poll_timeout
        )
        if document is None:
            health.failures += 1
            if health.failures >= self._fail_after:
                health.status = "unreachable"
                self._set_member(health, False)
            return
        health.failures = 0
        status = str(document.get("status", ""))
        health.status = status or "unknown"
        if status == "ok":
            self._set_member(health, True)
        else:
            # Draining (or any not-ok answer): finish what it has, route
            # nothing new — its arc remaps to the ring successor.
            self._set_member(health, False)

    async def _run(self) -> None:
        while True:
            await self.poll_once()
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), self._interval)
            except asyncio.TimeoutError:
                pass

    async def start(self, *, initial_poll: bool = True) -> None:
        """Begin polling; optionally complete one sweep before returning."""
        if initial_poll:
            await self.poll_once()
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None


__all__ = [
    "DEFAULT_FAIL_AFTER",
    "DEFAULT_INTERVAL",
    "FleetMembership",
    "WorkerHealth",
]
