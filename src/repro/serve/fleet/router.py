"""The fleet router: one front door over N ``repro-serve`` workers.

The router speaks the *same* ``/v1`` API as a worker — clients point at the
router and nothing else changes.  What it adds:

**Shard placement.**  Every request that concerns a relation is keyed by the
relation's content fingerprint and forwarded to the worker owning that key
on the consistent-hash ring (:mod:`~repro.serve.fleet.ring`).  Uploads are
parsed just enough to *compute* the fingerprint (the same code path the
worker uses, so both sides always agree); named references are rewritten to
fingerprints when the router saw the upload; inline-rows discover bodies are
fingerprinted the same way.  One relation → one worker → one warm session,
fleet-wide.

**Failover.**  A forward that hits a dead or draining worker retries down
the ring's preference list — exactly the workers the arc remaps onto.  The
router keeps an LRU byte-budgeted cache of raw upload bodies; when a
successor answers ``404 relation_not_found`` the cached body is replayed
onto it first, and the worker's session pool then warm-starts the expensive
structures from the shared :class:`~repro.serve.store.CacheStore`.

**Multi-tenancy.**  Per-client token buckets answer ``429`` (honest
``Retry-After``) ahead of any forwarding, and a weighted-fair queue
schedules the forward slots so one greedy client cannot monopolise the
fleet (:mod:`~repro.serve.fleet.fairness`).  Clients identify themselves
with ``X-Client-Id``; anonymous connections get a per-connection identity.

The router holds **no discovery state** — killing it loses nothing but the
upload-body cache.  All heavy state stays in the workers and the shared
store.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.devtools.lockcheck import maybe_watch_loop
from repro.obs.export import build_tree
from repro.obs.names import (
    SPAN_FLEET_FAILOVER,
    SPAN_FLEET_FORWARD,
    SPAN_FLEET_QUEUE_WAIT,
    SPAN_FLEET_REQUEST,
)
from repro.serve.faults import FaultPlan
from repro.serve.fleet.breaker import BreakerBoard, RetryBudget
from repro.serve.fleet.client import (
    WorkerClient,
    WorkerResponse,
    WorkerUnavailableError,
)
from repro.serve.fleet.fairness import ClientRegistry, FairQueue, QueueFullError
from repro.serve.fleet.membership import (
    DEFAULT_FAIL_AFTER,
    DEFAULT_INTERVAL,
    FleetMembership,
)
from repro.serve.fleet.metrics import FleetMetrics
from repro.serve.fleet.ring import DEFAULT_VNODES, HashRing
from repro.serve.http import errors
from repro.serve.http.app import (
    MAX_BATCH_REQUESTS,
    relation_from_csv_text,
    relation_from_rows_document,
)
from repro.serve.http.errors import ApiError
from repro.serve.http.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    HttpRequest,
    HttpResponse,
    ProtocolError,
    error_response,
    read_request,
    write_response,
)

#: Named relation references remembered for rewrite (LRU-bounded).
MAX_TRACKED_NAMES = 4096

#: Route labels the router's metrics use (fixed cardinality).
_ROUTES = {
    ("POST", "/v1/relations"): "upload_relation",
    ("GET", "/v1/relations"): "list_relations",
    ("POST", "/v1/discover"): "discover",
    ("POST", "/v1/batch"): "batch",
    ("GET", "/healthz"): "healthz",
    ("GET", "/metrics"): "metrics",
}

#: Headers never forwarded worker→client or client→worker (hop-by-hop).
_HOP_HEADERS = frozenset(
    {"connection", "keep-alive", "transfer-encoding", "content-length", "host"}
)


@dataclass
class RouterConfig:
    """Tunables of one :class:`FleetRouter`."""

    host: str = "127.0.0.1"
    port: int = 8400
    #: Worker base URLs, e.g. ``["http://127.0.0.1:8321", ...]``.
    workers: List[str] = field(default_factory=list)
    vnodes: int = DEFAULT_VNODES
    #: Per-client token-bucket rate (requests/second); ``0`` disables.
    client_rate: float = 0.0
    client_burst: float = 16.0
    #: Concurrent forwards; more wait in weighted-fair order, then 503.
    forward_slots: int = 16
    max_queue: int = 64
    #: Per-forward deadline in seconds (``None`` disables it).
    request_timeout: Optional[float] = 60.0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    keep_alive_timeout: float = 30.0
    #: Health-poll cadence and tolerance.
    health_interval: float = DEFAULT_INTERVAL
    fail_after: int = DEFAULT_FAIL_AFTER
    poll_timeout: float = 2.0
    #: Byte budget of the raw upload-body cache backing failover re-uploads.
    upload_cache_bytes: int = 64 * 2 ** 20
    connect_timeout: float = 5.0
    #: Circuit breaker: consecutive transport failures that open a worker's
    #: breaker, and how long it stays open before admitting one probe.
    breaker_fail_threshold: int = 3
    breaker_reset_seconds: float = 5.0
    #: Retry budget: tokens earned per forward and the bucket's capacity.
    #: Each failover retry spends one token; an empty bucket fails fast.
    retry_budget_ratio: float = 0.1
    retry_budget_capacity: float = 10.0
    #: Exponential backoff between failover attempts (seconds); jitter is
    #: drawn from a seeded RNG so chaos drills replay identically.
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    backoff_seed: int = 0
    #: Optional deterministic fault plan threaded into the worker client.
    faults: Optional[FaultPlan] = None


class UploadCache:
    """LRU byte-budgeted cache of raw upload requests, keyed by fingerprint.

    An entry is everything needed to replay the upload verbatim onto another
    worker: the original target (path + query, so ``?name=``/``?header=``
    survive), the content type, and the raw body bytes.
    """

    def __init__(self, max_bytes: int):
        self._max_bytes = max_bytes
        self._entries: "OrderedDict[str, Tuple[str, str, bytes]]" = OrderedDict()
        self._bytes = 0

    def put(self, fingerprint: str, target: str, content_type: str, body: bytes) -> None:
        if len(body) > self._max_bytes:
            return  # one oversized body must not wipe the whole cache
        old = self._entries.pop(fingerprint, None)
        if old is not None:
            self._bytes -= len(old[2])
        self._entries[fingerprint] = (target, content_type, body)
        self._bytes += len(body)
        while self._bytes > self._max_bytes and self._entries:
            _, (_, _, dropped) = self._entries.popitem(last=False)
            self._bytes -= len(dropped)

    def get(self, fingerprint: str) -> Optional[Tuple[str, str, bytes]]:
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._entries.move_to_end(fingerprint)
        return entry

    @property
    def bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)


class FleetRouter:
    """The asyncio router process: accept loop, placement, failover, WFQ."""

    def __init__(self, config: RouterConfig):
        if not config.workers:
            raise errors.ApiError(500, "internal", "router needs at least one worker")
        self.config = config
        self.ring = HashRing(config.vnodes)
        self.faults = config.faults
        self.client = WorkerClient(
            connect_timeout=config.connect_timeout, faults=config.faults
        )
        self.breakers = BreakerBoard(
            config.breaker_fail_threshold, config.breaker_reset_seconds
        )
        self.retry_budget = RetryBudget(
            config.retry_budget_ratio, config.retry_budget_capacity
        )
        self._backoff_rng = random.Random(config.backoff_seed)
        self.membership = FleetMembership(
            config.workers,
            self.ring,
            self.client,
            interval=config.health_interval,
            fail_after=config.fail_after,
            poll_timeout=config.poll_timeout,
        )
        self.clients = ClientRegistry(config.client_rate, config.client_burst)
        self.queue = FairQueue(config.forward_slots, config.max_queue)
        self.metrics = FleetMetrics()
        self.uploads = UploadCache(config.upload_cache_bytes)
        self._names: "OrderedDict[str, str]" = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped: Optional[asyncio.Event] = None
        self._connections = itertools.count(1)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Poll the roster once, then bind (``port=0`` → ephemeral port)."""
        self._stopped = asyncio.Event()
        await self.membership.start(initial_poll=True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.config.port = sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        return self.config.port

    async def wait_stopped(self) -> None:
        if self._stopped is None:
            raise errors.ApiError(500, "internal", "router not started")
        await self._stopped.wait()

    async def stop(self) -> None:
        """Close the listener, the poller and every pooled connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.membership.stop()
        await self.client.close()
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection_id = f"conn-{next(self._connections)}"
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        writer,
                        max_body_bytes=self.config.max_body_bytes,
                        head_timeout=self.config.keep_alive_timeout,
                    )
                except asyncio.TimeoutError:
                    break
                except ProtocolError as exc:
                    response = error_response(
                        ApiError(exc.status, "protocol_error", exc.message)
                    )
                    await write_response(writer, response, keep_alive=False)
                    break
                if request is None:
                    break
                client_id = request.headers.get("x-client-id") or connection_id
                keep_alive = request.keep_alive
                await self._respond_and_write(request, writer, client_id, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # loop teardown cancels lingering keep-alive connections
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route_name(self, request: HttpRequest) -> str:
        method = "GET" if request.method == "HEAD" else request.method
        if request.path == "/v1/traces":
            return "traces"
        if self._trace_id_of(request.path) is not None:
            return "trace"
        return _ROUTES.get((method, request.path), "unrouted")

    @staticmethod
    def _trace_id_of(path: str) -> Optional[str]:
        prefix = "/v1/traces/"
        if not path.startswith(prefix):
            return None
        trace_id = path[len(prefix):]
        if not trace_id or "/" in trace_id:
            return None
        return trace_id

    async def _respond_and_write(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        client_id: str,
        keep_alive: bool,
    ) -> None:
        """Rate limit → fair queue → dispatch → relay; slot held until the
        response (streams included) is fully on the wire."""
        route = self._route_name(request)
        span = obs.get_tracer().start_trace(
            SPAN_FLEET_REQUEST,
            traceparent=request.headers.get(obs.TRACEPARENT_HEADER),
            method=request.method,
            route=route,
        )
        with span:
            guarded = request.path not in ("/healthz", "/metrics") and route not in (
                "traces",
                "trace",
            )
            response: Optional[HttpResponse] = None
            held = False
            if guarded:
                wait = self.clients.admit(client_id)
                if wait is not None:
                    self.metrics.throttled_total.inc()
                    response = error_response(
                        errors.too_many_requests(self._retry_after(extra_wait=wait))
                    )
                else:
                    try:
                        weight = self.clients.weight(client_id)
                        with obs.get_tracer().start_span(SPAN_FLEET_QUEUE_WAIT):
                            await self.queue.acquire(client_id, weight=weight)
                        held = True
                    except QueueFullError:
                        self.metrics.queue_rejections_total.inc()
                        response = error_response(
                            errors.overloaded(self._retry_after())
                        )
            try:
                if response is None:
                    try:
                        response = await self._dispatch(request, client_id)
                    except ApiError as exc:
                        response = error_response(exc)
                    except asyncio.TimeoutError:
                        response = error_response(
                            errors.deadline_exceeded(
                                self.config.request_timeout or 0.0
                            )
                        )
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:  # noqa: BLE001 - last-resort mapping
                        response = error_response(errors.map_exception(exc))
                span.set_attr("status", response.status)
                if response.status >= 500:
                    span.set_status("error")
                if span.trace_id is not None and not any(
                    name.lower() == obs.TRACE_ID_HEADER
                    for name in response.headers
                ):
                    response.headers[obs.TRACE_ID_HEADER] = span.trace_id
                await write_response(
                    writer,
                    response,
                    keep_alive=keep_alive,
                    head_only=request.method == "HEAD",
                )
            finally:
                if held:
                    self.queue.release()
                if response is not None:
                    self.metrics.requests_total.inc(
                        route=route, status=response.status
                    )

    def _retry_after(self, extra_wait: float = 0.0) -> int:
        """The honest hint: observed forward latency × load, floor 1s."""
        return errors.retry_after_hint(
            self.metrics.mean_forward_seconds(),
            self.queue.depth,
            self.queue.slots,
            floor=extra_wait,
        )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: HttpRequest, client_id: str) -> HttpResponse:
        method = "GET" if request.method == "HEAD" else request.method
        path = request.path
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/metrics" and method == "GET":
            return self._render_metrics()
        if path == "/v1/relations" and method == "POST":
            return await self._upload(request, client_id)
        if path == "/v1/relations" and method == "GET":
            return await self._list_relations(client_id)
        if path == "/v1/discover" and method == "POST":
            return await self._discover(request, client_id)
        if path == "/v1/batch" and method == "POST":
            return await self._batch(request, client_id)
        if path == "/v1/traces" and method == "GET":
            return self._traces_summary()
        trace_id = self._trace_id_of(path)
        if trace_id is not None:
            if method != "GET":
                raise errors.method_not_allowed(request.method, path)
            return await self._trace(trace_id, client_id)
        if path in {p for (_m, p) in _ROUTES} or path == "/v1/traces":
            raise errors.method_not_allowed(request.method, path)
        raise errors.not_found(f"no route for {path}")

    def _traces_summary(self) -> HttpResponse:
        """The router's own buffered traces (summaries; no worker fan-out)."""
        tracer = obs.get_tracer()
        return HttpResponse.json(
            {
                "enabled": tracer.enabled,
                "sample_rate": tracer.sample_rate,
                "buffered_spans": len(tracer.ring),
                "traces": tracer.ring.traces(),
            }
        )

    async def _trace(self, trace_id: str, client_id: str) -> HttpResponse:
        """One merged trace: the router's spans plus every member worker's.

        Fan-out is best-effort — an unreachable worker contributes nothing
        (its spans are simply absent) — and records are deduplicated by
        ``span_id``, so the endpoint answers the whole-fleet span tree for
        the acceptance path: router, owning worker, and (after failover) the
        successor all under one trace id.
        """
        merged: Dict[str, Dict[str, object]] = {
            str(record["span_id"]): record
            for record in obs.get_tracer().ring.trace(trace_id)
        }
        headers = {"x-client-id": client_id}

        async def fetch(worker: str) -> List[Dict[str, object]]:
            try:
                response = await self.client.request(
                    worker,
                    "GET",
                    f"/v1/traces/{trace_id}",
                    headers=dict(headers),
                    timeout=self.config.poll_timeout,
                )
            except (WorkerUnavailableError, asyncio.TimeoutError):
                return []
            if response.status != 200:
                return []
            document = response.json()
            spans = document.get("spans") if isinstance(document, dict) else None
            if not isinstance(spans, list):
                return []
            return [record for record in spans if isinstance(record, dict)]

        members = self.membership.members()
        for part in await asyncio.gather(*(fetch(worker) for worker in members)):
            for record in part:
                merged.setdefault(str(record.get("span_id")), record)
        if not merged:
            raise errors.not_found(f"no spans buffered for trace {trace_id!r}")
        records = sorted(
            merged.values(), key=lambda r: float(r.get("wall") or 0.0)
        )
        return HttpResponse.json(
            {
                "trace_id": trace_id,
                "spans": records,
                "tree": build_tree(records),
            }
        )

    def _healthz(self) -> HttpResponse:
        members = self.membership.members()
        document = {
            "status": "ok" if members else "no_workers",
            "workers": self.membership.info(),
            "ring": self.ring.info(),
            "queue_depth": self.queue.depth,
            "breakers": {
                worker: state for worker, state in self.breakers.states()
            },
            "retry_tokens": round(self.retry_budget.tokens, 3),
        }
        status = 200 if members else 503
        response = HttpResponse.json(document, status=status)
        if not members:
            response.headers["Retry-After"] = str(self._retry_after())
        return response

    def _render_metrics(self) -> HttpResponse:
        members = set(self.membership.members())
        self.metrics.queue_depth.set(self.queue.depth)
        info = self.ring.info()
        self.metrics.ring_workers.set(len(members))
        self.metrics.ring_points.set(int(info["points"]))
        for health in self.membership.info():
            self.metrics.worker_up.set(
                1.0 if health["url"] in members else 0.0, worker=health["url"]
            )
        response = HttpResponse.plain(self.metrics.render(self))
        response.content_type = "text/plain; version=0.0.4; charset=utf-8"
        return response

    # ------------------------------------------------------------------ #
    # relation bookkeeping
    # ------------------------------------------------------------------ #
    def _remember_name(self, name: str, fingerprint: str) -> None:
        self._names[name] = fingerprint
        self._names.move_to_end(name)
        while len(self._names) > MAX_TRACKED_NAMES:
            self._names.popitem(last=False)

    def _resolve_key(self, ref: str) -> str:
        """The placement key of a relation reference (name → fingerprint)."""
        return self._names.get(ref, ref)

    async def _fingerprint_upload(self, request: HttpRequest) -> Tuple[str, Optional[str]]:
        """Parse an upload body exactly as the worker will, returning
        ``(fingerprint, name)`` — the placement key and the alias to track."""
        loop = asyncio.get_running_loop()
        name = request.query.get("name")
        if request.content_type in ("application/json", "application/x-ndjson"):
            document = request.json()
            if not isinstance(document, dict):
                raise errors.bad_request("upload body must be a JSON object")
            if document.get("name") is not None:
                name = str(document["name"])
            relation = await loop.run_in_executor(
                None, relation_from_rows_document, document
            )
        else:
            text = request.text()
            has_header = request.query.get("header", "true").lower() != "false"
            delimiter = request.query.get("delimiter", ",")
            relation = await loop.run_in_executor(
                None,
                lambda: relation_from_csv_text(
                    text, has_header=has_header, delimiter=delimiter
                ),
            )
        return relation.fingerprint(), name

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    async def _upload(self, request: HttpRequest, client_id: str) -> HttpResponse:
        fingerprint, name = await self._fingerprint_upload(request)
        content_type = request.headers.get("content-type", "text/csv")
        self.uploads.put(fingerprint, request.target, content_type, request.body)
        if name:
            self._remember_name(name, fingerprint)
        self._remember_name(fingerprint, fingerprint)
        response = await self._forward(
            fingerprint,
            "POST",
            request.target,
            body=request.body,
            headers=self._forward_headers(request, client_id),
        )
        return self._relay(response)

    async def _list_relations(self, client_id: str) -> HttpResponse:
        members = self.membership.members()
        if not members:
            raise self._no_workers()
        headers = {"x-client-id": client_id}

        async def list_one(worker: str) -> Dict[str, object]:
            try:
                response = await self.client.request(
                    worker,
                    "GET",
                    "/v1/relations",
                    headers=headers,
                    timeout=self.config.request_timeout,
                )
            except (WorkerUnavailableError, asyncio.TimeoutError):
                return {}
            document = response.json()
            relations = (
                document.get("relations") if isinstance(document, dict) else None
            )
            return relations if isinstance(relations, dict) else {}

        merged: Dict[str, object] = {}
        for part in await asyncio.gather(*(list_one(w) for w in members)):
            merged.update(part)
        return HttpResponse.json({"relations": merged})

    async def _discover(self, request: HttpRequest, client_id: str) -> HttpResponse:
        document = request.json()
        if not isinstance(document, dict):
            raise errors.bad_request("discover body must be a JSON object")
        key, body = await self._place_discover(document, request.body)
        target = request.target
        response = await self._forward(
            key,
            "POST",
            target,
            body=body,
            headers=self._forward_headers(request, client_id),
        )
        return self._relay(response)

    async def _place_discover(
        self, document: Dict[str, object], raw_body: bytes
    ) -> Tuple[str, bytes]:
        """The placement key of a discover body, plus the body to forward
        (rewritten when a known name is resolved to its fingerprint)."""
        ref = document.get("relation")
        if ref is not None:
            if not isinstance(ref, str) or not ref:
                raise errors.bad_request('"relation" must be a non-empty string')
            key = self._resolve_key(ref)
            if key != ref:
                rewritten = dict(document)
                rewritten["relation"] = key
                return key, json.dumps(rewritten).encode("utf-8")
            return key, raw_body
        if "rows" in document or "attributes" in document:
            loop = asyncio.get_running_loop()
            relation = await loop.run_in_executor(
                None, relation_from_rows_document, document
            )
            return relation.fingerprint(), raw_body
        raise errors.bad_request(
            'the discover body needs a "relation" reference or inline '
            '"attributes"/"rows"'
        )

    async def _batch(self, request: HttpRequest, client_id: str) -> HttpResponse:
        document = request.json()
        entries = document.get("requests") if isinstance(document, dict) else document
        if not isinstance(entries, list) or not entries:
            raise errors.bad_request(
                'batch body must be a non-empty JSON array (or {"requests": [...]})'
            )
        if len(entries) > MAX_BATCH_REQUESTS:
            raise errors.bad_request(f"batch exceeds {MAX_BATCH_REQUESTS} requests")
        headers = {"x-client-id": client_id}

        async def run_one(entry: object) -> Dict[str, object]:
            try:
                if not isinstance(entry, dict):
                    raise errors.bad_request("batch entry is not a JSON object")
                body_document = {k: v for k, v in entry.items() if k != "stream"}
                key, body = await self._place_discover(
                    body_document, json.dumps(body_document).encode("utf-8")
                )
                response = await self._forward(
                    key, "POST", "/v1/discover", body=body, headers=dict(headers)
                )
                result = response.json()
                if isinstance(result, dict):
                    return result
                raise errors.bad_gateway("worker answered a non-JSON batch entry")
            except asyncio.CancelledError:
                raise
            except ApiError as exc:
                return exc.to_document()
            except asyncio.TimeoutError:
                return errors.deadline_exceeded(
                    self.config.request_timeout or 0.0
                ).to_document()
            except Exception as exc:  # noqa: BLE001 - isolated per entry
                return errors.map_exception(exc).to_document()

        results = await asyncio.gather(*(run_one(entry) for entry in entries))
        failed = sum(1 for record in results if "error" in record)
        return HttpResponse.json(
            {"requests": len(entries), "failed": failed, "results": list(results)}
        )

    # ------------------------------------------------------------------ #
    # forwarding
    # ------------------------------------------------------------------ #
    @staticmethod
    def _forward_headers(request: HttpRequest, client_id: str) -> Dict[str, str]:
        headers = {
            name: value
            for name, value in request.headers.items()
            if name not in _HOP_HEADERS and name != "expect"
        }
        headers["x-client-id"] = client_id
        return headers

    def _no_workers(self) -> ApiError:
        return ApiError(
            503,
            "no_workers",
            "no healthy workers on the ring",
            retry_after=self._retry_after(),
        )

    async def _forward(
        self,
        key: str,
        method: str,
        target: str,
        *,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> WorkerResponse:
        """Send to the key's owner, failing over down the preference list.

        Connection failures trip the worker's circuit breaker, evict it from
        the ring and retry; workers with an **open** breaker are skipped
        without touching the socket; each retry past the first attempt
        spends a :class:`~repro.serve.fleet.breaker.RetryBudget` token and
        waits a jittered exponential backoff.  ``503 draining`` evicts and
        retries; ``503 overloaded`` retries without evicting (a busy worker
        is still a member).  ``404 relation_not_found`` triggers a re-upload
        of the cached relation body before one same-worker retry.
        """
        attempts = self.ring.preference(key)
        if not attempts:
            raise self._no_workers()
        self.retry_budget.on_request()
        last_error: Optional[ApiError] = None
        previous: Optional[str] = None
        sent = 0
        skipped = 0
        for worker in attempts:
            if not self.breakers.allow(worker):
                self.metrics.breaker_skips_total.inc(worker=worker)
                skipped += 1
                continue
            if sent > 0:
                if not self.retry_budget.try_spend():
                    self.breakers.breaker(worker).cancel_probe()
                    last_error = ApiError(
                        503,
                        "retry_budget_exhausted",
                        "failover retry budget exhausted; failing fast",
                        retry_after=self._retry_after(),
                    )
                    break
                with obs.get_tracer().start_span(
                    SPAN_FLEET_FAILOVER, attempt=sent, successor=worker
                ) as failover_span:
                    if previous is not None:
                        failover_span.set_attr("failed", previous)
                        self.metrics.failovers_total.inc(worker=previous)
                    delay = self._backoff_delay(sent)
                    if delay > 0:
                        await asyncio.sleep(delay)
            started = time.perf_counter()
            try:
                with obs.get_tracer().start_span(
                    SPAN_FLEET_FORWARD, worker=worker, attempt=sent + 1
                ) as forward_span:
                    response = await self._send_once(
                        worker, key, method, target, body, headers
                    )
                    forward_span.set_attr("status", response.status)
            except WorkerUnavailableError:
                self.breakers.record_failure(worker)
                self.membership.mark_dead(worker)
                last_error = errors.bad_gateway(
                    f"worker {worker} failed mid-request"
                )
                previous = worker
                sent += 1
                continue
            except asyncio.TimeoutError:
                # A slow worker is not a transport failure, but an admitted
                # half-open probe must be released or the breaker wedges.
                self.breakers.breaker(worker).cancel_probe()
                raise
            self.breakers.record_success(worker)
            self.metrics.observe_forward(worker, time.perf_counter() - started)
            if response.status == 503:
                code = self._error_code(response)
                if code == "draining":
                    self.membership.mark_dead(worker)
                last_error = ApiError(
                    503,
                    code or "overloaded",
                    f"worker {worker} refused the request",
                    retry_after=self._retry_after(),
                )
                previous = worker
                sent += 1
                continue
            return response
        if last_error is None and skipped:
            raise ApiError(
                503,
                "breaker_open",
                "every candidate worker's circuit breaker is open",
                retry_after=self._retry_after(
                    extra_wait=self.breakers.min_seconds_until_probe()
                ),
            )
        raise last_error if last_error is not None else self._no_workers()

    def _backoff_delay(self, retry_index: int) -> float:
        """Jittered exponential backoff before failover retry ``retry_index``."""
        base = self.config.backoff_base
        if base <= 0:
            return 0.0
        delay = min(self.config.backoff_max, base * (2 ** (retry_index - 1)))
        return delay * (0.5 + 0.5 * self._backoff_rng.random())

    async def _send_once(
        self,
        worker: str,
        key: str,
        method: str,
        target: str,
        body: bytes,
        headers: Optional[Dict[str, str]],
    ) -> WorkerResponse:
        """One forward, with the relation re-upload retry folded in."""
        response = await self.client.request(
            worker,
            method,
            target,
            body=body,
            headers=headers,
            timeout=self.config.request_timeout,
        )
        if response.status == 404 and self._error_code(response) == "relation_not_found":
            cached = self.uploads.get(key)
            if cached is not None:
                upload_target, content_type, upload_body = cached
                upload = await self.client.request(
                    worker,
                    "POST",
                    upload_target,
                    body=upload_body,
                    headers={"content-type": content_type},
                    timeout=self.config.request_timeout,
                )
                if upload.status == 201:
                    self.metrics.reuploads_total.inc()
                    return await self.client.request(
                        worker,
                        method,
                        target,
                        body=body,
                        headers=headers,
                        timeout=self.config.request_timeout,
                    )
        return response

    @staticmethod
    def _error_code(response: WorkerResponse) -> Optional[str]:
        document = response.json()
        if isinstance(document, dict):
            error = document.get("error")
            if isinstance(error, dict):
                code = error.get("code")
                return str(code) if code is not None else None
        return None

    def _relay(self, response: WorkerResponse) -> HttpResponse:
        """A worker response rebuilt for the router's own wire."""
        # The client parser lowercases header names; re-canonicalize so
        # relayed responses match the casing of router-born ones.
        headers = {
            name.title(): value
            for name, value in response.headers.items()
            if name not in _HOP_HEADERS
            and name not in ("server", "date", "content-type")
        }
        if response.chunks is not None:
            relayed = HttpResponse(
                status=response.status,
                content_type=response.content_type,
                headers=headers,
            )
            relayed.stream = response.chunks
            return relayed
        return HttpResponse(
            status=response.status,
            body=response.body or b"",
            content_type=response.content_type,
            headers=headers,
        )


class RouterThread:
    """A real-socket router hosted in its own thread + event loop.

    The fleet counterpart of :class:`~repro.serve.http.server.ServerThread`:
    tests, the ``fleet_serving`` benchmark section and
    ``examples/fleet_serving.py`` start a router next to blocking client
    code without touching asyncio themselves.
    """

    def __init__(self, config: RouterConfig):
        self._router = FleetRouter(config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    @property
    def router(self) -> FleetRouter:
        return self._router

    @property
    def host(self) -> str:
        return self._router.config.host

    @property
    def port(self) -> int:
        return self._router.config.port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    def start(self) -> "RouterThread":
        """Boot the loop thread; returns once the socket is bound."""
        if self._thread is not None:
            raise ApiError(500, "internal", "RouterThread is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ApiError(500, "internal", "router failed to start within 30s")
        if self._startup_error is not None:
            raise ApiError(
                500, "internal", f"router failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self._router.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to start()
                self._startup_error = exc
                return
            finally:
                self._started.set()
            watchdog = maybe_watch_loop(loop, "repro-fleet")
            try:
                loop.run_until_complete(self._router.wait_stopped())
            finally:
                if watchdog is not None:
                    watchdog.stop()
        finally:
            try:
                pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    def run_coroutine(self, coroutine):
        """Run a coroutine on the router's loop (tests poke membership)."""
        if self._loop is None:
            raise ApiError(500, "internal", "RouterThread is not running")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop)

    def stop(self, timeout: float = 60.0) -> None:
        """Stop the router and join the loop thread.  Idempotent."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self._router.stop(), self._loop
                )
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - stop is best-effort
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = [
    "FleetRouter",
    "MAX_TRACKED_NAMES",
    "RouterConfig",
    "RouterThread",
    "UploadCache",
]
