"""The consistent-hash ring: relation fingerprint → owning worker.

Each worker contributes ``vnodes`` points on a 64-bit ring (BLAKE2b of
``"{worker}#{replica}"``); a key is owned by the first point clockwise of
its own hash.  Virtual nodes smooth the arc distribution, so adding or
removing one worker remaps only ~1/N of the key space instead of reshuffling
everything — the property that keeps warm sessions pinned through membership
churn.

The ring is **deterministic**: assignment depends only on the member set
(and the vnode count), never on insertion order, process identity or salted
hashes — two routers watching the same fleet agree on every placement, and a
restarted router re-derives the exact placement its predecessor used.

:meth:`HashRing.preference` returns the owner followed by the distinct
successor workers clockwise — the failover order: when the owner dies, its
arc lands on the next worker, which is exactly the one the router retries.

Thread-safety: mutation (`add`/`remove`) and lookup take one lock; lookups
are a single ``bisect`` over the sorted point array.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, List, Optional

from repro.exceptions import DiscoveryError

#: Virtual nodes per worker.  At 64 points per worker the largest arc of a
#: 3-worker ring stays within ~2x of the mean — smooth enough for session
#: placement without making membership updates expensive.
DEFAULT_VNODES = 64


def ring_hash(data: str) -> int:
    """The 64-bit ring position of a string (deterministic across processes)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring with virtual nodes over opaque worker ids."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise DiscoveryError("vnodes must be at least 1")
        self._vnodes = vnodes
        self._lock = threading.Lock()
        #: sorted ring positions and the worker at each position
        self._points: List[int] = []
        self._owners: List[str] = []
        self._workers: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------ #
    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def __contains__(self, worker: object) -> bool:
        with self._lock:
            return worker in self._workers

    def workers(self) -> List[str]:
        """The member workers, sorted (stable for tests and /metrics)."""
        with self._lock:
            return sorted(self._workers)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add(self, worker: str) -> bool:
        """Add a worker's vnodes; ``False`` if it is already a member."""
        if not worker:
            raise DiscoveryError("worker id must be a non-empty string")
        with self._lock:
            if worker in self._workers:
                return False
            points = []
            for replica in range(self._vnodes):
                point = ring_hash(f"{worker}#{replica}")
                index = bisect.bisect_left(self._points, point)
                # A full 64-bit collision between distinct workers is
                # cryptographically improbable; same-worker duplicates
                # cannot occur (distinct replica suffixes).
                self._points.insert(index, point)
                self._owners.insert(index, worker)
                points.append(point)
            self._workers[worker] = points
            return True

    def remove(self, worker: str) -> bool:
        """Remove a worker's vnodes; ``False`` if it was not a member."""
        with self._lock:
            points = self._workers.pop(worker, None)
            if points is None:
                return False
            for point in points:
                index = bisect.bisect_left(self._points, point)
                while self._owners[index] != worker or self._points[index] != point:
                    index += 1  # collision neighbours share the position
                del self._points[index]
                del self._owners[index]
            return True

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def assign(self, key: str) -> Optional[str]:
        """The worker owning ``key`` (``None`` on an empty ring)."""
        with self._lock:
            if not self._points:
                return None
            index = bisect.bisect_right(self._points, ring_hash(key))
            if index == len(self._points):
                index = 0  # wrap: the arc past the last point belongs to the first
            return self._owners[index]

    def preference(self, key: str, limit: Optional[int] = None) -> List[str]:
        """The owner then each distinct successor clockwise — failover order.

        ``limit`` caps the list length (default: every member).  With the
        owner dead, index 1 is the worker its arc remaps onto, so retrying
        down this list is exactly the remapped placement.
        """
        with self._lock:
            if not self._points:
                return []
            limit = len(self._workers) if limit is None else limit
            start = bisect.bisect_right(self._points, ring_hash(key))
            ordered: List[str] = []
            seen = set()
            for step in range(len(self._points)):
                owner = self._owners[(start + step) % len(self._points)]
                if owner not in seen:
                    seen.add(owner)
                    ordered.append(owner)
                    if len(ordered) >= limit:
                        break
            return ordered

    def info(self) -> Dict[str, object]:
        """Ring shape for ``/metrics`` and ``/healthz``."""
        with self._lock:
            return {
                "workers": sorted(self._workers),
                "vnodes_per_worker": self._vnodes,
                "points": len(self._points),
            }


__all__ = ["DEFAULT_VNODES", "HashRing", "ring_hash"]
