"""The fleet subsystem: a shard router over N ``repro-serve`` workers.

PR 5 put one worker on a socket; this package scales that worker out.  The
``repro-fleet`` router process (``python -m repro.serve.fleet``) speaks the
same ``/v1`` API and adds, stdlib-only:

* :class:`~repro.serve.fleet.ring.HashRing` — consistent hashing with
  virtual nodes over relation fingerprints, so each relation's warm session
  lives on exactly one worker and membership churn remaps only ~1/N of the
  key space;
* :class:`~repro.serve.fleet.membership.FleetMembership` — ``/healthz``-
  polled liveness: dead or draining workers leave the ring, recovered
  workers get their old arcs back (the ring is deterministic);
* :class:`~repro.serve.fleet.router.FleetRouter` — forwarding with
  failover: a failed forward retries down the ring's preference list, and
  cached upload bodies are replayed so the successor warm-starts from the
  shared :class:`~repro.serve.store.CacheStore`;
* :class:`~repro.serve.fleet.fairness.ClientRegistry` /
  :class:`~repro.serve.fleet.fairness.FairQueue` — per-client token-bucket
  rate limiting (``429`` + honest ``Retry-After``) and weighted-fair
  queueing over the forward slots;
* :class:`~repro.serve.fleet.metrics.FleetMetrics` — the router's own
  Prometheus exposition (forwards, failovers, throttles, ring state);
* :class:`~repro.serve.fleet.router.RouterThread` — a real-socket router in
  a side thread for tests, benchmarks and examples.

See DESIGN.md ("Fleet topology") for the placement, failover and fairness
model.
"""

from repro.serve.fleet.client import WorkerClient, WorkerUnavailableError
from repro.serve.fleet.fairness import ClientRegistry, FairQueue, TokenBucket
from repro.serve.fleet.membership import FleetMembership
from repro.serve.fleet.metrics import FleetMetrics
from repro.serve.fleet.ring import DEFAULT_VNODES, HashRing, ring_hash
from repro.serve.fleet.router import FleetRouter, RouterConfig, RouterThread

__all__ = [
    "ClientRegistry",
    "DEFAULT_VNODES",
    "FairQueue",
    "FleetMembership",
    "FleetMetrics",
    "FleetRouter",
    "HashRing",
    "RouterConfig",
    "RouterThread",
    "TokenBucket",
    "WorkerClient",
    "WorkerUnavailableError",
    "ring_hash",
]
