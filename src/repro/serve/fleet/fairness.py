"""Per-client multi-tenancy: token-bucket rate limiting + weighted-fair queueing.

Two cooperating disciplines, both keyed on the client identity the router
derives from ``X-Client-Id`` (default: one id per connection):

* :class:`TokenBucket` / :class:`ClientRegistry` — a rate cap per client.
  Each client holds a bucket of ``burst`` tokens refilling at ``rate``
  tokens/second; a request with no token is answered ``429`` immediately,
  with an honest ``Retry-After`` (the seconds until a token actually
  refills).  The registry is LRU-bounded, so a churn of one-shot client ids
  cannot grow the router without limit.

* :class:`FairQueue` — weighted-fair queueing over the router's forward
  slots.  Admission is the classical virtual-finish-time discipline: each
  client's next request is stamped ``max(virtual_time, client's last stamp)
  + cost/weight`` and the smallest stamp is admitted when a slot frees.  A
  greedy client's requests stack up *its own* stamp sequence far into the
  virtual future, while a light client's occasional request lands near the
  current virtual time and jumps the queue — bounded delay for the light
  tenant no matter how hard the greedy one pushes.  The rate limiter caps
  how fast a client may *arrive*; the fair queue decides who *runs* when
  the forward pool is contended.

Everything here runs on the router's event loop — single-threaded by
construction, so no locks.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.exceptions import DiscoveryError

#: Most clients the registry tracks; least-recently-seen ids are dropped
#: (their bucket restarts full, their stats restart at zero — the price of
#: bounding the router against client-id churn).
MAX_TRACKED_CLIENTS = 1024


class TokenBucket:
    """One client's rate state: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def acquire(self, now: float) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds until one refills."""
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
            self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        if self.rate <= 0:
            return None  # rate 0 disables limiting entirely
        return (1.0 - self.tokens) / self.rate


class ClientStats:
    """Per-client counters the router renders into ``/metrics``."""

    __slots__ = ("admitted", "throttled", "queued", "weight")

    def __init__(self, weight: float = 1.0):
        self.admitted = 0
        self.throttled = 0
        self.queued = 0
        self.weight = weight


class ClientRegistry:
    """LRU-bounded client table: rate buckets, weights and counters.

    ``rate <= 0`` disables rate limiting (every client always admits);
    ``default_weight`` seeds the WFQ weight of new clients.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        max_clients: int = MAX_TRACKED_CLIENTS,
        default_weight: float = 1.0,
        clock=time.monotonic,
    ):
        if burst < 1:
            raise DiscoveryError("burst must be at least 1")
        if max_clients < 1:
            raise DiscoveryError("max_clients must be at least 1")
        self._rate = rate
        self._burst = burst
        self._max_clients = max_clients
        self._default_weight = default_weight
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._stats: Dict[str, ClientStats] = {}
        self.throttled_total = 0

    # ------------------------------------------------------------------ #
    def _touch(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self._rate, self._burst, self._clock())
            self._buckets[client] = bucket
            self._stats[client] = ClientStats(self._default_weight)
            while len(self._buckets) > self._max_clients:
                dropped, _ = self._buckets.popitem(last=False)
                self._stats.pop(dropped, None)
        else:
            self._buckets.move_to_end(client)
        return bucket

    def admit(self, client: str) -> Optional[float]:
        """Rate-check one request; ``None`` admits, else the Retry-After hint."""
        bucket = self._touch(client)
        stats = self._stats[client]
        if self._rate <= 0:
            stats.admitted += 1
            return None
        wait = bucket.acquire(self._clock())
        if wait is None:
            stats.admitted += 1
            return None
        stats.throttled += 1
        self.throttled_total += 1
        return wait

    def weight(self, client: str) -> float:
        stats = self._stats.get(client)
        return stats.weight if stats is not None else self._default_weight

    def stats(self, client: str) -> Optional[ClientStats]:
        return self._stats.get(client)

    def snapshot(self) -> List[Tuple[str, ClientStats]]:
        """The tracked clients and their counters (bounded, render-safe)."""
        return list(self._stats.items())

    def __len__(self) -> int:
        return len(self._buckets)


class QueueFullError(DiscoveryError):
    """The fair queue's wait room is full — reject, never buffer unboundedly."""


class FairQueue:
    """Weighted-fair admission onto a fixed pool of forward slots.

    ``slots`` requests run concurrently; up to ``max_queue`` more wait,
    dequeued in virtual-finish-time order; beyond that :meth:`acquire`
    raises :class:`QueueFullError` immediately.  Every successful
    ``acquire`` must be paired with exactly one :meth:`release` (use
    ``try/finally``).
    """

    def __init__(self, slots: int, max_queue: int):
        if slots < 1:
            raise DiscoveryError("slots must be at least 1")
        if max_queue < 0:
            raise DiscoveryError("max_queue must be at least 0")
        self._slots = slots
        self._max_queue = max_queue
        self._free = slots
        self._virtual = 0.0
        self._last_tag: "OrderedDict[str, float]" = OrderedDict()
        self._heap: List[Tuple[float, int, str, "asyncio.Future[None]"]] = []
        self._queued = 0
        self._counter = itertools.count()

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Requests currently waiting for a slot."""
        return self._queued

    @property
    def slots(self) -> int:
        return self._slots

    def depth_of(self, client: str) -> int:
        return sum(1 for _, _, owner, f in self._heap if owner == client and not f.done())

    def _stamp(self, client: str, weight: float) -> float:
        tag = max(self._virtual, self._last_tag.get(client, 0.0)) + 1.0 / max(
            weight, 1e-9
        )
        self._last_tag[client] = tag
        self._last_tag.move_to_end(client)
        while len(self._last_tag) > MAX_TRACKED_CLIENTS:
            self._last_tag.popitem(last=False)
        return tag

    async def acquire(self, client: str, weight: float = 1.0) -> None:
        """Wait for a forward slot in weighted-fair order.

        Immediate when a slot is free and nothing queues ahead; raises
        :class:`QueueFullError` when the wait room is full.  Cancellation
        while queued cleanly abandons the spot (no slot is consumed).
        """
        if self._free > 0 and self._queued == 0:
            self._free -= 1
            return
        if self._queued >= self._max_queue:
            raise QueueFullError("fair queue is full")
        tag = self._stamp(client, weight)
        future: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        heapq.heappush(self._heap, (tag, next(self._counter), client, future))
        self._queued += 1
        try:
            await future
        except asyncio.CancelledError:
            if future.cancelled():
                # Still parked in the heap: account for the departure now;
                # release() will skip the dead entry without re-counting it.
                self._queued -= 1
            elif future.done() and future.exception() is None:
                # The slot was handed over in release() just as the waiter
                # was cancelled; pass it on so no slot ever leaks.
                self.release()
            raise

    def release(self) -> None:
        """Return a slot; the earliest-stamped waiter (if any) takes it over."""
        while self._heap:
            tag, _, _, future = heapq.heappop(self._heap)
            if future.done():
                continue  # cancelled waiter: acquire() already accounted for it
            self._virtual = max(self._virtual, tag)
            self._queued -= 1
            future.set_result(None)
            return
        self._free = min(self._slots, self._free + 1)


__all__ = [
    "ClientRegistry",
    "ClientStats",
    "FairQueue",
    "MAX_TRACKED_CLIENTS",
    "QueueFullError",
    "TokenBucket",
]
