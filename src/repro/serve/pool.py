"""The multi-relation session pool: fingerprint → :class:`Profiler`, with LRU
eviction and memory accounting.

A :class:`SessionPool` is the serving layer's working set: every relation a
front end profiles gets one pooled :class:`~repro.api.Profiler` session, so
support sweeps, sampling re-runs and repeated requests over the same data
share the session's structure caches across *callers*, not just within one.
The pool is bounded two ways:

* ``max_sessions`` — a capacity cap enforced on insertion;
* ``max_bytes`` — a budget over the sessions' estimated cache footprints
  (:meth:`~repro.api.Profiler.estimated_bytes`, i.e. ``cache_info()`` sizes
  backed by per-cache byte estimates), re-checked by
  :meth:`enforce_limits` after runs grow the caches.

Eviction is least-recently-used by last :meth:`session` access and only drops
the pool's reference — callers holding an evicted session keep a fully
functional (just no longer shared) ``Profiler``, so in-flight runs are never
disturbed.  All operations are thread-safe behind one pool lock; the lock
order is pool → session and nothing ever takes them the other way around.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api.profiler import ProgressCallback, Profiler
from repro.api.registry import REGISTRY, AlgorithmRegistry
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation
from repro.serve.fingerprint import relation_fingerprint


@dataclass
class _PooledSession:
    """One pool entry: the session plus its bookkeeping."""

    fingerprint: str
    profiler: Profiler
    uses: int = 1
    estimated_bytes: int = 0


class SessionPool:
    """LRU-bounded, byte-budgeted pool of per-relation ``Profiler`` sessions.

    Parameters
    ----------
    max_sessions:
        Maximum number of live sessions (``None`` for unbounded).
    max_bytes:
        Budget over the summed :meth:`~repro.api.Profiler.estimated_bytes`
        of the pooled sessions (``None`` for unbounded).  The most recently
        used session is never evicted, even when it alone exceeds the
        budget — a pool that cannot hold one session cannot serve at all.
    progress / registry:
        Forwarded to every :class:`~repro.api.Profiler` the pool creates.
    """

    def __init__(
        self,
        max_sessions: Optional[int] = 8,
        *,
        max_bytes: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        registry: AlgorithmRegistry = REGISTRY,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise DiscoveryError("max_sessions must be at least 1 (or None)")
        if max_bytes is not None and max_bytes < 1:
            raise DiscoveryError("max_bytes must be at least 1 (or None)")
        self._max_sessions = max_sessions
        self._max_bytes = max_bytes
        self._progress = progress
        self._registry = registry
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, _PooledSession]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def session(
        self, relation: Relation, *, fingerprint: Optional[str] = None
    ) -> Profiler:
        """The pooled session for ``relation`` (created on first use).

        Every call refreshes the relation's LRU position.  ``fingerprint``
        lets callers that already digested the relation skip recomputing it.
        """
        key = fingerprint if fingerprint is not None else relation_fingerprint(relation)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.uses += 1
                self._hits += 1
                return entry.profiler
            self._misses += 1
            profiler = Profiler(
                relation, progress=self._progress, registry=self._registry
            )
            self._entries[key] = _PooledSession(fingerprint=key, profiler=profiler)
            self._enforce_locked()
            return profiler

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def fingerprints(self) -> List[str]:
        """The pooled fingerprints, least recently used first."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------ #
    # memory accounting and eviction
    # ------------------------------------------------------------------ #
    def estimated_bytes(self) -> int:
        """Summed byte estimate of every pooled session (refreshed now)."""
        with self._lock:
            total = 0
            for entry in self._entries.values():
                entry.estimated_bytes = entry.profiler.estimated_bytes()
                total += entry.estimated_bytes
            return total

    def enforce_limits(self) -> int:
        """Re-check both caps and evict LRU sessions until satisfied.

        Sessions grow *after* insertion (each run warms more caches), so the
        serving layer calls this after every executed request.  Returns the
        number of sessions evicted.
        """
        with self._lock:
            return self._enforce_locked()

    def _enforce_locked(self) -> int:
        evicted = 0
        while (
            self._max_sessions is not None
            and len(self._entries) > self._max_sessions
        ):
            self._entries.popitem(last=False)
            self._evictions += 1
            evicted += 1
        if self._max_bytes is None:
            return evicted
        total = 0
        for entry in self._entries.values():
            entry.estimated_bytes = entry.profiler.estimated_bytes()
            total += entry.estimated_bytes
        while total > self._max_bytes and len(self._entries) > 1:
            _, entry = self._entries.popitem(last=False)
            total -= entry.estimated_bytes
            self._evictions += 1
            evicted += 1
        return evicted

    def evict(self, fingerprint: str) -> bool:
        """Drop one session by fingerprint; ``True`` if it was pooled."""
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is not None:
                self._evictions += 1
            return entry is not None

    def clear(self) -> None:
        """Drop every pooled session (counters are kept)."""
        with self._lock:
            self._evictions += len(self._entries)
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def info(self) -> Dict[str, object]:
        """Counters, caps and per-session byte estimates (LRU order)."""
        with self._lock:
            sessions = []
            total = 0
            for entry in self._entries.values():
                entry.estimated_bytes = entry.profiler.estimated_bytes()
                total += entry.estimated_bytes
                relation = entry.profiler.relation
                sessions.append(
                    {
                        "fingerprint": entry.fingerprint,
                        "rows": relation.n_rows,
                        "arity": relation.arity,
                        "uses": entry.uses,
                        "estimated_bytes": entry.estimated_bytes,
                    }
                )
            return {
                "sessions": len(sessions),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "max_sessions": self._max_sessions,
                "max_bytes": self._max_bytes,
                "estimated_bytes": total,
                "lru": sessions,
            }


__all__ = ["SessionPool"]
