"""The multi-relation session pool: fingerprint → :class:`Profiler`, with
cost-aware eviction, memory accounting and optional persistent spill.

A :class:`SessionPool` is the serving layer's working set: every relation a
front end profiles gets one pooled :class:`~repro.api.Profiler` session, so
support sweeps, sampling re-runs and repeated requests over the same data
share the session's structure caches across *callers*, not just within one.
The pool is bounded two ways:

* ``max_sessions`` — a capacity cap enforced on insertion;
* ``max_bytes`` — a budget over the sessions' estimated cache footprints
  (:meth:`~repro.api.Profiler.estimated_bytes`), re-checked by
  :meth:`enforce_limits` after runs grow the caches.  The pool registers a
  run listener on every session it creates, so the byte accounting refreshes
  after **every** executed request — eviction decisions never run on stale
  figures from before a request grew a session's caches.

Eviction is **cost-aware**: the victim is the session whose caches were
cheapest to build (:meth:`~repro.api.Profiler.build_seconds_total` — the
observed rebuild cost), with least-recently-used order as the tiebreak, and
the most recently used session is never evicted.  A pool under pressure
therefore sheds the sessions that are fastest to rebuild instead of blindly
dropping old-but-expensive ones.  Eviction only drops the pool's reference —
callers holding an evicted session keep a fully functional (just no longer
shared) ``Profiler``, so in-flight runs are never disturbed.

With a persistent :class:`~repro.serve.store.CacheStore` attached
(``store=``), the pool becomes restart-proof: evicted sessions spill their
caches into the store first, and newly admitted sessions warm-start from it
— which is also how multiple worker processes share one warm substrate.

All operations are thread-safe behind one pool lock; the lock order is
pool → session and nothing ever takes them the other way around.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.api.profiler import ProgressCallback, Profiler
from repro.api.registry import REGISTRY, AlgorithmRegistry
from repro.devtools.lockcheck import RANK_POOL, ranked_lock
from repro.exceptions import CacheStoreError, DiscoveryError
from repro.obs.names import SPAN_POOL_ADMIT, SPAN_POOL_EVICT, SPAN_POOL_SPILL
from repro.relational.relation import Relation
from repro.serve.faults import FaultPlan
from repro.serve.fingerprint import relation_fingerprint
from repro.serve.store import CacheStore


@dataclass
class _PooledSession:
    """One pool entry: the session plus its bookkeeping."""

    fingerprint: str
    profiler: Profiler
    uses: int = 1
    estimated_bytes: int = 0


class SessionPool:
    """Cost-aware, byte-budgeted pool of per-relation ``Profiler`` sessions.

    Parameters
    ----------
    max_sessions:
        Maximum number of live sessions (``None`` for unbounded).
    max_bytes:
        Budget over the summed :meth:`~repro.api.Profiler.estimated_bytes`
        of the pooled sessions (``None`` for unbounded).  The most recently
        used session is never evicted, even when it alone exceeds the
        budget — a pool that cannot hold one session cannot serve at all.
    store:
        Optional :class:`~repro.serve.store.CacheStore`.  Evicted sessions
        spill their caches into it and admitted sessions warm-start from it,
        so pooled warmth survives process restarts and is shared between
        workers.
    progress / registry:
        Forwarded to every :class:`~repro.api.Profiler` the pool creates.
    """

    def __init__(
        self,
        max_sessions: Optional[int] = 8,
        *,
        max_bytes: Optional[int] = None,
        store: Optional[CacheStore] = None,
        progress: Optional[ProgressCallback] = None,
        registry: AlgorithmRegistry = REGISTRY,
        faults: Optional["FaultPlan"] = None,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise DiscoveryError("max_sessions must be at least 1 (or None)")
        if max_bytes is not None and max_bytes < 1:
            raise DiscoveryError("max_bytes must be at least 1 (or None)")
        self._max_sessions = max_sessions
        self._max_bytes = max_bytes
        self._store = store
        self._faults = faults
        self._progress = progress
        self._registry = registry
        self._lock = ranked_lock(RANK_POOL, "SessionPool._lock", reentrant=True)
        self._entries: "OrderedDict[str, _PooledSession]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._spills = 0
        self._spill_failures = 0
        self._warm_loads = 0

    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[CacheStore]:
        """The attached persistent cache store (``None`` when in-memory only)."""
        return self._store

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def session(
        self, relation: Relation, *, fingerprint: Optional[str] = None
    ) -> Profiler:
        """The pooled session for ``relation`` (created on first use).

        Every call refreshes the relation's LRU position.  ``fingerprint``
        lets callers that already digested the relation skip recomputing it.
        A newly created session warm-starts from the attached store (when one
        is configured and holds entries for this relation).
        """
        key = fingerprint if fingerprint is not None else relation_fingerprint(relation)
        # The admit span is discarded on a pool hit — only a genuine
        # admission (create + enforce + spill + warm) is worth a span.
        with obs.get_tracer().start_span(SPAN_POOL_ADMIT, fingerprint=key) as span:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.uses += 1
                    self._hits += 1
                    span.discard()
                    return entry.profiler
                self._misses += 1
                profiler = Profiler(
                    relation,
                    progress=self._progress,
                    registry=self._registry,
                    faults=self._faults,
                )
                # Write-through engine checkpoints: a long CTANE run killed
                # mid-lattice resumes from its last completed level — on this
                # worker or (shared cache dir) on a failover successor.
                profiler.attach_store(self._store)
                # Refresh this entry's bytes after every run the session serves,
                # wherever the run enters from (service, direct profiler.run,
                # experiment sweeps) — see the module docstring.
                profiler.add_run_listener(
                    lambda _profiler, key=key: self._after_run(key)
                )
                self._entries[key] = _PooledSession(fingerprint=key, profiler=profiler)
                evicted = self._enforce_locked()
            # Disk I/O happens outside the pool lock so one admission never
            # serializes the serving thread pool behind the store.  The session
            # is already visible (cold) to concurrent callers while it warms;
            # warm_from only fills caches they have not started building.
            self._spill_entries(evicted)
            loaded = 0
            if self._store is not None:
                try:
                    loaded = profiler.warm_from(self._store)
                except (CacheStoreError, OSError):
                    loaded = 0
                if loaded:
                    with self._lock:
                        self._warm_loads += loaded
            span.set_attr("warm_loaded", loaded)
            return profiler

    def _after_run(self, fingerprint: str) -> None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return  # evicted while the run was in flight
            entry.estimated_bytes = entry.profiler.estimated_bytes()
            evicted = self._enforce_locked()
        self._spill_entries(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def fingerprints(self) -> List[str]:
        """The pooled fingerprints, least recently used first."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------ #
    # memory accounting and eviction
    # ------------------------------------------------------------------ #
    def estimated_bytes(self) -> int:
        """Summed byte estimate of every pooled session (refreshed now)."""
        with self._lock:
            total = 0
            for entry in self._entries.values():
                entry.estimated_bytes = entry.profiler.estimated_bytes()
                total += entry.estimated_bytes
            return total

    def enforce_limits(self) -> int:
        """Re-check both caps and evict sessions until satisfied.

        Sessions grow *after* insertion (each run warms more caches); the
        pool's run listeners call this automatically after every executed
        request, and external callers may re-check at any time.  Returns the
        number of sessions evicted.
        """
        with self._lock:
            evicted = self._enforce_locked()
        self._spill_entries(evicted)
        return len(evicted)

    def _pick_victim_locked(self) -> str:
        """The eviction victim: cheapest observed build cost, LRU tiebreak.

        The most recently used session is exempt whenever any other session
        exists, preserving the guarantee that the session currently being
        served never vanishes under its caller.
        """
        keys = list(self._entries)
        candidates = keys[:-1] if len(keys) > 1 else keys
        index = min(
            range(len(candidates)),
            key=lambda i: (
                self._entries[candidates[i]].profiler.build_seconds_total(),
                i,
            ),
        )
        return candidates[index]

    def _evict_one_locked(self) -> _PooledSession:
        entry = self._entries.pop(self._pick_victim_locked())
        self._evictions += 1
        return entry

    def _spill_entries(self, entries: List[_PooledSession]) -> None:
        """Spill evicted sessions into the store — outside the pool lock.

        Spill is best-effort: a full disk or unwritable store must never
        turn an eviction into a request failure.
        """
        if not entries:
            return
        with obs.get_tracer().start_span(SPAN_POOL_EVICT, sessions=len(entries)):
            if self._store is None:
                return
            for entry in entries:
                with obs.get_tracer().start_span(
                    SPAN_POOL_SPILL, fingerprint=entry.fingerprint
                ) as span:
                    try:
                        written = entry.profiler.dump_caches(self._store)
                    except (CacheStoreError, OSError) as exc:
                        span.set_status("error", error=type(exc).__name__)
                        with self._lock:
                            self._spill_failures += 1
                        continue
                    span.set_attr("entries", written)
                with self._lock:
                    self._spills += written

    def _enforce_locked(self) -> List[_PooledSession]:
        """Evict until both caps hold; returns the entries to be spilled."""
        evicted: List[_PooledSession] = []
        while (
            self._max_sessions is not None
            and len(self._entries) > self._max_sessions
        ):
            evicted.append(self._evict_one_locked())
        if self._max_bytes is None:
            return evicted
        total = 0
        for entry in self._entries.values():
            entry.estimated_bytes = entry.profiler.estimated_bytes()
            total += entry.estimated_bytes
        while total > self._max_bytes and len(self._entries) > 1:
            victim = self._evict_one_locked()
            total -= victim.estimated_bytes
            evicted.append(victim)
        return evicted

    def evict(self, fingerprint: str) -> bool:
        """Drop one session by fingerprint; ``True`` if it was pooled.

        With a store attached the session's caches are spilled first.
        """
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is not None:
                self._evictions += 1
        if entry is not None:
            self._spill_entries([entry])
        return entry is not None

    def clear(self) -> None:
        """Drop every pooled session (counters are kept; sessions spill)."""
        with self._lock:
            dropped = list(self._entries.values())
            self._evictions += len(dropped)
            self._entries.clear()
        self._spill_entries(dropped)

    def persist(self, store: Optional[CacheStore] = None) -> int:
        """Dump every pooled session into ``store`` (default: the attached
        one) without evicting anything; returns the entries written."""
        target = store if store is not None else self._store
        if target is None:
            raise DiscoveryError("no cache store attached and none given")
        with self._lock:
            entries = list(self._entries.values())
        written = 0
        for entry in entries:
            written += entry.profiler.dump_caches(target)
        return written

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def info(self) -> Dict[str, object]:
        """Counters, caps and per-session byte/cost figures (LRU order)."""
        with self._lock:
            sessions = []
            total = 0
            for entry in self._entries.values():
                entry.estimated_bytes = entry.profiler.estimated_bytes()
                total += entry.estimated_bytes
                relation = entry.profiler.relation
                sessions.append(
                    {
                        "fingerprint": entry.fingerprint,
                        "rows": relation.n_rows,
                        "arity": relation.arity,
                        "uses": entry.uses,
                        "estimated_bytes": entry.estimated_bytes,
                        "build_seconds": entry.profiler.build_seconds_total(),
                    }
                )
            return {
                "sessions": len(sessions),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "spilled_entries": self._spills,
                "spill_failures": self._spill_failures,
                "warm_loaded_entries": self._warm_loads,
                "max_sessions": self._max_sessions,
                "max_bytes": self._max_bytes,
                "persistent": self._store is not None,
                "estimated_bytes": total,
                "lru": sessions,
            }


__all__ = ["SessionPool"]
