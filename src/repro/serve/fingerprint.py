"""Relation fingerprints — the session pool's cache keys.

The serving layer must recognise "the same relation" across independent
:class:`~repro.relational.relation.Relation` objects (two front ends loading
the same CSV, a request replayed after a restart of the caller, …).  Object
identity and Python's salted ``hash()`` are both useless for that, so the
pool keys on a *content digest*: a BLAKE2b hash over the schema's attribute
names and every column's values, computed lazily and cached on the relation
itself (:meth:`~repro.relational.relation.Relation.fingerprint`).

Equal relations therefore always map to one pooled session, and distinct
relations collide only with cryptographic improbability.
"""

from __future__ import annotations

from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


def relation_fingerprint(relation: Relation) -> str:
    """The stable content digest of ``relation`` (32 hex characters)."""
    if not isinstance(relation, Relation):
        raise DiscoveryError(
            f"expected a Relation to fingerprint, got {type(relation).__name__}"
        )
    return relation.fingerprint()


__all__ = ["relation_fingerprint"]
