"""The persistent cache store: ``Profiler`` structures on disk, per relation.

A :class:`CacheStore` is a directory of versioned binary entries keyed by
``(relation fingerprint, structure kind, params)``.  It is what lets warmed
sessions survive process restarts and be shared between workers: a
:class:`~repro.api.Profiler` dumps its caches with
:meth:`~repro.api.Profiler.dump_caches` and a fresh session (same relation,
different process) reloads them with :meth:`~repro.api.Profiler.warm_from`;
the :class:`~repro.serve.pool.SessionPool` does both automatically when
constructed with ``store=`` (evicted sessions spill, admitted sessions
warm-start).

Entry format
------------
One file per entry::

    magic (8 bytes) | header length (8 bytes LE) | JSON header | raw buffers

The header carries the store format version, the fingerprint, kind and params
of the entry, a JSON-native ``meta`` payload, the dtype/shape manifest of
the numpy buffers that follow (``np.save``-style raw C-order bytes, no
pickling anywhere), and a BLAKE2b digest over those buffers.  Loads are
defensive — every one of these failures makes :meth:`CacheStore.get` return
``None`` (callers fall back to a cold build) instead of raising:

* unknown magic or store format version (``FORMAT_VERSION`` bumps whenever
  the payload layout of any kind changes);
* a dtype outside the fixed allowlist, or buffers shorter than the manifest
  promises (truncated/corrupted files);
* a payload digest that does not match the header's (bit rot, torn or
  patched buffers);
* a header fingerprint that does not match the requested one (the
  re-verification that catches moved or mixed-up files);
* params recorded in the header differing from the requested params.

Structurally corrupt files additionally get **quarantined**: moved to
``<root>/quarantine/`` next to a ``.reason`` file naming what was wrong, so
a damaged store degrades to a cold start *visibly* instead of silently.
:meth:`CacheStore.fsck` sweeps the whole store on demand (shallow header
checks or deep digest verification — the ``repro-discover --cache-fsck``
command and the serving CLIs' startup sweep run it).

Writes are atomic: the entry is written to a temp file in the target
directory and ``os.replace``d into place, so concurrent readers in other
worker processes only ever observe complete entries.

The module also hosts the pack/unpack helpers for every persisted structure
kind (free/closed mining results, partition bundles, difference-set provider
query caches, engine results); :class:`~repro.api.Profiler` orchestrates
them but owns no format knowledge.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import struct
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.devtools.lockcheck import check_io_unlocked
from repro.exceptions import CacheStoreError
from repro.obs.names import SPAN_STORE_GET, SPAN_STORE_PUT
from repro.serve.faults import (
    FAULT_POINT_STORE_GET,
    FAULT_POINT_STORE_PUT,
    FaultInjected,
    FaultPlan,
)

#: Structure kinds the store understands (order = warm-load priority: the
#: closed difference-set provider is rebuilt from the free/closed result, so
#: mining entries must land first).
KIND_FREE_CLOSED = "free_closed"
KIND_ATTRIBUTE_PARTITIONS = "attribute_partitions"
KIND_PATTERN_PARTITIONS = "pattern_partitions"
KIND_DIFFERENCE_SETS = "difference_sets"
KIND_ENGINE_RESULTS = "engine_results"
#: Mid-run lattice frontier of a CTANE run (resume-after-crash); not part of
#: KIND_ORDER because it is not a warm-load structure — the engine fetches it
#: by key when (and only when) it runs.
KIND_CTANE_CHECKPOINT = "ctane_checkpoint"
KIND_ORDER = (
    KIND_FREE_CLOSED,
    KIND_ATTRIBUTE_PARTITIONS,
    KIND_PATTERN_PARTITIONS,
    KIND_DIFFERENCE_SETS,
    KIND_ENGINE_RESULTS,
)

#: Numpy dtypes an entry may carry; anything else is rejected on load.
ALLOWED_DTYPES = frozenset(
    {"int8", "int16", "int32", "int64", "uint8", "uint16", "uint32", "uint64",
     "float32", "float64", "bool"}
)

#: Scalar types that survive a JSON round trip unchanged; engine results and
#: options containing anything else are simply not persisted.
_JSON_SCALARS = (str, int, float, bool, type(None))


def is_json_scalar(value: object) -> bool:
    return isinstance(value, _JSON_SCALARS)


def _canonical_params(params: Dict[str, object]) -> str:
    """Deterministic JSON rendering of an entry's params (the key suffix)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass
class StoreEntry:
    """One decoded store entry: identity, JSON meta and named numpy buffers."""

    fingerprint: str
    kind: str
    params: Dict[str, object]
    meta: Dict[str, object]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def array(self, name: str, dtype: str) -> np.ndarray:
        """The named buffer, guarded to the expected dtype."""
        try:
            array = self.arrays[name]
        except KeyError:
            raise CacheStoreError(f"entry misses array {name!r}") from None
        if array.dtype != np.dtype(dtype):
            raise CacheStoreError(
                f"array {name!r} has dtype {array.dtype}, expected {dtype}"
            )
        return array


class CacheStore:
    """A versioned on-disk store of per-relation discovery structures.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).  Entries live in
        one sub-directory per relation fingerprint.
    max_bytes:
        Optional size budget.  The store never *blocks* a write on it;
        instead :meth:`enforce_budget` (called by spill paths —
        :meth:`~repro.api.Profiler.dump_caches` and the session pool's
        persist) runs :meth:`gc` down to the budget whenever the footprint
        exceeds it, so a long-lived serving store converges to the cap
        instead of growing without bound.

    The store itself is format-only: it reads and writes
    :class:`StoreEntry` records and never interprets the payloads — the
    pack/unpack helpers of this module and
    :meth:`~repro.api.Profiler.dump_caches` /
    :meth:`~repro.api.Profiler.warm_from` do.
    """

    #: Bump whenever the binary layout or any kind's payload schema changes;
    #: readers skip entries written under any other version.  Version 2 added
    #: the mandatory ``payload_digest`` header field (BLAKE2b over the raw
    #: array buffers, verified on every full load).
    FORMAT_VERSION = 2
    MAGIC = b"RPROCS01"
    _SUFFIX = ".rpc"
    #: Corrupt entries are moved here (flattened ``<fingerprint>-<entry>``
    #: names, each with a ``.reason`` sidecar) instead of being deleted.
    QUARANTINE_DIRNAME = "quarantine"

    #: Lock-file acquisition: retry cadence, give-up horizon, and the mtime
    #: age past which a lock is presumed abandoned (a crashed worker) and
    #: broken.
    LOCK_RETRY_SECONDS = 0.005
    LOCK_TIMEOUT_SECONDS = 5.0
    LOCK_STALE_SECONDS = 30.0

    def __init__(
        self,
        root: os.PathLike,
        *,
        max_bytes: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        sweep: bool = False,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise CacheStoreError("max_bytes must be at least 0")
        self._root = Path(root)
        self.max_bytes = max_bytes
        self._faults = faults
        try:
            self._root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheStoreError(
                f"cannot create cache store at {self._root}: {exc}"
            ) from exc
        self.writes = 0
        self.loads = 0
        self.load_failures = 0
        self.gc_runs = 0
        self.gc_removed = 0
        self.lock_timeouts = 0
        self.quarantined = 0
        if sweep:
            # Startup recovery: shallow-check every entry (magic, header,
            # version, manifest-vs-size) and quarantine the torn/corrupt
            # leftovers of a crashed writer before serving starts.
            self.fsck(deep=False)

    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def _entry_path(self, fingerprint: str, kind: str, params: Dict) -> Path:
        import hashlib

        digest = hashlib.blake2b(
            _canonical_params(params).encode("utf-8"), digest_size=6
        ).hexdigest()
        return self._root / fingerprint / f"{kind}-{digest}{self._SUFFIX}"

    def _visit_fault(self, point: str) -> Optional[float]:
        """Apply the fault plan at ``point``; injected failures surface as
        the store's native :class:`CacheStoreError` (torn-write faults
        return the surviving payload fraction for :meth:`put` to apply)."""
        if self._faults is None:
            return None
        try:
            return self._faults.visit(point)
        except (FaultInjected, ConnectionResetError) as exc:
            raise CacheStoreError(f"injected fault at {point}: {exc}") from exc

    @staticmethod
    def _payload_digest(chunks: Iterable[bytes]) -> str:
        digest = hashlib.blake2b(digest_size=16)
        for chunk in chunks:
            digest.update(chunk)
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def put(
        self,
        fingerprint: str,
        kind: str,
        params: Dict[str, object],
        *,
        meta: Optional[Dict[str, object]] = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> Path:
        """Write one entry atomically (temp file + rename); returns its path."""
        check_io_unlocked(FAULT_POINT_STORE_PUT)
        with obs.get_tracer().start_span(SPAN_STORE_PUT, kind=kind) as span:
            return self._put_traced(span, fingerprint, kind, params, meta, arrays)

    def _put_traced(
        self,
        span,
        fingerprint: str,
        kind: str,
        params: Dict[str, object],
        meta: Optional[Dict[str, object]],
        arrays: Optional[Dict[str, np.ndarray]],
    ) -> Path:
        arrays = arrays or {}
        manifest = []
        buffers: List[bytes] = []
        for name, array in arrays.items():
            dtype = str(array.dtype)
            if dtype not in ALLOWED_DTYPES:
                raise CacheStoreError(f"dtype {dtype} is not storable")
            manifest.append({"name": name, "dtype": dtype, "shape": list(array.shape)})
            buffers.append(np.ascontiguousarray(array).tobytes())
        header = {
            "format_version": self.FORMAT_VERSION,
            "fingerprint": fingerprint,
            "kind": kind,
            "params": params,
            "meta": meta or {},
            "arrays": manifest,
            "payload_digest": self._payload_digest(buffers),
        }
        try:
            blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        except (TypeError, ValueError) as exc:
            raise CacheStoreError(f"entry header is not JSON-native: {exc}") from exc
        path = self._entry_path(fingerprint, kind, params)
        torn_fraction = self._visit_fault(FAULT_POINT_STORE_PUT)
        if torn_fraction is not None:
            # Emulate a crash mid-write that bypassed the atomic rename: a
            # truncated entry lands on the *final* path, then the writer
            # "dies" (the caller sees the store's native failure).  Recovery
            # sweeps and digest checks must catch exactly this file.
            full = self.MAGIC + struct.pack("<Q", len(blob)) + blob + b"".join(buffers)
            keep = max(len(self.MAGIC) + 4, int(len(full) * torn_fraction))
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_bytes(full[:keep])
            except OSError:
                pass
            raise CacheStoreError(f"injected torn write at store entry {path}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=self._SUFFIX
            )
        except OSError as exc:
            raise CacheStoreError(f"cannot write store entry {path}: {exc}") from exc
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(self.MAGIC)
                stream.write(struct.pack("<Q", len(blob)))
                stream.write(blob)
                for chunk in buffers:
                    stream.write(chunk)
            os.replace(temp_name, path)
        except OSError as exc:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise CacheStoreError(f"cannot write store entry {path}: {exc}") from exc
        self.writes += 1
        span.set_attr("bytes", len(blob) + sum(len(chunk) for chunk in buffers))
        return path

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def _load_path(self, path: Path) -> StoreEntry:
        """Decode one entry file; every malformation raises CacheStoreError."""
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CacheStoreError(f"cannot read store entry {path}: {exc}") from exc
        if len(blob) < len(self.MAGIC) + 8 or not blob.startswith(self.MAGIC):
            raise CacheStoreError(f"{path} is not a cache-store entry")
        offset = len(self.MAGIC)
        (header_len,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        if offset + header_len > len(blob):
            raise CacheStoreError(f"{path} is truncated (header)")
        try:
            header = json.loads(blob[offset:offset + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CacheStoreError(f"{path} has a corrupt header: {exc}") from exc
        offset += header_len
        if header.get("format_version") != self.FORMAT_VERSION:
            raise CacheStoreError(
                f"{path} was written under store format "
                f"{header.get('format_version')!r}, this reader expects "
                f"{self.FORMAT_VERSION}"
            )
        arrays: Dict[str, np.ndarray] = {}
        payload_start = offset
        for spec in header.get("arrays", []):
            dtype = spec.get("dtype")
            if dtype not in ALLOWED_DTYPES:
                raise CacheStoreError(f"{path} declares forbidden dtype {dtype!r}")
            shape = tuple(int(n) for n in spec.get("shape", []))
            count = int(np.prod(shape)) if shape else 1
            nbytes = count * np.dtype(dtype).itemsize
            if offset + nbytes > len(blob):
                raise CacheStoreError(f"{path} is truncated (array {spec['name']!r})")
            arrays[spec["name"]] = np.frombuffer(
                blob, dtype=np.dtype(dtype), count=count, offset=offset
            ).reshape(shape)
            offset += nbytes
        expected = header.get("payload_digest")
        if not isinstance(expected, str):
            raise CacheStoreError(f"{path} carries no payload digest")
        actual = self._payload_digest([blob[payload_start:offset]])
        if actual != expected:
            raise CacheStoreError(
                f"{path} fails its payload digest "
                f"(header {expected}, computed {actual})"
            )
        return StoreEntry(
            fingerprint=header.get("fingerprint", ""),
            kind=header.get("kind", ""),
            params=header.get("params", {}),
            meta=header.get("meta", {}),
            arrays=arrays,
        )

    def get(
        self, fingerprint: str, kind: str, params: Dict[str, object]
    ) -> Optional[StoreEntry]:
        """The entry for this key, or ``None`` (missing, corrupt, mismatched)."""
        check_io_unlocked(FAULT_POINT_STORE_GET)
        with obs.get_tracer().start_span(SPAN_STORE_GET, kind=kind) as span:
            path = self._entry_path(fingerprint, kind, params)
            try:
                self._visit_fault(FAULT_POINT_STORE_GET)
            except CacheStoreError:
                self.load_failures += 1
                span.set_attr("hit", False)
                return None
            if not path.exists():
                span.set_attr("hit", False)
                return None
            try:
                entry = self._load_path(path)
            except CacheStoreError as exc:
                # Structural corruption (torn write, bit rot, bad version):
                # move the file out of the serving path with its reason on
                # record.
                self.load_failures += 1
                self._quarantine(path, str(exc))
                span.set_attr("hit", False)
                span.set_status("error", error="corrupt")
                return None
            try:
                self._verify(entry, fingerprint, kind=kind, params=params)
            except CacheStoreError:
                self.load_failures += 1
                span.set_attr("hit", False)
                return None
            self.loads += 1
            span.set_attr("hit", True)
            return entry

    def _verify(
        self,
        entry: StoreEntry,
        fingerprint: str,
        *,
        kind: Optional[str] = None,
        params: Optional[Dict] = None,
    ) -> None:
        if entry.fingerprint != fingerprint:
            raise CacheStoreError(
                f"entry fingerprint {entry.fingerprint!r} does not match the "
                f"requested relation {fingerprint!r}"
            )
        if kind is not None and entry.kind != kind:
            raise CacheStoreError(f"entry kind {entry.kind!r} != {kind!r}")
        if params is not None and _canonical_params(entry.params) != _canonical_params(
            params
        ):
            raise CacheStoreError("entry params do not match the requested params")

    def load_all(self, fingerprint: str) -> List[StoreEntry]:
        """Every readable entry of one relation, in warm-load kind order.

        Corrupt/mismatched entries are counted in :attr:`load_failures` and
        silently skipped — a damaged store degrades to a cold start, never to
        a crash.
        """
        directory = self._root / fingerprint
        if not directory.is_dir():
            return []
        entries: List[StoreEntry] = []
        for path in sorted(directory.glob(f"*{self._SUFFIX}")):
            if path.name.startswith("."):
                continue  # in-progress temp files
            try:
                entry = self._load_path(path)
            except CacheStoreError as exc:
                self.load_failures += 1
                self._quarantine(path, str(exc))
                continue
            try:
                self._verify(entry, fingerprint)
            except CacheStoreError:
                self.load_failures += 1
                continue
            self.loads += 1
            entries.append(entry)
        rank = {kind: index for index, kind in enumerate(KIND_ORDER)}
        entries.sort(key=lambda e: rank.get(e.kind, len(rank)))
        return entries

    # ------------------------------------------------------------------ #
    # cross-process locking
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def lock(self, fingerprint: str, kind: str) -> Iterator[bool]:
        """A cross-process lock over one ``(fingerprint, kind)`` merge scope.

        Two workers sharing a store directory both run read→union→write on
        the fixed-key bundle entries during spill; without mutual exclusion
        the slower writer silently drops the faster one's additions.  The
        lock is an ``O_CREAT | O_EXCL`` file (``.lock-<kind>`` inside the
        relation's directory — dot-prefixed, so entry walks skip it) retried
        every :attr:`LOCK_RETRY_SECONDS`.  Locks older than
        :attr:`LOCK_STALE_SECONDS` are presumed abandoned by a crashed
        holder and broken.  Acquisition is **best-effort**: after
        :attr:`LOCK_TIMEOUT_SECONDS` the context proceeds *without* the lock
        (yielding ``False``) — a spill must degrade to the old racy merge,
        never fail or hang the serving path.
        """
        directory = self._root / fingerprint
        path = directory / f".lock-{kind}"
        deadline = time.monotonic() + self.LOCK_TIMEOUT_SECONDS
        acquired = False
        while True:
            try:
                directory.mkdir(parents=True, exist_ok=True)
                handle = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(handle)
                acquired = True
                break
            except FileExistsError:
                if time.monotonic() >= deadline:
                    self.lock_timeouts += 1
                    break
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue  # holder just released: retry immediately
                if age > self.LOCK_STALE_SECONDS:
                    try:
                        path.unlink()  # break the abandoned lock
                    except OSError:
                        pass
                    continue
                time.sleep(self.LOCK_RETRY_SECONDS)
            except OSError:
                # An unwritable directory must not fail the spill either.
                self.lock_timeouts += 1
                break
        try:
            yield acquired
        finally:
            if acquired:
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------ #
    # recovery: quarantine and fsck
    # ------------------------------------------------------------------ #
    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved (``<root>/quarantine/``)."""
        return self._root / self.QUARANTINE_DIRNAME

    def _quarantine(self, path: Path, reason: str) -> bool:
        """Move one corrupt entry to the quarantine directory, best-effort.

        The entry keeps its bytes (``<fingerprint>-<name>``) and gains a
        ``.reason`` sidecar recording why it was pulled; a store that cannot
        quarantine (read-only, races) still degrades to a cold start.
        """
        target_dir = self.quarantine_dir
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / f"{path.parent.name}-{path.name}"
            suffix = 0
            while target.exists():
                suffix += 1
                target = target_dir / f"{path.parent.name}-{path.name}.{suffix}"
            os.replace(str(path), str(target))
            target.with_name(target.name + ".reason").write_text(
                f"source: {path}\nreason: {reason}\n", encoding="utf-8"
            )
        except OSError:
            return False
        self.quarantined += 1
        return True

    def _check_shallow(self, path: Path) -> None:
        """Cheap integrity check: magic, header, version, manifest vs size.

        Catches torn writes and truncation without reading the array
        payload; :meth:`fsck` with ``deep=True`` adds the digest pass.
        """
        try:
            size = path.stat().st_size
            with path.open("rb") as stream:
                magic = stream.read(len(self.MAGIC))
                if magic != self.MAGIC:
                    raise CacheStoreError(f"{path} is not a cache-store entry")
                prefix = stream.read(8)
                if len(prefix) != 8:
                    raise CacheStoreError(f"{path} is truncated (header length)")
                (header_len,) = struct.unpack("<Q", prefix)
                if header_len > 64 * 2 ** 20:
                    raise CacheStoreError(f"{path} declares an absurd header")
                blob = stream.read(header_len)
        except OSError as exc:
            raise CacheStoreError(f"cannot read store entry {path}: {exc}") from exc
        if len(blob) != header_len:
            raise CacheStoreError(f"{path} is truncated (header)")
        try:
            header = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CacheStoreError(f"{path} has a corrupt header: {exc}") from exc
        if header.get("format_version") != self.FORMAT_VERSION:
            raise CacheStoreError(
                f"{path} was written under store format "
                f"{header.get('format_version')!r}, this reader expects "
                f"{self.FORMAT_VERSION}"
            )
        if not isinstance(header.get("payload_digest"), str):
            raise CacheStoreError(f"{path} carries no payload digest")
        expected = len(self.MAGIC) + 8 + header_len
        try:
            for spec in header.get("arrays", []):
                dtype = spec.get("dtype")
                if dtype not in ALLOWED_DTYPES:
                    raise CacheStoreError(
                        f"{path} declares forbidden dtype {dtype!r}"
                    )
                shape = tuple(int(n) for n in spec.get("shape", []))
                count = int(np.prod(shape)) if shape else 1
                expected += count * np.dtype(dtype).itemsize
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheStoreError(f"{path} has a corrupt manifest: {exc}") from exc
        if size < expected:
            raise CacheStoreError(
                f"{path} is truncated ({size} bytes on disk, manifest "
                f"promises {expected})"
            )

    def fsck(self, *, deep: bool = True) -> Dict[str, object]:
        """Sweep every entry, quarantining the corrupt ones; returns a report.

        ``deep=True`` fully decodes each entry (including the payload-digest
        verification); ``deep=False`` runs the shallow header/size check only
        — that is the startup sweep (``CacheStore(..., sweep=True)``), cheap
        enough to run before serving.  The report lists each quarantined
        entry with its reason.
        """
        checked = 0
        healthy = 0
        problems: List[Dict[str, str]] = []
        for path in self._entry_files():
            checked += 1
            try:
                if deep:
                    self._load_path(path)
                else:
                    self._check_shallow(path)
            except CacheStoreError as exc:
                reason = str(exc)
                self._quarantine(path, reason)
                problems.append({"path": str(path), "reason": reason})
                continue
            healthy += 1
        return {
            "checked": checked,
            "healthy": healthy,
            "quarantined": len(problems),
            "problems": problems,
            "quarantine_dir": str(self.quarantine_dir),
        }

    # ------------------------------------------------------------------ #
    # maintenance / introspection
    # ------------------------------------------------------------------ #
    def delete(
        self, fingerprint: str, kind: str, params: Dict[str, object]
    ) -> bool:
        """Remove one entry by key; ``True`` if a file was deleted."""
        path = self._entry_path(fingerprint, kind, params)
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def _entry_files(self) -> List[Path]:
        return [
            path
            for path in self._root.glob(f"*/*{self._SUFFIX}")
            if not path.name.startswith(".")
            and path.parent.name != self.QUARANTINE_DIRNAME
        ]

    def size_bytes(self) -> int:
        """Total bytes of every entry file currently in the store."""
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def __len__(self) -> int:
        return len(self._entry_files())

    def _read_header(self, path: Path) -> Dict:
        """Decode only the JSON header of one entry (no array buffers)."""
        try:
            with path.open("rb") as stream:
                magic = stream.read(len(self.MAGIC))
                if magic != self.MAGIC:
                    raise CacheStoreError(f"{path} is not a cache-store entry")
                prefix = stream.read(8)
                if len(prefix) != 8:
                    raise CacheStoreError(f"{path} is truncated (header length)")
                (header_len,) = struct.unpack("<Q", prefix)
                if header_len > 64 * 2 ** 20:
                    raise CacheStoreError(f"{path} declares an absurd header")
                blob = stream.read(header_len)
        except OSError as exc:
            raise CacheStoreError(f"cannot read store entry {path}: {exc}") from exc
        if len(blob) != header_len:
            raise CacheStoreError(f"{path} is truncated (header)")
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CacheStoreError(f"{path} has a corrupt header: {exc}") from exc

    def gc(self, max_bytes: int) -> Dict[str, object]:
        """Shrink the store to at most ``max_bytes``; returns a summary.

        Victims follow the session pool's cost-aware eviction score: the
        entry with the **lowest recorded build cost** (the ``build_seconds``
        its writer observed — what a cold rebuild would pay) goes first, with
        **oldest mtime** as the tiebreak; unreadable or wrong-version entries
        score below everything and are collected before any healthy one.
        Emptied per-relation directories are pruned.  ``gc(0)`` clears the
        store.  Deletion is best-effort — an entry that vanishes or resists
        unlinking (a concurrent worker, a read-only file) is skipped, never an
        error — so GC can run while other workers serve.
        """
        if max_bytes < 0:
            raise CacheStoreError("max_bytes must be at least 0")
        entries = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            try:
                header = self._read_header(path)
                if header.get("format_version") != self.FORMAT_VERSION:
                    raise CacheStoreError("wrong format version")
                score = float(header.get("meta", {}).get("build_seconds") or 0.0)
            except (AttributeError, CacheStoreError, TypeError, ValueError):
                # AttributeError covers a null / non-dict "meta" field: any
                # malformation scores below every healthy entry.
                score = -1.0
            entries.append((score, stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        removed = 0
        removed_bytes = 0
        if total > max_bytes:
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            for score, _mtime, size, path in entries:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
                removed_bytes += size
            for directory in self._root.iterdir():
                if directory.is_dir():
                    try:
                        directory.rmdir()  # only succeeds once empty
                    except OSError:
                        pass
        self.gc_runs += 1
        self.gc_removed += removed
        return {
            "max_bytes": int(max_bytes),
            "removed_entries": removed,
            "removed_bytes": removed_bytes,
            "remaining_entries": len(self),
            "remaining_bytes": total,
        }

    def enforce_budget(self) -> Optional[Dict[str, object]]:
        """Run :meth:`gc` down to :attr:`max_bytes` when the store exceeds it.

        ``None`` when no budget is configured or the store is within it.
        Spill paths call this after writing (``Profiler.dump_caches``, the
        session pool's persist), so the cap is enforced exactly where growth
        happens instead of only via the offline ``--cache-gc`` command.
        """
        if self.max_bytes is None:
            return None
        if self.size_bytes() <= self.max_bytes:
            return None
        return self.gc(self.max_bytes)

    def clear(self, fingerprint: Optional[str] = None) -> int:
        """Delete all entries (of one relation, if given); returns the count."""
        removed = 0
        for path in self._entry_files():
            if fingerprint is not None and path.parent.name != fingerprint:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def info(self) -> Dict[str, object]:
        """Counters plus the on-disk footprint."""
        return {
            "root": str(self._root),
            "entries": len(self),
            "bytes": self.size_bytes(),
            "max_bytes": self.max_bytes,
            "writes": self.writes,
            "loads": self.loads,
            "load_failures": self.load_failures,
            "gc_runs": self.gc_runs,
            "gc_removed": self.gc_removed,
            "lock_timeouts": self.lock_timeouts,
            "quarantined": self.quarantined,
        }


# ---------------------------------------------------------------------- #
# pack/unpack: free/closed mining results
# ---------------------------------------------------------------------- #
def pack_free_closed(result) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """``(meta, arrays)`` of a :class:`~repro.itemsets.mining.FreeClosedResult`.

    Tid-lists are concatenated into one int64 buffer with an offsets array;
    the item sets and closures ride in the JSON meta as ``[attr, code]``
    pairs.
    """
    sets = []
    tid_chunks: List[np.ndarray] = []
    offsets = [0]
    for free in result.free_sets.values():
        sets.append(
            {
                "items": sorted([int(a), int(c)] for a, c in free.items),
                "closure": sorted([int(a), int(c)] for a, c in free.closure),
            }
        )
        tid_chunks.append(np.asarray(free.tids, dtype=np.int64))
        offsets.append(offsets[-1] + int(free.tids.size))
    tids = (
        np.concatenate(tid_chunks) if tid_chunks else np.empty(0, dtype=np.int64)
    )
    meta = {
        "min_support": int(result.min_support),
        "n_rows": int(result.n_rows),
        "sets": sets,
    }
    arrays = {"tids": tids, "offsets": np.asarray(offsets, dtype=np.int64)}
    return meta, arrays


def unpack_free_closed(entry: StoreEntry):
    """Rebuild a :class:`~repro.itemsets.mining.FreeClosedResult` from an entry."""
    from repro.itemsets.mining import FreeClosedResult, FreeItemSet

    tids = entry.array("tids", "int64")
    offsets = entry.array("offsets", "int64")
    sets = entry.meta["sets"]
    if offsets.size != len(sets) + 1:
        raise CacheStoreError("free/closed offsets do not match the item sets")
    free_sets = {}
    for index, spec in enumerate(sets):
        items = frozenset((int(a), int(c)) for a, c in spec["items"])
        closure = frozenset((int(a), int(c)) for a, c in spec["closure"])
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        if not 0 <= lo <= hi <= tids.size:
            raise CacheStoreError("free/closed tid offsets out of range")
        free_sets[items] = FreeItemSet(
            items=items, tids=tids[lo:hi], closure=closure
        )
    return FreeClosedResult(
        free_sets,
        min_support=int(entry.meta["min_support"]),
        n_rows=int(entry.meta["n_rows"]),
    )


# ---------------------------------------------------------------------- #
# pack/unpack: partition bundles
# ---------------------------------------------------------------------- #
def pack_partition_bundle(
    items: Sequence[Tuple[object, "object"]]
) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """``(meta, arrays)`` of ``[(json_key, Partition), ...]``.

    The compressed covered form of every partition (sorted int64 row indices
    plus int32 class labels) is concatenated into two buffers; the keys and
    per-partition counts ride in the meta.
    """
    keys = []
    shapes = []
    row_chunks: List[np.ndarray] = []
    label_chunks: List[np.ndarray] = []
    offsets = [0]
    for key, partition in items:
        keys.append(key)
        shapes.append(
            [int(partition.n_rows), int(partition.n_classes), int(partition.size)]
        )
        rows = np.asarray(partition.covered_index, dtype=np.int64)
        row_chunks.append(rows)
        label_chunks.append(np.asarray(partition.covered_labels, dtype=np.int32))
        offsets.append(offsets[-1] + int(rows.size))
    meta = {"keys": keys, "shapes": shapes}
    arrays = {
        "rows": np.concatenate(row_chunks)
        if row_chunks
        else np.empty(0, dtype=np.int64),
        "labels": np.concatenate(label_chunks)
        if label_chunks
        else np.empty(0, dtype=np.int32),
        "offsets": np.asarray(offsets, dtype=np.int64),
    }
    return meta, arrays


def unpack_partition_bundle(entry: StoreEntry) -> List[Tuple[object, "object"]]:
    """Rebuild ``[(json_key, Partition), ...]`` from a bundle entry."""
    from repro.relational.partition import Partition

    rows = entry.array("rows", "int64")
    labels = entry.array("labels", "int32")
    offsets = entry.array("offsets", "int64")
    keys = entry.meta["keys"]
    shapes = entry.meta["shapes"]
    if rows.size != labels.size:
        raise CacheStoreError("partition bundle rows/labels length mismatch")
    if offsets.size != len(keys) + 1 or len(shapes) != len(keys):
        raise CacheStoreError("partition bundle manifest mismatch")
    out = []
    for index, key in enumerate(keys):
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        if not 0 <= lo <= hi <= rows.size:
            raise CacheStoreError("partition bundle offsets out of range")
        n_rows, n_classes, size = (int(v) for v in shapes[index])
        out.append(
            (
                key,
                Partition.from_covered(
                    rows[lo:hi], labels[lo:hi], n_rows, n_classes, size=size
                ),
            )
        )
    return out


# ---------------------------------------------------------------------- #
# pack/unpack: difference-set provider query caches
# ---------------------------------------------------------------------- #
def pack_query_cache(
    exported: Iterable[Tuple[int, frozenset, Set[frozenset]]]
) -> Dict:
    """Meta payload of a difference-set provider's ``export_cache()``."""
    entries = []
    for rhs, items, family in exported:
        entries.append(
            [
                int(rhs),
                sorted([int(a), int(c)] for a, c in items),
                sorted(sorted(int(a) for a in member) for member in family),
            ]
        )
    entries.sort()
    return {"entries": entries}


def unpack_query_cache(meta: Dict) -> List[Tuple[int, frozenset, Set[frozenset]]]:
    """The ``import_cache()`` payload of a persisted provider query cache."""
    out = []
    for rhs, items, family in meta["entries"]:
        out.append(
            (
                int(rhs),
                frozenset((int(a), int(c)) for a, c in items),
                {frozenset(int(a) for a in member) for member in family},
            )
        )
    return out


# ---------------------------------------------------------------------- #
# pack/unpack: engine results (canonical covers + stats)
# ---------------------------------------------------------------------- #
def _pack_pattern_value(value: object) -> Optional[List]:
    """``[0, constant]`` / ``[1, None]`` (wildcard); ``None`` if not storable."""
    from repro.core.pattern import is_wildcard

    if is_wildcard(value):
        return [1, None]
    if not is_json_scalar(value):
        return None
    return [0, value]


def _unpack_pattern_value(spec: Sequence) -> object:
    from repro.core.pattern import WILDCARD

    flag, value = spec
    return WILDCARD if flag else value


def pack_engine_result(cfds, stats) -> Optional[Dict]:
    """Meta payload of one cached engine run, or ``None`` if any pattern
    value would not survive a JSON round trip byte-identically."""
    rules = []
    for cfd in cfds:
        lhs_pattern = []
        for value in cfd.lhs_pattern:
            packed = _pack_pattern_value(value)
            if packed is None:
                return None
            lhs_pattern.append(packed)
        rhs_pattern = _pack_pattern_value(cfd.rhs_pattern)
        if rhs_pattern is None:
            return None
        rules.append(
            {
                "lhs": list(cfd.lhs),
                "lhs_pattern": lhs_pattern,
                "rhs": cfd.rhs,
                "rhs_pattern": rhs_pattern,
            }
        )
    counters = {
        name: getattr(stats, name)
        for name in stats._COUNTERS
        if getattr(stats, name) is not None
    }
    extras = {
        key: value for key, value in stats.extras.items() if is_json_scalar(value)
    }
    return {
        "rules": rules,
        "stats": {
            "algorithm": stats.algorithm,
            "counters": counters,
            "extras": extras,
        },
    }


def unpack_engine_result(meta: Dict):
    """Rebuild ``(cfds, stats)`` from a persisted engine-result entry."""
    from repro.api.result import AlgorithmStats
    from repro.core.cfd import CFD

    cfds = []
    for rule in meta["rules"]:
        cfds.append(
            CFD(
                tuple(rule["lhs"]),
                tuple(_unpack_pattern_value(v) for v in rule["lhs_pattern"]),
                rule["rhs"],
                _unpack_pattern_value(rule["rhs_pattern"]),
            )
        )
    spec = meta["stats"]
    stats = AlgorithmStats(
        algorithm=spec.get("algorithm", ""),
        extras=dict(spec.get("extras", {})),
        **{key: int(value) for key, value in spec.get("counters", {}).items()},
    )
    return tuple(cfds), stats


# ---------------------------------------------------------------------- #
# pack/unpack: CTANE checkpoints (mid-run lattice frontiers)
# ---------------------------------------------------------------------- #
def _pack_code(code: object) -> List:
    """``[1, None]`` for the wildcard, ``[0, int]`` for a constant code."""
    from repro.core.pattern import is_wildcard

    return [1, None] if is_wildcard(code) else [0, int(code)]


def _unpack_code(spec: Sequence) -> object:
    from repro.core.pattern import WILDCARD

    flag, value = spec
    return WILDCARD if flag else int(value)


def _pack_element(element: Tuple) -> List:
    attrs, pattern = element
    return [[int(a) for a in attrs], [_pack_code(code) for code in pattern]]


def _unpack_element(spec: Sequence) -> Tuple:
    attrs, pattern = spec
    return (
        tuple(int(a) for a in attrs),
        tuple(_unpack_code(code) for code in pattern),
    )


def pack_ctane_checkpoint(state: Dict) -> Optional[Tuple[Dict, Dict[str, np.ndarray]]]:
    """``(meta, arrays)`` of a CTANE per-level checkpoint, or ``None`` when
    the already-emitted CFDs carry values that would not survive a JSON
    round trip byte-identically (then the run simply is not checkpointable).

    The state is the engine's loop frontier at the top of one lattice level:
    the level's elements, the previous level's candidate-RHS sets and (in
    incremental mode) pattern partitions, the current level's partitions,
    the results so far, and the traversal counters.
    """
    rules = []
    for cfd in state["results"]:
        lhs_pattern = []
        for value in cfd.lhs_pattern:
            packed = _pack_pattern_value(value)
            if packed is None:
                return None
            lhs_pattern.append(packed)
        rhs_pattern = _pack_pattern_value(cfd.rhs_pattern)
        if rhs_pattern is None:
            return None
        rules.append(
            {
                "lhs": list(cfd.lhs),
                "lhs_pattern": lhs_pattern,
                "rhs": cfd.rhs,
                "rhs_pattern": rhs_pattern,
            }
        )
    cplus = [
        [
            _pack_element(element),
            sorted([int(attr), _pack_code(code)] for attr, code in items),
        ]
        for element, items in state["parent_cplus"].items()
    ]
    meta: Dict[str, object] = {
        "size": int(state["size"]),
        "incremental": bool(state["incremental"]),
        "level": [_pack_element(element) for element in state["level"]],
        "parent_cplus": cplus,
        "rules": rules,
        "counters": {
            key: int(value) for key, value in state["counters"].items()
        },
    }
    arrays: Dict[str, np.ndarray] = {}
    for prefix, key in (("p", "parent_partitions"), ("l", "level_partitions")):
        items = [
            (_pack_element(element), partition)
            for element, partition in state.get(key, {}).items()
        ]
        bundle_meta, bundle_arrays = pack_partition_bundle(items)
        meta[f"{prefix}_keys"] = bundle_meta["keys"]
        meta[f"{prefix}_shapes"] = bundle_meta["shapes"]
        for name, array in bundle_arrays.items():
            arrays[f"{prefix}_{name}"] = array
    return meta, arrays


def unpack_ctane_checkpoint(entry: StoreEntry) -> Dict:
    """Rebuild a CTANE checkpoint state dict from a persisted entry."""
    from repro.core.cfd import CFD

    results = []
    for rule in entry.meta["rules"]:
        results.append(
            CFD(
                tuple(rule["lhs"]),
                tuple(_unpack_pattern_value(v) for v in rule["lhs_pattern"]),
                rule["rhs"],
                _unpack_pattern_value(rule["rhs_pattern"]),
            )
        )
    parent_cplus = {
        _unpack_element(element): {
            (int(attr), _unpack_code(code)) for attr, code in items
        }
        for element, items in entry.meta["parent_cplus"]
    }
    state: Dict[str, object] = {
        "size": int(entry.meta["size"]),
        "incremental": bool(entry.meta["incremental"]),
        "level": [_unpack_element(element) for element in entry.meta["level"]],
        "parent_cplus": parent_cplus,
        "results": results,
        "counters": {
            key: int(value) for key, value in entry.meta["counters"].items()
        },
    }
    for prefix, key in (("p", "parent_partitions"), ("l", "level_partitions")):
        bundle = StoreEntry(
            fingerprint=entry.fingerprint,
            kind=entry.kind,
            params=entry.params,
            meta={
                "keys": entry.meta[f"{prefix}_keys"],
                "shapes": entry.meta[f"{prefix}_shapes"],
            },
            arrays={
                "rows": entry.array(f"{prefix}_rows", "int64"),
                "labels": entry.array(f"{prefix}_labels", "int32"),
                "offsets": entry.array(f"{prefix}_offsets", "int64"),
            },
        )
        state[key] = {
            _unpack_element(packed): partition
            for packed, partition in unpack_partition_bundle(bundle)
        }
    return state


__all__ = [
    "ALLOWED_DTYPES",
    "CacheStore",
    "StoreEntry",
    "is_json_scalar",
    "KIND_ATTRIBUTE_PARTITIONS",
    "KIND_CTANE_CHECKPOINT",
    "KIND_DIFFERENCE_SETS",
    "KIND_ENGINE_RESULTS",
    "KIND_FREE_CLOSED",
    "KIND_PATTERN_PARTITIONS",
    "KIND_ORDER",
    "pack_ctane_checkpoint",
    "pack_engine_result",
    "pack_free_closed",
    "pack_partition_bundle",
    "pack_query_cache",
    "unpack_ctane_checkpoint",
    "unpack_engine_result",
    "unpack_free_closed",
    "unpack_partition_bundle",
    "unpack_query_cache",
]
