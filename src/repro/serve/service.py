"""The :class:`DiscoveryService` facade: concurrent, deduplicated discovery.

The service is the serving layer's front door.  It accepts
``(relation_ref, DiscoveryRequest)`` calls — ``relation_ref`` is either a
:class:`~repro.relational.relation.Relation` or the name of a relation
registered via :meth:`DiscoveryService.register` — and

* resolves each call to a pooled :class:`~repro.api.Profiler` session
  through its :class:`~repro.serve.pool.SessionPool` (fingerprint-keyed,
  LRU-evicted, byte-budgeted),
* **deduplicates identical in-flight requests**: ``DiscoveryRequest`` is
  frozen and hashable, so ``(fingerprint, request)`` keys a map of pending
  futures and concurrent duplicates coalesce onto one engine run,
* executes requests concurrently on a ``concurrent.futures`` thread pool;
  the per-session lock inside ``Profiler`` makes parallel support sweeps
  over one relation share each cached structure with exactly one build.

Results are ordinary :class:`~repro.api.DiscoveryResult` objects — a
deduplicated caller receives the *same* result object as the request it
coalesced with, which is safe because results are treated as immutable by
every front end.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.api.request import DiscoveryRequest
from repro.devtools.lockcheck import RANK_SERVICE, ranked_lock
from repro.api.result import DiscoveryResult
from repro.exceptions import CacheStoreError, DiscoveryError, UnknownRelationError
from repro.obs.names import SPAN_SERVICE_EXECUTE, SPAN_SERVICE_SUBMIT
from repro.obs.promfmt import DEFAULT_LATENCY_BUCKETS
from repro.relational.relation import Relation
from repro.serve.faults import FAULT_POINT_SERVICE_EXECUTE, FaultPlan
from repro.serve.fingerprint import relation_fingerprint
from repro.serve.pool import SessionPool
from repro.serve.store import CacheStore

#: What callers may pass as the relation of a request.
RelationRef = Union[Relation, str]

#: Upper bucket bounds (seconds) of the service's request-latency histogram —
#: the shape ``/metrics`` renders as a Prometheus histogram.  One definition
#: (:data:`repro.obs.promfmt.DEFAULT_LATENCY_BUCKETS`) shared with the HTTP
#: handler histogram, so both latency views on a /metrics page line up.
LATENCY_BUCKETS = DEFAULT_LATENCY_BUCKETS

#: Cap on the named-relation registry.  Every other serving resource is
#: bounded (pool sessions/bytes, body size, queues); an unbounded registry
#: would let repeated uploads grow the process without limit, so the least
#: recently *used* registration is dropped beyond this.
MAX_REGISTERED_RELATIONS = 512


class DiscoveryService:
    """Concurrent discovery over a pool of per-relation sessions.

    Parameters
    ----------
    pool:
        The :class:`~repro.serve.pool.SessionPool` to serve from (a fresh
        default-sized pool if omitted).
    max_workers:
        Size of the executor thread pool.
    store:
        Optional :class:`~repro.serve.store.CacheStore` for the default pool
        (mutually exclusive with ``pool`` — attach the store to your own pool
        instead): sessions warm-start from it and spill back on eviction.

    Examples
    --------
    >>> from repro.api import DiscoveryRequest
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows(
    ...     ["AC", "CT"],
    ...     [("908", "MH"), ("908", "MH"), ("212", "NYC")],
    ... )
    >>> with DiscoveryService(max_workers=2) as service:
    ...     results = service.run_batch(
    ...         [(r, DiscoveryRequest(min_support=k, algorithm="fastcfd"))
    ...          for k in (1, 2)]
    ...     )
    >>> [result.min_support for result in results]
    [1, 2]
    """

    def __init__(
        self,
        pool: Optional[SessionPool] = None,
        *,
        max_workers: int = 4,
        store: Optional["CacheStore"] = None,
        faults: Optional["FaultPlan"] = None,
    ):
        if max_workers < 1:
            raise DiscoveryError("max_workers must be at least 1")
        if pool is not None and store is not None:
            raise DiscoveryError(
                "pass the store to the SessionPool when supplying your own pool"
            )
        self._faults = faults
        self._pool = pool if pool is not None else SessionPool(store=store)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._max_workers = max_workers
        self._lock = ranked_lock(RANK_SERVICE, "DiscoveryService._lock")
        self._in_flight: Dict[Tuple[str, DiscoveryRequest], "Future[DiscoveryResult]"] = {}
        self._named: "OrderedDict[str, Relation]" = OrderedDict()
        self._requests = 0
        self._deduplicated = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._shutdown = False
        self._spilled_on_shutdown = False
        self._latency_count = 0
        self._latency_total = 0.0
        self._latency_min: Optional[float] = None
        self._latency_max: Optional[float] = None
        self._latency_buckets = [0] * (len(LATENCY_BUCKETS) + 1)
        # Per-executed-algorithm aggregates: name → [count, total, buckets].
        # Keyed by the algorithm that actually ran (``"auto"`` resolves), so
        # /metrics can tell ctane/fastcfd/dfd latencies apart.
        self._latency_by_algorithm: Dict[str, List[object]] = {}
        self._resumed_runs = 0
        self._resume_levels_skipped = 0
        self._resumes_by_algorithm: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------ #
    @property
    def pool(self) -> SessionPool:
        """The session pool the service serves from."""
        return self._pool

    def register(self, name: str, relation: Relation) -> str:
        """Register ``relation`` under ``name`` and return its fingerprint.

        Registered names can then be used as the ``relation_ref`` of
        :meth:`submit` / :meth:`run` — the serving pattern for front ends
        that address datasets by identifier rather than by value.  The
        registry is LRU-bounded at :data:`MAX_REGISTERED_RELATIONS`.
        """
        if not isinstance(name, str) or not name:
            raise DiscoveryError(f"invalid relation name: {name!r}")
        with self._lock:
            self._named[name] = relation
            self._named.move_to_end(name)
            while len(self._named) > MAX_REGISTERED_RELATIONS:
                self._named.popitem(last=False)
        return relation_fingerprint(relation)

    def registered(self) -> Dict[str, Dict[str, object]]:
        """The registered relations: name → shape and fingerprint.

        The listing a network front end serves from ``GET /v1/relations``.
        """
        with self._lock:
            named = dict(self._named)
        return {
            name: {
                "fingerprint": relation_fingerprint(relation),
                "rows": relation.n_rows,
                "arity": relation.arity,
                "attributes": list(relation.schema.names),
            }
            for name, relation in named.items()
        }

    def _resolve(self, relation_ref: RelationRef) -> Relation:
        if isinstance(relation_ref, Relation):
            return relation_ref
        with self._lock:
            relation = self._named.get(relation_ref)
            if relation is not None:
                self._named.move_to_end(relation_ref)
        if relation is None:
            raise UnknownRelationError(
                f"unknown relation {relation_ref!r}; register() it first"
            )
        return relation

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self, relation_ref: RelationRef, request: DiscoveryRequest
    ) -> "Future[DiscoveryResult]":
        """Enqueue one request; identical in-flight requests share one future."""
        relation = self._resolve(relation_ref)
        key = (relation_fingerprint(relation), request)
        # Deliberately not entered as a context manager: the submit span
        # records the dedup decision without becoming the execute span's
        # parent — the caller's span (HTTP request) stays the parent, and
        # ``bind_context`` carries that context across the thread pool hop.
        submit_span = obs.get_tracer().start_span(
            SPAN_SERVICE_SUBMIT, algorithm=request.algorithm
        )
        try:
            serve = obs.bind_context(self._serve)
            with self._lock:
                if self._shutdown:
                    raise DiscoveryError("DiscoveryService is shut down")
                self._requests += 1
                existing = self._in_flight.get(key)
                # Coalesce onto genuinely pending runs only: a finished future
                # whose done-callback has not pruned the map yet is *not* reused
                # (dedup is an in-flight property, not a result cache).
                if existing is not None and not existing.done():
                    self._deduplicated += 1
                    submit_span.set_attr("deduplicated", True)
                    return existing
                submit_span.set_attr("deduplicated", False)
                started = time.perf_counter()
                future = self._executor.submit(serve, relation, request)
                self._in_flight[key] = future
        finally:
            submit_span.end()
        future.add_done_callback(
            lambda done, key=key, started=started: self._finish(key, done, started)
        )
        return future

    def _serve(self, relation: Relation, request: DiscoveryRequest) -> DiscoveryResult:
        with obs.get_tracer().start_span(
            SPAN_SERVICE_EXECUTE, algorithm=request.algorithm
        ) as span:
            if self._faults is not None:
                # Chaos hook: an injected error here fails this run the way any
                # unexpected engine crash would (callers see the future's
                # exception); a latency rule stalls the worker thread.
                self._faults.visit(FAULT_POINT_SERVICE_EXECUTE)
            # Byte budgets re-check automatically: the pool registers a run
            # listener on every session it creates, so each run refreshes the
            # entry's estimate and enforces the caps on completion.
            session = self._pool.session(relation)
            result = session.run(request)
            span.set_attr("algorithm", result.algorithm)
            return result

    def _finish(
        self, key, future: "Future[DiscoveryResult]", started: float
    ) -> None:
        elapsed = time.perf_counter() - started
        # The algorithm that actually executed: the result's resolved name
        # when the run succeeded, the request's (possibly ``"auto"``) when it
        # failed before resolving.
        algorithm = key[1].algorithm
        with self._lock:
            # Only prune the mapping if it still points at this future — a
            # new identical request may have been enqueued in the meantime.
            if self._in_flight.get(key) is future:
                del self._in_flight[key]
            if future.cancelled():
                self._cancelled += 1
                return  # never executed: no latency to record
            if future.exception() is not None:
                self._failed += 1
            else:
                self._completed += 1
                skipped = 0
                try:
                    result = future.result()
                    algorithm = result.algorithm or algorithm
                    skipped = int(
                        result.stats.extras.get("resume_levels_skipped", 0)
                    )
                except Exception:  # noqa: BLE001 - stats shape is advisory
                    skipped = 0
                if skipped > 0:
                    self._resumed_runs += 1
                    self._resume_levels_skipped += skipped
                    per_algo = self._resumes_by_algorithm.setdefault(
                        algorithm, [0, 0]
                    )
                    per_algo[0] += 1
                    per_algo[1] += skipped
            self._record_latency_locked(elapsed, algorithm)

    def _record_latency_locked(self, elapsed: float, algorithm: str) -> None:
        """Fold one executed request's submit→done latency into the aggregates.

        Deduplicated submissions piggyback on the run they coalesced with, so
        the aggregates count engine executions, not callers.
        """
        self._latency_count += 1
        self._latency_total += elapsed
        self._latency_min = (
            elapsed if self._latency_min is None else min(self._latency_min, elapsed)
        )
        self._latency_max = (
            elapsed if self._latency_max is None else max(self._latency_max, elapsed)
        )
        per_algo = self._latency_by_algorithm.setdefault(
            algorithm, [0, 0.0, [0] * (len(LATENCY_BUCKETS) + 1)]
        )
        per_algo[0] += 1
        per_algo[1] += elapsed
        for index, bound in enumerate(LATENCY_BUCKETS):
            if elapsed <= bound:
                self._latency_buckets[index] += 1
                per_algo[2][index] += 1
                return
        self._latency_buckets[-1] += 1  # the +Inf bucket
        per_algo[2][-1] += 1

    # ------------------------------------------------------------------ #
    # synchronous conveniences
    # ------------------------------------------------------------------ #
    def run(
        self, relation_ref: RelationRef, request: DiscoveryRequest
    ) -> DiscoveryResult:
        """Submit one request and wait for its result."""
        return self.submit(relation_ref, request).result()

    def run_batch(
        self, jobs: Iterable[Tuple[RelationRef, DiscoveryRequest]]
    ) -> List[DiscoveryResult]:
        """Submit every ``(relation_ref, request)`` job, wait, keep order."""
        futures = [self.submit(ref, request) for ref, request in jobs]
        return [future.result() for future in futures]

    def sweep(
        self,
        relation_ref: RelationRef,
        request: DiscoveryRequest,
        supports: Sequence[int],
    ) -> List[DiscoveryResult]:
        """Run ``request`` at each support threshold, concurrently."""
        return self.run_batch(
            [(relation_ref, request.with_support(k)) for k in supports]
        )

    # ------------------------------------------------------------------ #
    # lifecycle and introspection
    # ------------------------------------------------------------------ #
    def info(self) -> Dict[str, object]:
        """Service counters plus the pool's :meth:`~SessionPool.info`."""
        with self._lock:
            return {
                "requests": self._requests,
                "deduplicated": self._deduplicated,
                "completed": self._completed,
                "failed": self._failed,
                "cancelled": self._cancelled,
                "in_flight": len(self._in_flight),
                "max_workers": self._max_workers,
                "shutdown": self._shutdown,
                "pool": self._pool.info(),
            }

    def mean_latency_seconds(self) -> Optional[float]:
        """Mean submit→done latency of executed runs (``None`` before any).

        The cheap accessor behind honest ``Retry-After`` hints: rejection
        paths read it on every refused request, so it must not pay
        :meth:`stats`'s store-walk — just two counters under the lock.
        """
        with self._lock:
            if not self._latency_count:
                return None
            return self._latency_total / self._latency_count

    def stats(self) -> Dict[str, object]:
        """One JSON-native snapshot of everything observable about the service.

        The counters of :meth:`info` plus the per-request latency aggregates
        (count/total/min/max/mean and the :data:`LATENCY_BUCKETS` histogram of
        executed runs) and — when the pool persists — the store's counters.
        This is the single source both ``/metrics`` and the CLI's
        ``--batch --stats`` summary render from.
        """
        snapshot = self.info()
        with self._lock:
            mean = (
                self._latency_total / self._latency_count
                if self._latency_count
                else None
            )
            snapshot["latency"] = {
                "count": self._latency_count,
                "total_seconds": self._latency_total,
                "min_seconds": self._latency_min,
                "max_seconds": self._latency_max,
                "mean_seconds": mean,
                "buckets": [
                    [bound, count]
                    for bound, count in zip(
                        list(LATENCY_BUCKETS) + [None], self._latency_buckets
                    )
                ],
                "by_algorithm": {
                    algorithm: {
                        "count": per_algo[0],
                        "total_seconds": per_algo[1],
                        "buckets": [
                            [bound, count]
                            for bound, count in zip(
                                list(LATENCY_BUCKETS) + [None], per_algo[2]
                            )
                        ],
                    }
                    for algorithm, per_algo in sorted(
                        self._latency_by_algorithm.items()
                    )
                },
            }
        with self._lock:
            snapshot["resumes"] = {
                "runs": self._resumed_runs,
                "levels_skipped": self._resume_levels_skipped,
                "by_algorithm": {
                    algorithm: {"runs": runs, "levels_skipped": skipped}
                    for algorithm, (runs, skipped) in sorted(
                        self._resumes_by_algorithm.items()
                    )
                },
            }
        if self._faults is not None:
            snapshot["faults"] = self._faults.describe()
        store = self._pool.store
        if store is not None:
            snapshot["store"] = store.info()
        return snapshot

    def shutdown(
        self, wait: bool = True, *, cancel_pending: bool = False
    ) -> None:
        """Shut the service down; idempotent and safe with requests in flight.

        New submissions are refused immediately (``DiscoveryError``), and the
        executor is shut down: with ``cancel_pending`` queued-but-unstarted
        futures are cancelled (their waiters see ``CancelledError``), otherwise
        every accepted request still runs to completion; in either case
        ``wait=True`` blocks until the executor has drained.  With a
        persistent store attached to the pool, the drained pool spills its
        warmed sessions into it exactly once (best-effort — a failing disk
        never turns shutdown into an error), so a graceful drain preserves
        warmth for the next process.  Repeated and concurrent calls are safe.
        """
        with self._lock:
            self._shutdown = True
        # ThreadPoolExecutor.shutdown is itself idempotent and thread-safe.
        self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)
        if not wait:
            return
        with self._lock:
            if self._spilled_on_shutdown:
                return
            self._spilled_on_shutdown = True
        if self._pool.store is not None:
            try:
                self._pool.persist()
            except (CacheStoreError, OSError, DiscoveryError):
                pass

    def __enter__(self) -> "DiscoveryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)


__all__ = ["DiscoveryService", "LATENCY_BUCKETS", "RelationRef"]
