"""The :class:`DiscoveryService` facade: concurrent, deduplicated discovery.

The service is the serving layer's front door.  It accepts
``(relation_ref, DiscoveryRequest)`` calls — ``relation_ref`` is either a
:class:`~repro.relational.relation.Relation` or the name of a relation
registered via :meth:`DiscoveryService.register` — and

* resolves each call to a pooled :class:`~repro.api.Profiler` session
  through its :class:`~repro.serve.pool.SessionPool` (fingerprint-keyed,
  LRU-evicted, byte-budgeted),
* **deduplicates identical in-flight requests**: ``DiscoveryRequest`` is
  frozen and hashable, so ``(fingerprint, request)`` keys a map of pending
  futures and concurrent duplicates coalesce onto one engine run,
* executes requests concurrently on a ``concurrent.futures`` thread pool;
  the per-session lock inside ``Profiler`` makes parallel support sweeps
  over one relation share each cached structure with exactly one build.

Results are ordinary :class:`~repro.api.DiscoveryResult` objects — a
deduplicated caller receives the *same* result object as the request it
coalesced with, which is safe because results are treated as immutable by
every front end.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.request import DiscoveryRequest
from repro.api.result import DiscoveryResult
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation
from repro.serve.fingerprint import relation_fingerprint
from repro.serve.pool import SessionPool
from repro.serve.store import CacheStore

#: What callers may pass as the relation of a request.
RelationRef = Union[Relation, str]


class DiscoveryService:
    """Concurrent discovery over a pool of per-relation sessions.

    Parameters
    ----------
    pool:
        The :class:`~repro.serve.pool.SessionPool` to serve from (a fresh
        default-sized pool if omitted).
    max_workers:
        Size of the executor thread pool.
    store:
        Optional :class:`~repro.serve.store.CacheStore` for the default pool
        (mutually exclusive with ``pool`` — attach the store to your own pool
        instead): sessions warm-start from it and spill back on eviction.

    Examples
    --------
    >>> from repro.api import DiscoveryRequest
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows(
    ...     ["AC", "CT"],
    ...     [("908", "MH"), ("908", "MH"), ("212", "NYC")],
    ... )
    >>> with DiscoveryService(max_workers=2) as service:
    ...     results = service.run_batch(
    ...         [(r, DiscoveryRequest(min_support=k, algorithm="fastcfd"))
    ...          for k in (1, 2)]
    ...     )
    >>> [result.min_support for result in results]
    [1, 2]
    """

    def __init__(
        self,
        pool: Optional[SessionPool] = None,
        *,
        max_workers: int = 4,
        store: Optional["CacheStore"] = None,
    ):
        if max_workers < 1:
            raise DiscoveryError("max_workers must be at least 1")
        if pool is not None and store is not None:
            raise DiscoveryError(
                "pass the store to the SessionPool when supplying your own pool"
            )
        self._pool = pool if pool is not None else SessionPool(store=store)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._in_flight: Dict[Tuple[str, DiscoveryRequest], "Future[DiscoveryResult]"] = {}
        self._named: Dict[str, Relation] = {}
        self._requests = 0
        self._deduplicated = 0
        self._completed = 0
        self._failed = 0

    # ------------------------------------------------------------------ #
    @property
    def pool(self) -> SessionPool:
        """The session pool the service serves from."""
        return self._pool

    def register(self, name: str, relation: Relation) -> str:
        """Register ``relation`` under ``name`` and return its fingerprint.

        Registered names can then be used as the ``relation_ref`` of
        :meth:`submit` / :meth:`run` — the serving pattern for front ends
        that address datasets by identifier rather than by value.
        """
        if not isinstance(name, str) or not name:
            raise DiscoveryError(f"invalid relation name: {name!r}")
        with self._lock:
            self._named[name] = relation
        return relation_fingerprint(relation)

    def _resolve(self, relation_ref: RelationRef) -> Relation:
        if isinstance(relation_ref, Relation):
            return relation_ref
        with self._lock:
            relation = self._named.get(relation_ref)
        if relation is None:
            raise DiscoveryError(
                f"unknown relation {relation_ref!r}; register() it first"
            )
        return relation

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self, relation_ref: RelationRef, request: DiscoveryRequest
    ) -> "Future[DiscoveryResult]":
        """Enqueue one request; identical in-flight requests share one future."""
        relation = self._resolve(relation_ref)
        key = (relation_fingerprint(relation), request)
        with self._lock:
            self._requests += 1
            existing = self._in_flight.get(key)
            # Coalesce onto genuinely pending runs only: a finished future
            # whose done-callback has not pruned the map yet is *not* reused
            # (dedup is an in-flight property, not a result cache).
            if existing is not None and not existing.done():
                self._deduplicated += 1
                return existing
            future = self._executor.submit(self._serve, relation, request)
            self._in_flight[key] = future
        future.add_done_callback(lambda done, key=key: self._finish(key, done))
        return future

    def _serve(self, relation: Relation, request: DiscoveryRequest) -> DiscoveryResult:
        # Byte budgets re-check automatically: the pool registers a run
        # listener on every session it creates, so each run refreshes the
        # entry's estimate and enforces the caps on completion.
        session = self._pool.session(relation)
        return session.run(request)

    def _finish(self, key, future: "Future[DiscoveryResult]") -> None:
        with self._lock:
            # Only prune the mapping if it still points at this future — a
            # new identical request may have been enqueued in the meantime.
            if self._in_flight.get(key) is future:
                del self._in_flight[key]
            if future.cancelled() or future.exception() is not None:
                self._failed += 1
            else:
                self._completed += 1

    # ------------------------------------------------------------------ #
    # synchronous conveniences
    # ------------------------------------------------------------------ #
    def run(
        self, relation_ref: RelationRef, request: DiscoveryRequest
    ) -> DiscoveryResult:
        """Submit one request and wait for its result."""
        return self.submit(relation_ref, request).result()

    def run_batch(
        self, jobs: Iterable[Tuple[RelationRef, DiscoveryRequest]]
    ) -> List[DiscoveryResult]:
        """Submit every ``(relation_ref, request)`` job, wait, keep order."""
        futures = [self.submit(ref, request) for ref, request in jobs]
        return [future.result() for future in futures]

    def sweep(
        self,
        relation_ref: RelationRef,
        request: DiscoveryRequest,
        supports: Sequence[int],
    ) -> List[DiscoveryResult]:
        """Run ``request`` at each support threshold, concurrently."""
        return self.run_batch(
            [(relation_ref, request.with_support(k)) for k in supports]
        )

    # ------------------------------------------------------------------ #
    # lifecycle and introspection
    # ------------------------------------------------------------------ #
    def info(self) -> Dict[str, object]:
        """Service counters plus the pool's :meth:`~SessionPool.info`."""
        with self._lock:
            return {
                "requests": self._requests,
                "deduplicated": self._deduplicated,
                "completed": self._completed,
                "failed": self._failed,
                "in_flight": len(self._in_flight),
                "max_workers": self._max_workers,
                "pool": self._pool.info(),
            }

    def shutdown(self, wait: bool = True) -> None:
        """Shut the executor down (pending futures still complete if ``wait``)."""
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "DiscoveryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)


__all__ = ["DiscoveryService", "RelationRef"]
