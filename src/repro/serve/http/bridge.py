""":class:`AsyncDiscoveryService` — coroutines over the thread-pool service.

The existing :class:`~repro.serve.service.DiscoveryService` is
transport-agnostic: it accepts submissions from any thread, deduplicates
identical in-flight requests in its own map, and executes on its own
``concurrent.futures`` pool.  This adapter is the asyncio face of that same
object — it owns **no** execution state of its own:

* :meth:`submit` hops the (potentially expensive) fingerprint-and-enqueue
  step onto the event loop's default executor via ``run_in_executor`` —
  hashing a million-row relation must never stall the accept loop — and
  returns the service's ``concurrent.futures.Future`` wrapped for ``await``
  with :func:`asyncio.wrap_future`;
* because the *service's* dedup map hands identical concurrent submissions
  the **same** underlying future, coalescing works transparently across
  transports: an HTTP request, a CLI batch entry and another HTTP request
  all await one engine run;
* awaiting is **shielded**: a caller whose deadline expires abandons its
  wait without cancelling the shared run (which other coalesced waiters —
  and the session cache, which the completed run warms — still want).
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.request import DiscoveryRequest
from repro.api.result import DiscoveryResult
from repro.obs import bind_context
from repro.relational.relation import Relation
from repro.serve.service import DiscoveryService, RelationRef


class AsyncDiscoveryService:
    """The asyncio adapter over one (shared) :class:`DiscoveryService`."""

    def __init__(self, service: DiscoveryService):
        self._service = service

    @property
    def service(self) -> DiscoveryService:
        """The wrapped thread-pool service (shared dedup map and pool)."""
        return self._service

    # ------------------------------------------------------------------ #
    async def submit(
        self, relation_ref: RelationRef, request: DiscoveryRequest
    ) -> "asyncio.Future[DiscoveryResult]":
        """Enqueue one request off-loop; returns an awaitable future.

        Identical concurrent submissions (across *all* transports) share one
        engine run through the service's in-flight dedup map.
        """
        loop = asyncio.get_running_loop()
        # run_in_executor does not propagate contextvars; bind_context
        # snapshots this coroutine's context (the request's active span
        # included) so the trace survives the executor hop.
        future = await loop.run_in_executor(
            None, bind_context(self._service.submit), relation_ref, request
        )
        return asyncio.wrap_future(future, loop=loop)

    async def run(
        self,
        relation_ref: RelationRef,
        request: DiscoveryRequest,
        *,
        timeout: Optional[float] = None,
    ) -> DiscoveryResult:
        """Submit and await one request, optionally under a deadline.

        On timeout the wait is abandoned but the run itself is **not**
        cancelled (it may be shared with coalesced waiters, and its
        completion warms the pooled session either way);
        ``asyncio.TimeoutError`` propagates to the caller.
        """
        wrapped = await self.submit(relation_ref, request)
        if timeout is None:
            return await wrapped
        try:
            return await asyncio.wait_for(asyncio.shield(wrapped), timeout)
        except asyncio.TimeoutError:
            # Abandon the wait WITHOUT cancelling: the underlying future may
            # be shared with coalesced waiters (and cancelling a queued run
            # would fail theirs too).  Swallow its eventual outcome so an
            # unobserved failure never logs "exception was never retrieved".
            wrapped.add_done_callback(
                lambda f: None if f.cancelled() else f.exception()
            )
            raise

    async def run_batch(
        self,
        jobs: Iterable[Tuple[RelationRef, DiscoveryRequest]],
        *,
        timeout: Optional[float] = None,
    ) -> List[object]:
        """Run every job concurrently; failures come back as exceptions.

        The returned list is in submission order and holds a
        :class:`DiscoveryResult` *or* the exception that job raised —
        mirroring the CLI's per-entry error isolation, one poisoned job
        cannot take down the batch.
        """
        coroutines = [
            self.run(ref, request, timeout=timeout) for ref, request in jobs
        ]
        return await asyncio.gather(*coroutines, return_exceptions=True)

    # ------------------------------------------------------------------ #
    async def register(self, name: str, relation: Relation) -> str:
        """Register ``relation`` under ``name`` off-loop; returns the digest."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._service.register, name, relation
        )

    def registered(self) -> Dict[str, Dict[str, object]]:
        """The registered relations (cheap: digests are cached)."""
        return self._service.registered()

    def stats(self) -> Dict[str, object]:
        """The service's stats snapshot (see ``DiscoveryService.stats``)."""
        return self._service.stats()


__all__ = ["AsyncDiscoveryService"]
