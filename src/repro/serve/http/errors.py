"""The HTTP error taxonomy: every failure becomes one structured JSON body.

The serving subsystem never lets an exception pick its own wire format.
Handlers either raise :class:`ApiError` directly (routing, admission,
deadline problems — things only the HTTP layer knows about) or let library
errors propagate and have :func:`map_exception` translate them at the
dispatch boundary:

========================  ======  ====================
exception                 status  ``error.code``
========================  ======  ====================
malformed body/fields      400    ``bad_request``
``DiscoveryError``         400    ``discovery_error``
unknown relation           404    ``relation_not_found``
unknown route              404    ``not_found``
wrong method on a route    405    ``method_not_allowed``
oversized body             413    ``payload_too_large``
admission refused          503    ``overloaded`` (+ ``Retry-After``)
draining for shutdown      503    ``draining`` (+ ``Retry-After``)
deadline exceeded          504    ``deadline_exceeded``
anything else              500    ``internal``
========================  ======  ====================

The body is always ``{"error": {"status", "code", "message"}}`` so clients
branch on ``code`` without parsing prose, and unexpected failures never leak
a traceback onto the wire.
"""

from __future__ import annotations

import asyncio
import math
from typing import Dict, Optional

from repro.exceptions import DiscoveryError, ReproError, UnknownRelationError

#: Retry-After hints never exceed this — a client told to wait minutes will
#: simply leave, and load estimates that far out are fiction anyway.
MAX_RETRY_AFTER = 60


class ApiError(Exception):
    """One HTTP-mappable failure: status, machine-readable code, message."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def to_document(self) -> Dict[str, object]:
        """The structured JSON body of the error response."""
        return {
            "error": {
                "status": self.status,
                "code": self.code,
                "message": self.message,
            }
        }


def bad_request(message: str) -> ApiError:
    return ApiError(400, "bad_request", message)


def not_found(message: str) -> ApiError:
    return ApiError(404, "not_found", message)


def relation_not_found(ref: str) -> ApiError:
    return ApiError(
        404,
        "relation_not_found",
        f"unknown relation {ref!r}; upload it via POST /v1/relations first",
    )


def method_not_allowed(method: str, path: str) -> ApiError:
    return ApiError(
        405, "method_not_allowed", f"{method} is not supported on {path}"
    )


def payload_too_large(limit: int) -> ApiError:
    return ApiError(
        413, "payload_too_large", f"request body exceeds {limit} bytes"
    )


def retry_after_hint(
    mean_seconds: Optional[float],
    pending: int,
    slots: int,
    *,
    floor: float = 0.0,
    default: int = 1,
    cap: int = MAX_RETRY_AFTER,
) -> int:
    """An honest ``Retry-After``: when work will plausibly fit again.

    ``mean_seconds`` is the observed mean request latency (``None`` before
    any request completed — the hint falls back to ``default``); ``pending``
    requests ahead of the caller drain through ``slots`` concurrent
    executors, so the backlog clears in roughly ``mean × (pending + 1) /
    slots`` seconds.  ``floor`` lifts the hint to an externally-known wait
    (a token bucket's exact refill time).  Always at least 1 and at most
    ``cap`` — a bounded lie beats an unbounded truth.

    Every degenerate input degrades to the same sane clamp: a cold start
    (``None`` mean), a zero/negative mean, a non-finite mean or floor (NaN
    or infinity from a poisoned aggregate), negative backlog figures —
    none may ever produce a hint outside ``[1, cap]`` or raise out of a
    rejection path.
    """
    cap = max(1, int(cap))
    if (
        mean_seconds is None
        or not math.isfinite(mean_seconds)
        or mean_seconds <= 0
    ):
        estimate = float(default)
    else:
        estimate = mean_seconds * (max(0, pending) + 1) / max(1, slots)
    if not math.isfinite(floor):
        floor = 0.0
    estimate = max(estimate, floor)
    if not math.isfinite(estimate):
        return cap
    return max(1, min(cap, math.ceil(estimate)))


def too_many_requests(retry_after: int = 1) -> ApiError:
    return ApiError(
        429,
        "rate_limited",
        "client exceeded its request rate; retry after the indicated delay",
        retry_after=retry_after,
    )


def bad_gateway(message: str) -> ApiError:
    return ApiError(502, "bad_gateway", message)


def overloaded(retry_after: int = 1) -> ApiError:
    return ApiError(
        503,
        "overloaded",
        "server is at capacity; retry shortly",
        retry_after=retry_after,
    )


def draining(retry_after: int = 5) -> ApiError:
    return ApiError(
        503,
        "draining",
        "server is draining for shutdown",
        retry_after=retry_after,
    )


def deadline_exceeded(seconds: float) -> ApiError:
    return ApiError(
        504,
        "deadline_exceeded",
        f"request exceeded its {seconds:g}s deadline (the discovery run "
        "continues in the background and will warm the session caches)",
    )


def map_exception(exc: BaseException) -> ApiError:
    """Translate any handler exception into the taxonomy above."""
    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, UnknownRelationError):
        return ApiError(404, "relation_not_found", str(exc))
    if isinstance(exc, DiscoveryError):
        return ApiError(400, "discovery_error", str(exc))
    if isinstance(exc, ReproError):
        return ApiError(400, "bad_request", str(exc))
    if isinstance(exc, asyncio.CancelledError):
        raise exc  # cancellation is control flow, never a response
    return ApiError(500, "internal", f"internal error: {type(exc).__name__}")


__all__ = [
    "ApiError",
    "MAX_RETRY_AFTER",
    "bad_gateway",
    "bad_request",
    "deadline_exceeded",
    "draining",
    "map_exception",
    "method_not_allowed",
    "not_found",
    "overloaded",
    "payload_too_large",
    "relation_not_found",
    "retry_after_hint",
    "too_many_requests",
]
