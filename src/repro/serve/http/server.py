"""The asyncio HTTP server: accept loop, admission control, graceful drain.

:class:`HttpServer` wires ``asyncio.start_server`` to the
:class:`~repro.serve.http.app.Application` with three serving-discipline
layers the handlers never see:

**Admission control.**  At most ``max_in_flight`` requests execute
concurrently (an :class:`asyncio.Semaphore`); up to ``max_queue`` more may
wait for a slot.  Anything beyond that is refused *immediately* with
``503`` + ``Retry-After`` — a saturated server degrades to fast rejections,
never to an unbounded queue or a hang.  ``/healthz`` and ``/metrics`` bypass
admission so the server stays observable while saturated or draining.

**Deadlines.**  Each admitted request runs under ``request_timeout``
(``asyncio.wait_for``); expiry answers ``504``.  The underlying discovery
run is *not* cancelled — it may be shared with coalesced waiters, and its
completion warms the pooled session, so the timed-out work is not wasted.

**Graceful drain.**  :meth:`drain` (wired to ``SIGTERM``/``SIGINT`` by the
CLI) stops accepting connections, answers ``503 draining`` on
non-operational routes, waits for in-flight requests to finish (bounded by
``drain_timeout``), then shuts the service down — which spills the session
pool into the persistent store when one is attached, so the next process
warm-starts.

:class:`ServerThread` hosts a server inside a dedicated thread + event loop
for tests, benchmarks and examples that need a real socket next to ordinary
blocking client code.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.devtools.lockcheck import maybe_watch_loop
from repro.exceptions import DiscoveryError
from repro.obs.names import (
    SPAN_HTTP_ADMISSION,
    SPAN_HTTP_PARSE,
    SPAN_HTTP_REQUEST,
)
from repro.serve.http import errors
from repro.serve.http.app import Application
from repro.serve.http.bridge import AsyncDiscoveryService
from repro.serve.http.metrics import HttpMetrics
from repro.serve.http.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    HttpResponse,
    ProtocolError,
    error_response,
    read_request,
    write_response,
)
from repro.serve.service import DiscoveryService

#: Methods worth their own metrics label; anything else (the method token is
#: client-controlled free text) is folded into "OTHER" so a hostile client
#: cannot grow the label space — every serving resource stays bounded.
_KNOWN_METHODS = frozenset(
    {"GET", "HEAD", "POST", "PUT", "PATCH", "DELETE", "OPTIONS"}
)


@dataclass
class ServerConfig:
    """Tunables of one :class:`HttpServer`."""

    host: str = "127.0.0.1"
    port: int = 8321
    #: Requests executing concurrently; more wait, beyond the queue → 503.
    max_in_flight: int = 8
    #: Requests allowed to wait for an execution slot before 503.
    max_queue: int = 16
    #: Per-request deadline in seconds (``None`` disables it).
    request_timeout: Optional[float] = 30.0
    #: Cap on request bodies.
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Idle seconds a keep-alive connection may sit between requests.
    keep_alive_timeout: float = 30.0
    #: Upper bound on waiting for in-flight requests during drain.
    drain_timeout: float = 30.0


class HttpServer:
    """One serving endpoint over one :class:`DiscoveryService`."""

    def __init__(self, service: DiscoveryService, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.service = service
        self.bridge = AsyncDiscoveryService(service)
        self.metrics = HttpMetrics()
        self.app = Application(
            self.bridge,
            self.metrics,
            request_timeout=self.config.request_timeout,
            is_draining=lambda: self._draining,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        # Loop-affine primitives are created in start() so they bind the
        # serving loop, not whatever loop (if any) constructed the object —
        # Python 3.9 binds them at construction time.
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._drained: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._waiting = 0
        self._active = 0
        self._draining = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket (``port=0`` picks an ephemeral port)."""
        self._semaphore = asyncio.Semaphore(self.config.max_in_flight)
        self._drained = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.config.port = sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        return self.config.port

    @property
    def draining(self) -> bool:
        return self._draining

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        if self._stopped is None:
            raise DiscoveryError("HttpServer.wait_stopped() before start()")
        await self._stopped.wait()

    async def drain(self) -> None:
        """Finish in-flight work, then shut the listener and service down.

        Idempotent.  The listener stays open *while* draining — load-balancer
        probes must be able to reach ``/healthz`` and read the 503
        ``draining`` answer — but guarded routes are refused immediately and
        keep-alive is switched off, so connections bleed away.  The service
        shutdown (a blocking call: it drains the executor and spills the
        pool into the store) runs on the default executor so the loop is
        never blocked.
        """
        if self._stopped is None:
            raise DiscoveryError("HttpServer.drain() before start()")
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        self._signal_drained()
        try:
            await asyncio.wait_for(
                self._drained.wait(), timeout=self.config.drain_timeout
            )
        except asyncio.TimeoutError:
            pass  # stragglers are past their deadline; shut down anyway
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        try:
            # The executor drain is bounded too: an abandoned (504'd) engine
            # run can linger far past any grace period an orchestrator gives
            # us, and being SIGKILLed mid-shutdown would lose the spill.
            await asyncio.wait_for(
                loop.run_in_executor(None, self.service.shutdown),
                timeout=self.config.drain_timeout,
            )
        except asyncio.TimeoutError:
            self.service.shutdown(wait=False)  # refuse new work, don't block
            store = self.service.pool.store
            if store is not None:
                try:
                    # Spill what the pool holds now; the lingering run's
                    # session misses out, everything else stays warm.
                    await loop.run_in_executor(None, self.service.pool.persist)
                except Exception:  # noqa: BLE001 - spill is best-effort
                    pass
        self._stopped.set()

    async def stop(self) -> None:
        """Alias of :meth:`drain` (the graceful path is the only path)."""
        await self.drain()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    # The timeout bounds only the idle wait for the next
                    # request line — a slow in-progress upload is not idle.
                    request = await read_request(
                        reader,
                        writer,
                        max_body_bytes=self.config.max_body_bytes,
                        head_timeout=self.config.keep_alive_timeout,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: close quietly
                except ProtocolError as exc:
                    response = error_response(
                        errors.ApiError(exc.status, "protocol_error", exc.message)
                    )
                    await write_response(writer, response, keep_alive=False)
                    break
                if request is None:
                    break  # clean EOF between requests
                keep_alive = request.keep_alive and not self._draining
                # A request counts as active until its response is fully
                # written — drain must never truncate a chunked stream.
                self._active += 1
                try:
                    response = await self._respond(request)
                    await write_response(
                        writer,
                        response,
                        keep_alive=keep_alive,
                        head_only=request.method == "HEAD",
                    )
                finally:
                    self._active -= 1
                    self._signal_drained()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            # Loop teardown cancels lingering keep-alive connections; end
            # the handler quietly instead of letting the cancellation bounce
            # through the stream-protocol callback as logged noise.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request) -> HttpResponse:
        """Admission control + deadline + dispatch, all failures mapped.

        The whole exchange runs under the request's root span: a new trace,
        or — when the fleet router forwarded a ``traceparent`` header — a
        continuation of the router's, so one trace id covers every hop.
        """
        route = self.app.route_name(request)
        method = request.method if request.method in _KNOWN_METHODS else "OTHER"
        span = obs.get_tracer().start_trace(
            SPAN_HTTP_REQUEST,
            traceparent=request.headers.get(obs.TRACEPARENT_HEADER),
            method=method,
            route=route,
        )
        with span:
            if request.parse_seconds and span.sampled:
                span.child_record(
                    SPAN_HTTP_PARSE,
                    start=span.start - request.parse_seconds,
                    duration=request.parse_seconds,
                    bytes=len(request.body),
                )
            response = await self._respond_admitted(request, method, route)
            span.set_attr("status", response.status)
            if response.status == 504:
                span.set_status("error", error="deadline")
            if span.trace_id is not None:
                response.headers.setdefault(obs.TRACE_ID_HEADER, span.trace_id)
        return response

    async def _respond_admitted(
        self, request, method: str, route: str
    ) -> HttpResponse:
        started = time.perf_counter()
        guarded = self.app.needs_admission(request)
        response: HttpResponse
        if guarded and self._draining:
            self.metrics.admission_rejections_total.inc(reason="draining")
            response = error_response(errors.draining(self._retry_after(default=5)))
            self.metrics.observe(
                method, route, response.status, time.perf_counter() - started
            )
            return response
        # Refuse only when no execution slot is free AND the wait queue is
        # full — a free slot must always admit, even with max_queue=0.
        if (
            guarded
            and self._semaphore.locked()
            and self._waiting >= self.config.max_queue
        ):
            self.metrics.admission_rejections_total.inc(reason="overloaded")
            response = error_response(errors.overloaded(self._retry_after()))
            self.metrics.observe(
                method, route, response.status, time.perf_counter() - started
            )
            return response
        if guarded:
            self._waiting += 1
            try:
                with obs.get_tracer().start_span(SPAN_HTTP_ADMISSION):
                    await self._semaphore.acquire()
            finally:
                self._waiting -= 1
                self._signal_drained()
        try:
            self.metrics.in_flight.inc()
            try:
                response = await self.app.dispatch(request)
            except errors.ApiError as exc:
                response = error_response(exc)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - last-resort mapping
                response = error_response(errors.map_exception(exc))
        finally:
            self.metrics.in_flight.dec()
            if guarded:
                self._semaphore.release()
        self.metrics.observe(
            method, route, response.status, time.perf_counter() - started
        )
        return response

    def _retry_after(self, default: int = 1) -> int:
        """An honest ``Retry-After`` for this server's 503s.

        Derived from the service's observed mean run latency and the work
        currently occupying or queued for the execution slots — what the
        backlog actually costs, not a constant.
        """
        return errors.retry_after_hint(
            self.service.mean_latency_seconds(),
            self._active + self._waiting,
            self.config.max_in_flight,
            default=default,
        )

    def _signal_drained(self) -> None:
        """Wake drain() once nothing is executing *or* queued for a slot.

        A request already admitted into the wait queue was never told 503,
        so drain must let it run — the drained condition requires both
        counters at zero.
        """
        if (
            self._draining
            and self._active == 0
            and self._waiting == 0
            and self._drained is not None
        ):
            self._drained.set()


class ServerThread:
    """A real-socket server hosted in its own thread + event loop.

    The worker pattern of the integration tests, the ``http_serving``
    benchmark section and ``examples/http_serving.py``: start, talk to
    ``http://host:port`` with any blocking client, stop (gracefully by
    default).

    >>> from repro.serve import DiscoveryService
    >>> with ServerThread(DiscoveryService(max_workers=2)) as server:
    ...     address = f"http://{server.host}:{server.port}"  # doctest: +SKIP
    """

    def __init__(
        self,
        service: DiscoveryService,
        config: Optional[ServerConfig] = None,
    ):
        self._service = service
        config = config or ServerConfig(port=0)
        self._server = HttpServer(service, config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._drain_future = None

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._server.config.host

    @property
    def port(self) -> int:
        return self._server.config.port

    @property
    def server(self) -> HttpServer:
        return self._server

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    def start(self) -> "ServerThread":
        """Boot the loop thread; returns once the socket is bound."""
        if self._thread is not None:
            raise DiscoveryError("ServerThread is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise DiscoveryError("HTTP server failed to start within 30s")
        if self._startup_error is not None:
            raise DiscoveryError(
                f"HTTP server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self._server.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to start()
                self._startup_error = exc
                return
            finally:
                self._started.set()
            watchdog = maybe_watch_loop(loop, "repro-serve")
            try:
                loop.run_until_complete(self._server.wait_stopped())
            finally:
                if watchdog is not None:
                    watchdog.stop()
        finally:
            try:
                # Lingering connection tasks (idle keep-alive reads) are
                # cancelled and reaped so the loop closes without warnings.
                pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    def begin_drain(self) -> None:
        """Kick off a graceful drain without waiting for it (tests use this
        to observe the draining state from outside)."""
        if self._loop is None:
            return
        self._drain_future = asyncio.run_coroutine_threadsafe(
            self._server.drain(), self._loop
        )

    def stop(self, timeout: float = 60.0) -> None:
        """Drain gracefully and join the loop thread.  Idempotent."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self._server.drain(), self._loop
                )
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - drain is best-effort on stop
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = ["HttpServer", "ServerConfig", "ServerThread"]
