"""The HTTP serving subsystem: discovery over a real socket, stdlib-only.

PRs 3–4 made the serving substrate thread-safe and persistent; this package
puts a network front end on it without adding a single dependency
(``asyncio.start_server`` + hand-rolled HTTP/1.1):

* :class:`~repro.serve.http.bridge.AsyncDiscoveryService` — the coroutine
  adapter over the thread-pool :class:`~repro.serve.DiscoveryService`;
  identical concurrent requests keep coalescing through the service's own
  in-flight dedup map, whichever transport they arrive on;
* :class:`~repro.serve.http.app.Application` — the route table
  (``POST /v1/relations``, ``GET /v1/relations``, ``POST /v1/discover``,
  ``POST /v1/batch``, ``GET /healthz``, ``GET /metrics``) and the JSON ↔
  API-object translation, including ``application/x-ndjson`` rule streaming;
* :class:`~repro.serve.http.server.HttpServer` — admission control
  (in-flight semaphore + bounded queue → fast ``503`` with ``Retry-After``),
  per-request deadlines, and graceful drain (finish in flight, spill the
  pool to the store, exit) wired to ``SIGTERM`` by the ``repro-serve`` CLI;
* :class:`~repro.serve.http.metrics.HttpMetrics` — Prometheus text
  exposition of the HTTP layer and the substrate's counters;
* :class:`~repro.serve.http.server.ServerThread` — a real-socket server in
  a side thread for tests, benchmarks and examples.

See DESIGN.md (“The HTTP serving layer”) for the async↔thread bridge, the
admission-control model and the error taxonomy.
"""

from repro.serve.http.app import Application
from repro.serve.http.bridge import AsyncDiscoveryService
from repro.serve.http.errors import ApiError
from repro.serve.http.metrics import HttpMetrics
from repro.serve.http.server import HttpServer, ServerConfig, ServerThread

__all__ = [
    "ApiError",
    "Application",
    "AsyncDiscoveryService",
    "HttpMetrics",
    "HttpServer",
    "ServerConfig",
    "ServerThread",
]
