"""The HTTP application: routes, handlers and the JSON request vocabulary.

The route table (all under ``/v1`` except the operational endpoints):

=========================  =====================================================
``POST /v1/relations``     upload a relation (``text/csv`` body, or JSON
                           ``{"attributes": [...], "rows": [[...], ...]}``),
                           optionally named via ``?name=`` or the JSON
                           ``"name"`` field → 201 with its fingerprint; the
                           relation is registered under both
``GET /v1/relations``      list the registered relations (name → shape/digest)
``POST /v1/discover``      run one :class:`~repro.api.DiscoveryRequest` — the
                           JSON body names the relation (``"relation"``: a
                           registered name or fingerprint) or carries inline
                           ``"attributes"``/``"rows"``, plus the request
                           fields (``support``/``min_support``, ``algorithm``,
                           ``max_lhs``, ``constant_only``, ``variable_only``,
                           ``rank_by``, ``limit_rows``, ``options``).
                           ``"stream": true`` (or ``?stream=jsonl``) answers
                           ``application/x-ndjson``: one header line, one line
                           per rule — constant memory for huge tableaux
``POST /v1/batch``         an array of discover bodies (or ``{"requests":
                           [...]}``), executed concurrently through the shared
                           dedup map; per-entry failures come back in place as
                           ``{"error": ...}`` records
``GET /healthz``           liveness + drain state (503 while draining)
``GET /metrics``           Prometheus text (HTTP + service + pool + store)
``GET /v1/traces``         summaries of the traces buffered in the tracer's
                           span ring (most recent last)
``GET /v1/traces/{id}``    one trace's spans, flat and as a nested span tree
=========================  =====================================================

Handlers are transport-thin: they translate JSON ↔ the existing API objects
(:class:`DiscoveryRequest`, :class:`~repro.relational.relation.Relation`)
and delegate every run to the :class:`AsyncDiscoveryService` bridge.  CPU
work (CSV parsing, relation encoding) runs on the executor, never the loop.
"""

from __future__ import annotations

import asyncio
import csv
import io
from typing import Awaitable, Callable, Dict, Optional, Tuple

from repro import obs
from repro.api.request import DiscoveryRequest
from repro.exceptions import ReproError
from repro.obs.export import build_tree
from repro.relational.io import read_csv_text
from repro.relational.relation import Relation
from repro.serve.http import errors
from repro.serve.http.bridge import AsyncDiscoveryService
from repro.serve.http.errors import ApiError
from repro.serve.http.metrics import HttpMetrics
from repro.serve.http.protocol import HttpRequest, HttpResponse

#: JSON fields of a discover body that map onto DiscoveryRequest parameters.
_REQUEST_FIELDS = {
    "support": "min_support",
    "min_support": "min_support",
    "algorithm": "algorithm",
    "max_lhs": "max_lhs_size",
    "max_lhs_size": "max_lhs_size",
    "constant_only": "constant_only",
    "variable_only": "variable_only",
    "rank_by": "rank_by",
    "limit_rows": "limit_rows",
    "options": "options",
}

#: Discover-body fields that are not request parameters.
_ENVELOPE_FIELDS = {"relation", "attributes", "rows", "name", "stream"}

#: Cap on the entries of one /v1/batch document.
MAX_BATCH_REQUESTS = 256

Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


def request_from_document(document: Dict[str, object]) -> DiscoveryRequest:
    """Build a :class:`DiscoveryRequest` from a discover body's fields.

    Unknown fields are rejected (400) so typos fail loudly; the request's own
    eager validation turns bad parameter values into 400s as well.
    """
    unknown = set(document) - set(_REQUEST_FIELDS) - _ENVELOPE_FIELDS
    if unknown:
        raise errors.bad_request(
            f"unknown request fields {sorted(unknown)}; allowed: "
            f"{sorted(set(_REQUEST_FIELDS) | _ENVELOPE_FIELDS)}"
        )
    kwargs: Dict[str, object] = {}
    for field, parameter in _REQUEST_FIELDS.items():
        if field in document:
            kwargs[parameter] = document[field]
    if "options" in kwargs and not isinstance(kwargs["options"], dict):
        raise errors.bad_request('"options" must be a JSON object')
    try:
        return DiscoveryRequest(**kwargs)
    except TypeError as exc:
        raise errors.bad_request(f"invalid request parameters: {exc}") from exc


def relation_from_rows_document(document: Dict[str, object]) -> Relation:
    """Build a relation from inline ``attributes`` + ``rows`` JSON fields."""
    attributes = document.get("attributes")
    rows = document.get("rows")
    if not isinstance(attributes, list) or not attributes:
        raise errors.bad_request('"attributes" must be a non-empty array')
    if not isinstance(rows, list) or not rows:
        raise errors.bad_request('"rows" must be a non-empty array of arrays')
    for row in rows:
        if not isinstance(row, list):
            raise errors.bad_request('"rows" must be a non-empty array of arrays')
    return Relation.from_rows([str(a) for a in attributes], [tuple(r) for r in rows])


def relation_from_csv_text(
    text: str, *, has_header: bool = True, delimiter: str = ","
) -> Relation:
    """Parse an uploaded CSV body into a relation.

    Delegates to :func:`repro.relational.io.read_csv_text` — the same core
    the CLI's ``read_csv`` uses, so an upload and a file read of identical
    CSV always produce equal fingerprints (shared sessions and store
    entries).  Headerless bodies get ``A0, A1, …`` names sized from the
    first record (quote-aware, like the CLI's ``--no-header`` peek).
    """
    first = next(csv.reader(io.StringIO(text), delimiter=delimiter), None)
    if not first:
        raise errors.bad_request("CSV body holds no records")
    names = [f"A{i}" for i in range(len(first))] if not has_header else None
    relation = read_csv_text(
        text, has_header=has_header, attribute_names=names, delimiter=delimiter
    )
    if relation.n_rows == 0:
        raise errors.bad_request("CSV body holds a header but no data rows")
    return relation


class Application:
    """The route table and handlers over one service bridge."""

    def __init__(
        self,
        bridge: AsyncDiscoveryService,
        metrics: HttpMetrics,
        *,
        request_timeout: Optional[float] = None,
        is_draining: Callable[[], bool] = lambda: False,
    ):
        self._bridge = bridge
        self._metrics = metrics
        self._request_timeout = request_timeout
        self._is_draining = is_draining
        self._routes: Dict[str, Dict[str, Tuple[str, Handler]]] = {}
        self._add("POST", "/v1/relations", "upload_relation", self.upload_relation)
        self._add("GET", "/v1/relations", "list_relations", self.list_relations)
        self._add("POST", "/v1/discover", "discover", self.discover)
        self._add("POST", "/v1/batch", "batch", self.batch)
        self._add("GET", "/healthz", "healthz", self.healthz)
        self._add("GET", "/metrics", "metrics", self.metrics)
        self._add("GET", "/v1/traces", "traces", self.traces)

    def _add(self, method: str, path: str, route: str, handler: Handler) -> None:
        self._routes.setdefault(path, {})[method] = (route, handler)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def route_name(self, request: HttpRequest) -> str:
        """The route label of a request (metrics cardinality stays fixed).

        Mirrors :meth:`dispatch`'s HEAD→GET fallback so probe traffic is
        recorded under the route that actually served it.
        """
        methods = self._routes.get(request.path)
        if methods is None:
            if self._trace_id_of(request) is not None:
                return "trace"
            return "unrouted"
        entry = methods.get(request.method)
        if entry is None and request.method == "HEAD":
            entry = methods.get("GET")
        return entry[0] if entry else "unrouted"

    def needs_admission(self, request: HttpRequest) -> bool:
        """Whether the admission controller guards this request.

        The operational endpoints (``/healthz``, ``/metrics``, the trace
        views) always answer — a saturated or draining server must stay
        observable.
        """
        if request.path in ("/healthz", "/metrics"):
            return False
        return not request.path.startswith("/v1/traces")

    @staticmethod
    def _trace_id_of(request: HttpRequest) -> Optional[str]:
        """The trace id of a ``/v1/traces/{trace_id}`` path (else ``None``)."""
        prefix = "/v1/traces/"
        if not request.path.startswith(prefix):
            return None
        trace_id = request.path[len(prefix):]
        return trace_id if trace_id and "/" not in trace_id else None

    async def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Route one request; every failure becomes a structured error body."""
        methods = self._routes.get(request.path)
        if methods is None:
            trace_id = self._trace_id_of(request)
            if trace_id is not None:
                if request.method not in ("GET", "HEAD"):
                    raise errors.method_not_allowed(request.method, request.path)
                return await self.trace(trace_id)
            raise errors.not_found(f"no route for {request.path}")
        entry = methods.get(request.method)
        if entry is None and request.method == "HEAD":
            entry = methods.get("GET")
        if entry is None:
            raise errors.method_not_allowed(request.method, request.path)
        _route, handler = entry
        try:
            return await handler(request)
        except (ApiError, asyncio.CancelledError):
            raise
        except asyncio.TimeoutError:
            raise errors.deadline_exceeded(self._request_timeout or 0.0)
        except Exception as exc:  # noqa: BLE001 - mapped to the taxonomy
            raise errors.map_exception(exc) from exc

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    async def upload_relation(self, request: HttpRequest) -> HttpResponse:
        loop = asyncio.get_running_loop()
        name = request.query.get("name")
        if request.content_type in ("application/json", "application/x-ndjson"):
            document = request.json()
            if not isinstance(document, dict):
                raise errors.bad_request("upload body must be a JSON object")
            if document.get("name") is not None:
                name = str(document["name"])
            relation = await loop.run_in_executor(
                None, relation_from_rows_document, document
            )
        else:
            # Default to CSV for text/csv, text/plain and unlabelled bodies.
            text = request.text()
            has_header = request.query.get("header", "true").lower() != "false"
            delimiter = request.query.get("delimiter", ",")
            try:
                relation = await loop.run_in_executor(
                    None,
                    lambda: relation_from_csv_text(
                        text, has_header=has_header, delimiter=delimiter
                    ),
                )
            except ReproError as exc:
                raise errors.bad_request(f"cannot parse CSV body: {exc}") from exc
        # Registered under its fingerprint always (the canonical reference),
        # and under the caller's name when one was given.
        fingerprint = await self._bridge.register(relation.fingerprint(), relation)
        if name:
            await self._bridge.register(name, relation)
        return HttpResponse.json(
            {
                "fingerprint": fingerprint,
                "name": name,
                "rows": relation.n_rows,
                "arity": relation.arity,
                "attributes": list(relation.schema.names),
            },
            status=201,
        )

    async def list_relations(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json({"relations": self._bridge.registered()})

    async def _resolve_ref(self, document: Dict[str, object]):
        """The relation reference of a discover body: named or inline."""
        ref = document.get("relation")
        inline = "rows" in document or "attributes" in document
        if ref is not None and inline:
            raise errors.bad_request(
                'pass either "relation" or inline "attributes"/"rows", not both'
            )
        if ref is not None:
            if not isinstance(ref, str) or not ref:
                raise errors.bad_request('"relation" must be a non-empty string')
            return ref
        if inline:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, relation_from_rows_document, document
            )
        raise errors.bad_request(
            'the discover body needs a "relation" reference or inline '
            '"attributes"/"rows"'
        )

    async def discover(self, request: HttpRequest) -> HttpResponse:
        document = request.json()
        if not isinstance(document, dict):
            raise errors.bad_request("discover body must be a JSON object")
        stream = bool(document.get("stream")) or request.query.get("stream") == "jsonl"
        ref = await self._resolve_ref(document)
        discovery_request = request_from_document(document)
        result = await self._bridge.run(
            ref, discovery_request, timeout=self._request_timeout
        )
        if stream:
            return HttpResponse.jsonl(result.iter_jsonl())
        return HttpResponse.json(result.to_json_dict())

    async def batch(self, request: HttpRequest) -> HttpResponse:
        document = request.json()
        entries = document.get("requests") if isinstance(document, dict) else document
        if not isinstance(entries, list) or not entries:
            raise errors.bad_request(
                'batch body must be a non-empty JSON array (or {"requests": [...]})'
            )
        if len(entries) > MAX_BATCH_REQUESTS:
            raise errors.bad_request(
                f"batch exceeds {MAX_BATCH_REQUESTS} requests"
            )

        async def run_one(entry: object) -> Dict[str, object]:
            try:
                if not isinstance(entry, dict):
                    raise errors.bad_request("batch entry is not a JSON object")
                ref = await self._resolve_ref(entry)
                discovery_request = request_from_document(entry)
                result = await self._bridge.run(
                    ref, discovery_request, timeout=self._request_timeout
                )
                return result.to_json_dict()
            except asyncio.CancelledError:
                raise
            except asyncio.TimeoutError:
                error = errors.deadline_exceeded(self._request_timeout or 0.0)
                return error.to_document()
            except Exception as exc:  # noqa: BLE001 - isolated per entry
                return errors.map_exception(exc).to_document()

        results = await asyncio.gather(*(run_one(entry) for entry in entries))
        failed = sum(1 for record in results if "error" in record)
        return HttpResponse.json(
            {"requests": len(entries), "failed": failed, "results": list(results)}
        )

    async def healthz(self, request: HttpRequest) -> HttpResponse:
        stats = self._bridge.service.info()
        if self._is_draining():
            response = HttpResponse.json(
                {
                    "status": "draining",
                    "in_flight": stats["in_flight"],
                },
                status=503,
            )
            response.headers["Retry-After"] = str(
                errors.retry_after_hint(
                    self._bridge.service.mean_latency_seconds(),
                    int(stats["in_flight"]),
                    int(stats["max_workers"]),
                    default=5,
                )
            )
            return response
        return HttpResponse.json(
            {
                "status": "ok",
                "in_flight": stats["in_flight"],
                "requests": stats["requests"],
                "pool_sessions": stats["pool"]["sessions"],
            }
        )

    async def metrics(self, request: HttpRequest) -> HttpResponse:
        text = self._metrics.render(self._bridge.stats())
        response = HttpResponse.plain(text)
        response.content_type = "text/plain; version=0.0.4; charset=utf-8"
        return response

    async def traces(self, request: HttpRequest) -> HttpResponse:
        """Summaries of every trace currently buffered in the span ring."""
        tracer = obs.get_tracer()
        return HttpResponse.json(
            {
                "enabled": tracer.enabled,
                "sample_rate": tracer.sample_rate,
                "buffered_spans": len(tracer.ring),
                "traces": tracer.ring.traces(),
            }
        )

    async def trace(self, trace_id: str) -> HttpResponse:
        """One trace: the flat span records plus their nested tree."""
        spans = obs.get_tracer().ring.trace(trace_id)
        if not spans:
            raise errors.not_found(f"no buffered trace {trace_id!r}")
        return HttpResponse.json(
            {
                "trace_id": trace_id,
                "spans": spans,
                "tree": build_tree(spans),
            }
        )


__all__ = [
    "Application",
    "MAX_BATCH_REQUESTS",
    "relation_from_csv_text",
    "relation_from_rows_document",
    "request_from_document",
]
