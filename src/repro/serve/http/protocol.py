"""Minimal HTTP/1.1 over asyncio streams — just enough for the serving API.

The subsystem is deliberately dependency-free: requests are parsed straight
off an :class:`asyncio.StreamReader` and responses written to the
:class:`asyncio.StreamWriter`, stdlib only.  Supported surface:

* request line + headers (size-capped), bodies via ``Content-Length``;
* ``Connection: keep-alive`` semantics (HTTP/1.1 default, ``close`` honoured);
* fixed-length responses and ``Transfer-Encoding: chunked`` streaming (the
  JSONL rule streams);
* ``Expect: 100-continue`` (the interim response is sent before the body is
  read, so ``curl`` uploads work out of the box).

Unsupported mechanics are refused loudly, never mis-parsed: chunked *request*
bodies get 411 (length required), absurd request lines / header blocks get
400/431.  Parse failures raise :class:`ProtocolError`, which the connection
handler turns into a final error response on the raw socket — a malformed
request can never reach a handler.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.http.errors import ApiError

#: Hard caps on the request head — one line and the whole header block.
MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_BYTES = 65536
MAX_HEADER_COUNT = 100

#: Default cap on request bodies (the server config can lower/raise it).
DEFAULT_MAX_BODY_BYTES = 32 * 2 ** 20

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

SERVER_NAME = "repro-serve"


class ProtocolError(Exception):
    """A malformed or unsupported request; carries the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: line, lowercased headers, raw body."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    version: str
    headers: Dict[str, str]
    body: bytes = b""
    #: Seconds spent parsing head + body, measured from the arrival of the
    #: request line (idle keep-alive wait excluded).  The server records it
    #: as the request's ``repro.http.parse`` span.
    parse_seconds: float = 0.0

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    @property
    def content_type(self) -> str:
        """The media type of the body, lowercased, parameters stripped."""
        return self.headers.get("content-type", "").split(";")[0].strip().lower()

    @property
    def client_id(self) -> Optional[str]:
        """The caller's declared identity (``X-Client-Id``), if any.

        The fleet router keys rate limits and fair-queue weights on this;
        workers receive it forwarded for log/metric correlation.
        """
        return self.headers.get("x-client-id") or None

    def json(self) -> object:
        """The body decoded as JSON; malformed bodies raise a 400 ApiError."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(
                400, "bad_request", f"request body is not valid JSON: {exc}"
            ) from exc

    def text(self) -> str:
        """The body decoded as UTF-8; malformed bodies raise a 400 ApiError."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ApiError(
                400, "bad_request", f"request body is not valid UTF-8: {exc}"
            ) from exc


@dataclass
class HttpResponse:
    """What a handler returns: status, body (or a line stream), headers."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: When set, the response streams chunk-by-chunk (chunked transfer
    #: encoding) instead of sending ``body``.  A plain iterable yields
    #: *lines* (``str``, no trailing newline — the JSONL rule streams); an
    #: async iterable yields raw ``bytes`` chunks forwarded verbatim (the
    #: fleet router's passthrough of a worker's chunked body).
    stream = None

    @classmethod
    def json(
        cls, document: object, status: int = 200, **headers: str
    ) -> "HttpResponse":
        body = json.dumps(document, indent=2, allow_nan=False).encode("utf-8")
        return cls(
            status=status,
            body=body + b"\n",
            content_type="application/json",
            headers=dict(headers),
        )

    @classmethod
    def jsonl(cls, lines, status: int = 200) -> "HttpResponse":
        response = cls(status=status, content_type="application/x-ndjson")
        response.stream = lines
        return response

    @classmethod
    def plain(cls, text: str, status: int = 200) -> "HttpResponse":
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; charset=utf-8",
        )


async def _read_head_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readline()
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(431, "header line exceeds the stream limit") from exc
    except ValueError as exc:
        raise ProtocolError(431, "header line exceeds the stream limit") from exc
    if len(line) > limit:
        raise ProtocolError(431, "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader,
    writer: Optional[asyncio.StreamWriter] = None,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    head_timeout: Optional[float] = None,
) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF before it.

    Malformed input raises :class:`ProtocolError` with the status to answer
    with.  When ``writer`` is given, an ``Expect: 100-continue`` request gets
    its interim response before the body is awaited.  ``head_timeout``
    bounds only the *idle wait for the request line* (``asyncio.TimeoutError``
    propagates) — once a request has started arriving, headers and body may
    take as long as the transfer needs; a large upload over a slow link must
    never be cut mid-body by the keep-alive idle timeout.
    """
    first_line = _read_head_line(reader, MAX_REQUEST_LINE_BYTES)
    if head_timeout is not None:
        line = await asyncio.wait_for(first_line, head_timeout)
    else:
        line = await first_line
    if not line:
        return None  # peer closed between requests: normal keep-alive end
    parse_started = time.perf_counter()
    try:
        request_line = line.decode("ascii").strip()
    except UnicodeDecodeError as exc:
        raise ProtocolError(400, "request line is not ASCII") from exc
    if not request_line:
        raise ProtocolError(400, "empty request line")
    parts = request_line.split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    total_header_bytes = 0
    while True:
        line = await _read_head_line(reader, MAX_HEADER_BYTES)
        if line in (b"\r\n", b"\n", b""):
            break
        total_header_bytes += len(line)
        if total_header_bytes > MAX_HEADER_BYTES or len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError(431, "header block too large")
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(411, "chunked request bodies are not supported")

    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError(400, "malformed Content-Length") from exc
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(
                413, f"request body exceeds {max_body_bytes} bytes"
            )

    if headers.get("expect", "").lower() == "100-continue" and writer is not None:
        writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
        await writer.drain()

    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "request body shorter than declared") from exc

    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=path,
        query=query,
        version=version,
        headers=headers,
        body=body,
        parse_seconds=time.perf_counter() - parse_started,
    )


def _head(status: int, content_type: str, headers: Dict[str, str]) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}", f"Server: {SERVER_NAME}"]
    rendered = {name.lower() for name in headers}
    if "content-type" not in rendered and content_type:
        lines.append(f"Content-Type: {content_type}")
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    response: HttpResponse,
    *,
    keep_alive: bool = True,
    head_only: bool = False,
) -> None:
    """Serialize ``response`` (fixed-length or chunked-streaming) to the wire."""
    headers = dict(response.headers)
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    if response.stream is None:
        headers["Content-Length"] = str(len(response.body))
        writer.write(_head(response.status, response.content_type, headers))
        writer.write(b"\r\n")
        if not head_only:
            writer.write(response.body)
        await writer.drain()
        return
    headers["Transfer-Encoding"] = "chunked"
    writer.write(_head(response.status, response.content_type, headers))
    writer.write(b"\r\n")
    if head_only and hasattr(response.stream, "aclose"):
        await response.stream.aclose()  # unconsumed upstream stream: close now
    if not head_only:
        if hasattr(response.stream, "__aiter__"):
            # Raw passthrough: each item is already encoded bytes (a chunk
            # relayed from an upstream worker) and is re-framed verbatim.
            async for chunk in response.stream:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("ascii"))
                writer.write(chunk + b"\r\n")
                await writer.drain()
        else:
            for line in response.stream:
                chunk = (line + "\n").encode("utf-8")
                writer.write(f"{len(chunk):x}\r\n".encode("ascii"))
                writer.write(chunk + b"\r\n")
                await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def error_response(error: ApiError) -> HttpResponse:
    """The structured-JSON response of one :class:`ApiError`."""
    headers: Dict[str, str] = {}
    if error.retry_after is not None:
        headers["Retry-After"] = str(error.retry_after)
    response = HttpResponse.json(error.to_document(), status=error.status)
    response.headers.update(headers)
    return response


__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "HttpRequest",
    "HttpResponse",
    "MAX_HEADER_BYTES",
    "MAX_REQUEST_LINE_BYTES",
    "ProtocolError",
    "error_response",
    "read_request",
    "write_response",
]
