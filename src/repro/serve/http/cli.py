"""The ``repro-serve`` command: discovery as an HTTP service.

Run with ``python -m repro.serve.http`` (or the ``repro-serve`` console
script where the package is installed)::

    repro-serve --port 8321 --workers 8 --pool-bytes 268435456 \\
                --cache-dir /var/cache/repro

    curl -s -X POST --data-binary @tax.csv \\
         'http://127.0.0.1:8321/v1/relations?name=tax'
    curl -s -X POST -H 'Content-Type: application/json' \\
         -d '{"relation": "tax", "support": 10}' \\
         http://127.0.0.1:8321/v1/discover
    curl -s http://127.0.0.1:8321/metrics

The process wires one :class:`~repro.serve.DiscoveryService` (its worker
thread pool sized by ``--workers``, its session pool bounded by
``--pool-sessions``/``--pool-bytes``, optionally persistent via
``--cache-dir``) behind one :class:`~repro.serve.http.server.HttpServer`.
``SIGTERM``/``SIGINT`` trigger a graceful drain: in-flight requests finish
(bounded by ``--drain-timeout``), the pool spills its warmed sessions into
the cache store, and the process exits 0 — so a rolling restart hands the
next worker a warm substrate instead of a cold start.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.exceptions import ReproError
from repro.obs.cli import (
    add_observability_arguments,
    configure_observability,
    validate_observability,
)
from repro.obs.logs import EventLog
from repro.serve.faults import fault_points_help, resolve_fault_plan
from repro.serve.http.server import HttpServer, ServerConfig
from repro.serve.pool import SessionPool
from repro.serve.service import DiscoveryService


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-serve`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve CFD discovery over HTTP (asyncio, stdlib-only).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8321,
        help="TCP port; 0 picks an ephemeral port (default: 8321)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="discovery worker threads (default: 4)",
    )
    parser.add_argument(
        "--pool-sessions", type=int, default=8,
        help="max pooled profiler sessions (default: 8)",
    )
    parser.add_argument(
        "--pool-bytes", type=int, default=None,
        help="byte budget over the pooled sessions' caches (default: unbounded)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent cache store: admitted sessions warm-start from DIR, "
        "evicted/drained sessions spill back into it",
    )
    parser.add_argument(
        "--store-max-bytes", type=int, default=None,
        help="size budget of the persistent store; every spill that pushes "
        "the store past it triggers cost-aware GC back down to the budget "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--max-in-flight", type=int, default=8,
        help="requests executing concurrently; more queue (default: 8)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=16,
        help="requests allowed to wait for a slot before 503 (default: 16)",
    )
    parser.add_argument(
        "--deadline", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline; 0 disables it (default: 30)",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=32 * 2 ** 20,
        help="request body cap in bytes (default: 32 MiB)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="seconds to wait for in-flight requests on SIGTERM (default: 30)",
    )
    parser.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="inject a deterministic fault, 'point:kind[:key=value,...]' "
        "(repeatable; merged with $REPRO_FAULTS), e.g. "
        "'store.put:torn_write:p=1.0,times=1'; points: "
        + fault_points_help(),
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed of the fault plan's RNG (default: $REPRO_FAULT_SEED or 0)",
    )
    add_observability_arguments(parser)
    return parser


def _validate(args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.max_in_flight < 1:
        parser.error("--max-in-flight must be at least 1")
    if args.max_queue < 0:
        parser.error("--max-queue must be at least 0")
    if args.pool_sessions < 1:
        parser.error("--pool-sessions must be at least 1")
    if args.pool_bytes is not None and args.pool_bytes < 1:
        parser.error("--pool-bytes must be at least 1")
    if args.store_max_bytes is not None and args.store_max_bytes < 0:
        parser.error("--store-max-bytes must be at least 0")
    if args.store_max_bytes is not None and args.cache_dir is None:
        parser.error("--store-max-bytes requires --cache-dir")
    if args.deadline < 0:
        parser.error("--deadline must be at least 0")
    validate_observability(args, parser)


def build_service(args: argparse.Namespace, log: EventLog) -> DiscoveryService:
    """The configured service: pool budgets, optional persistent store.

    A serving store always starts with a shallow fsck sweep: entries left
    torn by a crash mid-write are quarantined before any session can trip
    over them, so a killed-and-restarted worker degrades to a cold cache
    instead of failing loads.
    """
    try:
        faults = resolve_fault_plan(args.fault, args.fault_seed)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    if faults is not None:
        log.event(
            "faults.active",
            seed=faults.seed,
            rules=[rule.spec() for rule in faults.rules()],
        )
    store = None
    if args.cache_dir is not None:
        from repro.serve.store import CacheStore

        store = CacheStore(
            args.cache_dir,
            max_bytes=args.store_max_bytes,
            faults=faults,
            sweep=True,
        )
    pool = SessionPool(
        max_sessions=args.pool_sessions,
        max_bytes=args.pool_bytes,
        store=store,
        faults=faults,
    )
    return DiscoveryService(pool=pool, max_workers=args.workers, faults=faults)


async def serve(
    service: DiscoveryService, config: ServerConfig, log: EventLog
) -> None:
    """Start the server, wire signals to the graceful drain, run until done."""
    server = HttpServer(service, config)
    await server.start()
    loop = asyncio.get_running_loop()

    def request_drain() -> None:
        asyncio.ensure_future(server.drain())

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, request_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without loop signal support (Windows)
    log.event(
        "server.listening",
        address=f"http://{config.host}:{server.port}",
        workers=service.info()["max_workers"],
        max_in_flight=config.max_in_flight,
    )
    await server.wait_stopped()
    log.event("server.stopped")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-serve`` command; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(args, parser)
    log = configure_observability(args, "worker")
    try:
        service = build_service(args, log)
    except ReproError as exc:
        parser.error(str(exc))
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        request_timeout=args.deadline or None,
        max_body_bytes=args.max_body_bytes,
        drain_timeout=args.drain_timeout,
    )
    try:
        asyncio.run(serve(service, config, log))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C fallback
        service.shutdown()
    finally:
        obs.get_tracer().close()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
