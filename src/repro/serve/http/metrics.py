"""Dependency-free Prometheus instrumentation for the HTTP layer.

Three metric primitives (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) with label support and a text renderer emitting the
Prometheus exposition format (version 0.0.4) — no client library required.
:class:`HttpMetrics` bundles the request-level instruments the server
updates on every response and renders them together with the serving
substrate's own counters (:meth:`~repro.serve.DiscoveryService.stats`), so
``GET /metrics`` is one consistent snapshot of both layers:

* ``repro_http_requests_total{method,route,status}`` — responses by route;
* ``repro_http_request_seconds`` — handler latency histogram;
* ``repro_http_in_flight`` — requests currently being handled;
* ``repro_http_admission_rejections_total{reason}`` — 503s by cause;
* ``repro_service_*`` — request/dedup/failure counters and the service's
  request-latency histogram;
* ``repro_pool_*`` — session pool size, hit/miss/eviction/spill counters,
  byte accounting;
* ``repro_store_*`` — persistent store entries/bytes/loads/writes/GC.

All primitives are thread-safe: handler coroutines run on the event loop but
the substrate counters are touched from executor threads, and a scrape may
race both.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.serve.service import LATENCY_BUCKETS

LabelValues = Tuple[str, ...]


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _render_labels(names: Sequence[str], values: Sequence[object]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing metric, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self.label_names, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Gauge(Counter):
    """A metric that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            self._values[key] = float(value)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """A cumulative-bucket histogram (the Prometheus ``le`` convention)."""

    kind = "histogram"

    #: Default request-latency bounds — the service's histogram shape, so
    #: the HTTP and substrate histograms on one /metrics page line up.
    DEFAULT_BUCKETS = LATENCY_BUCKETS

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.bounds = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._buckets: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._counts: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            counts = self._buckets.setdefault(key, [0] * (len(self.bounds) + 1))
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            keys = sorted(self._buckets)
            snapshot = {
                key: (list(self._buckets[key]), self._sums[key], self._counts[key])
                for key in keys
            }
        if not snapshot and not self.label_names:
            snapshot = {(): ([0] * (len(self.bounds) + 1), 0.0, 0)}
        for key, (counts, total, count) in snapshot.items():
            cumulative = 0
            for bound, bucket_count in zip(
                list(self.bounds) + [float("inf")], counts
            ):
                cumulative += bucket_count
                labels = _render_labels(
                    self.label_names + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _render_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{labels} {_format_value(total)}")
            lines.append(f"{self.name}_count{labels} {count}")
        return lines


def render_family(
    name: str, kind: str, help_text: str, value: Optional[float]
) -> List[str]:
    """One unlabelled sample rendered as its own family (``None`` → omitted)."""
    if value is None:
        return []
    return [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} {kind}",
        f"{name} {_format_value(float(value))}",
    ]


class HttpMetrics:
    """The server's instrument bundle plus the substrate-snapshot renderer."""

    def __init__(self) -> None:
        self.requests_total = Counter(
            "repro_http_requests_total",
            "HTTP responses by method, route and status code.",
            ("method", "route", "status"),
        )
        self.request_seconds = Histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds from request read to response written.",
            ("route",),
        )
        self.in_flight = Gauge(
            "repro_http_in_flight", "Requests currently being handled."
        )
        self.admission_rejections_total = Counter(
            "repro_http_admission_rejections_total",
            "Requests refused with 503 by the admission controller.",
            ("reason",),
        )

    def observe(
        self, method: str, route: str, status: int, elapsed: float
    ) -> None:
        """Record one finished response."""
        self.requests_total.inc(method=method, route=route, status=status)
        self.request_seconds.observe(elapsed, route=route)

    # ------------------------------------------------------------------ #
    def render(self, service_stats: Mapping[str, object]) -> str:
        """The full exposition document: HTTP instruments + substrate stats."""
        lines: List[str] = []
        lines += self.requests_total.render()
        lines += self.request_seconds.render()
        lines += self.in_flight.render()
        lines += self.admission_rejections_total.render()
        lines += self._render_service(service_stats)
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_service(stats: Mapping[str, object]) -> List[str]:
        lines: List[str] = []

        def grab(mapping: Mapping, key: str) -> Optional[float]:
            value = mapping.get(key)
            return float(value) if isinstance(value, (int, float)) else None

        for key, kind, help_text in (
            ("requests", "counter", "Requests submitted to the discovery service."),
            ("deduplicated", "counter",
             "Submissions coalesced onto an identical in-flight run."),
            ("completed", "counter", "Discovery runs completed successfully."),
            ("failed", "counter", "Discovery runs that raised."),
            ("cancelled", "counter", "Discovery runs cancelled before starting."),
            ("in_flight", "gauge", "Discovery runs currently in flight."),
        ):
            lines += render_family(
                f"repro_service_{key}", kind, help_text, grab(stats, key)
            )

        latency = stats.get("latency")
        if isinstance(latency, Mapping):
            lines += HttpMetrics._render_service_latency(latency)

        resumes = stats.get("resumes")
        if isinstance(resumes, Mapping):
            lines += render_family(
                "repro_resume_levels_skipped_total",
                "counter",
                "Lattice levels skipped by checkpoint-resumed discovery runs.",
                grab(resumes, "levels_skipped"),
            )
            lines += render_family(
                "repro_resumed_runs_total",
                "counter",
                "Discovery runs that warm-resumed from an engine checkpoint.",
                grab(resumes, "runs"),
            )

        faults = stats.get("faults")
        if isinstance(faults, Mapping):
            lines += HttpMetrics._render_faults(faults)

        pool = stats.get("pool")
        if isinstance(pool, Mapping):
            for key, name, kind, help_text in (
                ("sessions", "sessions", "gauge", "Pooled profiler sessions."),
                ("hits", "hits_total", "counter", "Session pool lookup hits."),
                ("misses", "misses_total", "counter", "Session pool lookup misses."),
                ("evictions", "evictions_total", "counter", "Sessions evicted."),
                ("spilled_entries", "spilled_entries_total", "counter",
                 "Cache entries spilled to the persistent store."),
                ("warm_loaded_entries", "warm_loaded_entries_total", "counter",
                 "Cache entries warm-loaded from the persistent store."),
                ("estimated_bytes", "estimated_bytes", "gauge",
                 "Estimated bytes held by pooled sessions."),
            ):
                lines += render_family(
                    f"repro_pool_{name}", kind, help_text, grab(pool, key)
                )

        store = stats.get("store")
        if isinstance(store, Mapping):
            for key, name, kind, help_text in (
                ("entries", "entries", "gauge", "Entries in the persistent store."),
                ("bytes", "bytes", "gauge", "On-disk bytes of the store."),
                ("writes", "writes_total", "counter", "Store entries written."),
                ("loads", "loads_total", "counter", "Store entries loaded."),
                ("load_failures", "load_failures_total", "counter",
                 "Store loads that failed verification."),
                ("gc_removed", "gc_removed_total", "counter",
                 "Store entries removed by garbage collection."),
                ("quarantined", "quarantined_total", "counter",
                 "Corrupt store entries moved to quarantine."),
            ):
                lines += render_family(
                    f"repro_store_{name}", kind, help_text, grab(store, key)
                )
        return lines

    @staticmethod
    def _render_faults(faults: Mapping[str, object]) -> List[str]:
        """The active fault plan's injected-fault counters, per point/kind."""
        injected = faults.get("injected")
        if not isinstance(injected, Mapping):
            return []
        name = "repro_faults_injected_total"
        lines = [
            f"# HELP {name} Faults injected by the active fault plan.",
            f"# TYPE {name} counter",
        ]
        for key in sorted(injected):
            point, _, kind = str(key).rpartition(":")
            labels = _render_labels(("point", "kind"), (point, kind))
            lines.append(f"{name}{labels} {int(injected[key])}")
        return lines

    @staticmethod
    def _render_service_latency(latency: Mapping[str, object]) -> List[str]:
        """The service's submit→done aggregates as a Prometheus histogram."""
        buckets = latency.get("buckets")
        count = latency.get("count")
        total = latency.get("total_seconds")
        if not isinstance(buckets, Iterable) or count is None:
            return []
        name = "repro_service_request_seconds"
        lines = [
            f"# HELP {name} Submit-to-done seconds of executed discovery runs.",
            f"# TYPE {name} histogram",
        ]
        cumulative = 0
        for bound, bucket_count in buckets:
            cumulative += int(bucket_count)
            rendered = "+Inf" if bound is None else _format_value(float(bound))
            lines.append(f'{name}_bucket{{le="{rendered}"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(float(total or 0.0))}")
        lines.append(f"{name}_count {int(count)}")
        return lines


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HttpMetrics",
    "render_family",
]
