"""Prometheus instrumentation for the HTTP layer.

The metric primitives (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
and the exposition helpers live in :mod:`repro.obs.promfmt` — the one shared
format path — and are re-exported here for compatibility.
:class:`HttpMetrics` bundles the request-level instruments the server
updates on every response and renders them together with the serving
substrate's own counters (:meth:`~repro.serve.DiscoveryService.stats`), so
``GET /metrics`` is one consistent snapshot of both layers:

* ``repro_http_requests_total{method,route,status}`` — responses by route;
* ``repro_http_request_seconds`` — handler latency histogram;
* ``repro_http_in_flight`` — requests currently being handled;
* ``repro_http_admission_rejections_total{reason}`` — 503s by cause;
* ``repro_service_*`` — request/dedup/failure counters and the service's
  request-latency histogram, labelled by executed ``algorithm`` once runs
  have completed (ctane vs fastcfd vs dfd latency, told apart);
* ``repro_pool_*`` — session pool size, hit/miss/eviction/spill counters,
  byte accounting;
* ``repro_store_*`` — persistent store entries/bytes/loads/writes/GC.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.obs.promfmt import (
    Counter,
    Gauge,
    Histogram,
    escape_label_value,
    format_value,
    render_family,
    render_labels,
)

#: Compatibility aliases — the canonical spellings live in ``promfmt``.
_escape = escape_label_value
_format_value = format_value
_render_labels = render_labels


class HttpMetrics:
    """The server's instrument bundle plus the substrate-snapshot renderer."""

    def __init__(self) -> None:
        self.requests_total = Counter(
            "repro_http_requests_total",
            "HTTP responses by method, route and status code.",
            ("method", "route", "status"),
        )
        self.request_seconds = Histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds from request read to response written.",
            ("route",),
        )
        self.in_flight = Gauge(
            "repro_http_in_flight", "Requests currently being handled."
        )
        self.admission_rejections_total = Counter(
            "repro_http_admission_rejections_total",
            "Requests refused with 503 by the admission controller.",
            ("reason",),
        )

    def observe(
        self, method: str, route: str, status: int, elapsed: float
    ) -> None:
        """Record one finished response."""
        self.requests_total.inc(method=method, route=route, status=status)
        self.request_seconds.observe(elapsed, route=route)

    # ------------------------------------------------------------------ #
    def render(self, service_stats: Mapping[str, object]) -> str:
        """The full exposition document: HTTP instruments + substrate stats."""
        lines: List[str] = []
        lines += self.requests_total.render()
        lines += self.request_seconds.render()
        lines += self.in_flight.render()
        lines += self.admission_rejections_total.render()
        lines += self._render_service(service_stats)
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_service(stats: Mapping[str, object]) -> List[str]:
        lines: List[str] = []

        def grab(mapping: Mapping, key: str) -> Optional[float]:
            value = mapping.get(key)
            return float(value) if isinstance(value, (int, float)) else None

        for key, kind, help_text in (
            ("requests", "counter", "Requests submitted to the discovery service."),
            ("deduplicated", "counter",
             "Submissions coalesced onto an identical in-flight run."),
            ("completed", "counter", "Discovery runs completed successfully."),
            ("failed", "counter", "Discovery runs that raised."),
            ("cancelled", "counter", "Discovery runs cancelled before starting."),
            ("in_flight", "gauge", "Discovery runs currently in flight."),
        ):
            lines += render_family(
                f"repro_service_{key}", kind, help_text, grab(stats, key)
            )

        latency = stats.get("latency")
        if isinstance(latency, Mapping):
            lines += HttpMetrics._render_service_latency(latency)

        resumes = stats.get("resumes")
        if isinstance(resumes, Mapping):
            lines += render_family(
                "repro_resume_levels_skipped_total",
                "counter",
                "Lattice levels skipped by checkpoint-resumed discovery runs.",
                grab(resumes, "levels_skipped"),
            )
            lines += render_family(
                "repro_resumed_runs_total",
                "counter",
                "Discovery runs that warm-resumed from an engine checkpoint.",
                grab(resumes, "runs"),
            )

        faults = stats.get("faults")
        if isinstance(faults, Mapping):
            lines += HttpMetrics._render_faults(faults)

        pool = stats.get("pool")
        if isinstance(pool, Mapping):
            for key, name, kind, help_text in (
                ("sessions", "sessions", "gauge", "Pooled profiler sessions."),
                ("hits", "hits_total", "counter", "Session pool lookup hits."),
                ("misses", "misses_total", "counter", "Session pool lookup misses."),
                ("evictions", "evictions_total", "counter", "Sessions evicted."),
                ("spilled_entries", "spilled_entries_total", "counter",
                 "Cache entries spilled to the persistent store."),
                ("warm_loaded_entries", "warm_loaded_entries_total", "counter",
                 "Cache entries warm-loaded from the persistent store."),
                ("estimated_bytes", "estimated_bytes", "gauge",
                 "Estimated bytes held by pooled sessions."),
            ):
                lines += render_family(
                    f"repro_pool_{name}", kind, help_text, grab(pool, key)
                )

        store = stats.get("store")
        if isinstance(store, Mapping):
            for key, name, kind, help_text in (
                ("entries", "entries", "gauge", "Entries in the persistent store."),
                ("bytes", "bytes", "gauge", "On-disk bytes of the store."),
                ("writes", "writes_total", "counter", "Store entries written."),
                ("loads", "loads_total", "counter", "Store entries loaded."),
                ("load_failures", "load_failures_total", "counter",
                 "Store loads that failed verification."),
                ("gc_removed", "gc_removed_total", "counter",
                 "Store entries removed by garbage collection."),
                ("quarantined", "quarantined_total", "counter",
                 "Corrupt store entries moved to quarantine."),
            ):
                lines += render_family(
                    f"repro_store_{name}", kind, help_text, grab(store, key)
                )
        return lines

    @staticmethod
    def _render_faults(faults: Mapping[str, object]) -> List[str]:
        """The active fault plan's injected-fault counters, per point/kind."""
        injected = faults.get("injected")
        if not isinstance(injected, Mapping):
            return []
        name = "repro_faults_injected_total"
        lines = [
            f"# HELP {name} Faults injected by the active fault plan.",
            f"# TYPE {name} counter",
        ]
        for key in sorted(injected):
            point, _, kind = str(key).rpartition(":")
            labels = render_labels(("point", "kind"), (point, kind))
            lines.append(f"{name}{labels} {int(injected[key])}")
        return lines

    @staticmethod
    def _render_histogram_series(
        name: str,
        buckets: Iterable,
        total: float,
        count: int,
        label_names: tuple,
        label_values: tuple,
    ) -> List[str]:
        lines: List[str] = []
        cumulative = 0
        for bound, bucket_count in buckets:
            cumulative += int(bucket_count)
            rendered = "+Inf" if bound is None else format_value(float(bound))
            labels = render_labels(
                label_names + ("le",), label_values + (rendered,)
            )
            lines.append(f"{name}_bucket{labels} {cumulative}")
        labels = render_labels(label_names, label_values)
        lines.append(f"{name}_sum{labels} {format_value(float(total))}")
        lines.append(f"{name}_count{labels} {int(count)}")
        return lines

    @staticmethod
    def _render_service_latency(latency: Mapping[str, object]) -> List[str]:
        """The service's submit→done aggregates as a Prometheus histogram.

        Once runs have executed, the histogram is labelled by the algorithm
        that actually ran (the label sets sum to the service aggregate);
        before any run, an unlabelled zero-series keeps the family present.
        """
        buckets = latency.get("buckets")
        count = latency.get("count")
        total = latency.get("total_seconds")
        if not isinstance(buckets, Iterable) or count is None:
            return []
        name = "repro_service_request_seconds"
        lines = [
            f"# HELP {name} Submit-to-done seconds of executed discovery runs.",
            f"# TYPE {name} histogram",
        ]
        by_algorithm = latency.get("by_algorithm")
        if isinstance(by_algorithm, Mapping) and by_algorithm:
            for algorithm in sorted(by_algorithm):
                series = by_algorithm[algorithm]
                if not isinstance(series, Mapping):
                    continue
                lines += HttpMetrics._render_histogram_series(
                    name,
                    series.get("buckets") or [],
                    float(series.get("total_seconds") or 0.0),
                    int(series.get("count") or 0),
                    ("algorithm",),
                    (str(algorithm),),
                )
            return lines
        lines += HttpMetrics._render_histogram_series(
            name, buckets, float(total or 0.0), int(count), (), ()
        )
        return lines


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HttpMetrics",
    "escape_label_value",
    "format_value",
    "render_family",
    "render_labels",
]
