"""``python -m repro.serve.http`` — the ``repro-serve`` entry point."""

import sys

from repro.serve.http.cli import main

if __name__ == "__main__":
    sys.exit(main())
