"""Deterministic fault injection for chaos drills (``repro.serve.faults``).

A :class:`FaultPlan` is a seeded schedule of failures that the serving
stack *volunteers* to suffer at named injection points.  Every component
that can fail in production — the persistent store, the profiler engine,
the service executor, the HTTP server, the fleet transport — calls
``plan.visit("component.point")`` at its boundary; the plan decides,
deterministically from its seed, whether that visit sleeps, raises,
tears a write, resets a connection, or kills the process.

Design constraints:

- **Dependency-free and deterministic.**  One ``random.Random(seed)``
  drives every probabilistic rule, so a chaos run replays exactly from
  its logged seed.
- **Zero cost when disabled.**  Components hold ``faults=None`` by
  default and guard each hook with ``if self._faults is not None`` — a
  single attribute test on the hot path (measured ≤2% in
  ``bench_perf_suite`` with a plan attached but no matching rules).
- **Native failure surfaces.**  An injected fault materializes as the
  exception the boundary would raise in real life (``CacheStoreError``
  at the store, ``ConnectionResetError`` → ``WorkerUnavailableError`` at
  the fleet transport), so the degradation paths under test are the real
  ones, not chaos-only branches.

Rules are expressed as ``FaultRule`` objects or parsed from compact spec
strings (CLI ``--fault`` flags, ``REPRO_FAULTS`` env var)::

    store.put:error:p=0.2,times=3
    fleet.send:latency:seconds=0.05
    engine.level:kill:after=2,times=1
    store.put:torn_write:p=1.0,times=1

Each spec is ``point:kind[:key=value,...]`` where *point* is an
``fnmatch`` pattern over injection-point names and *kind* is one of
``latency``, ``error``, ``torn_write``, ``reset``, ``kill``.
"""

from __future__ import annotations

import fnmatch
import os
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FAULT_POINT_STORE_PUT",
    "FAULT_POINT_STORE_GET",
    "FAULT_POINT_ENGINE_LEVEL",
    "FAULT_POINT_SERVICE_EXECUTE",
    "FAULT_POINT_FLEET_SEND",
    "FAULT_POINT_FLEET_POLL",
    "fault_points_help",
    "FaultInjected",
    "FaultRule",
    "FaultPlan",
    "parse_fault_spec",
    "plan_from_env",
    "resolve_fault_plan",
    "ENV_FAULTS",
    "ENV_FAULT_SEED",
]

#: Environment variables honoured by :func:`plan_from_env` (and therefore
#: by ``repro-serve`` / ``repro-fleet`` workers spawned in chaos drills).
ENV_FAULTS = "REPRO_FAULTS"
ENV_FAULT_SEED = "REPRO_FAULT_SEED"

#: The injectable failure kinds.
FAULT_KINDS = ("latency", "error", "torn_write", "reset", "kill")

#: The canonical injection points — the **single source of truth** for every
#: ``plan.visit(...)`` call site, both CLIs' ``--fault`` help, the DESIGN.md
#: failure-model table, and the ``repro-lint`` REP003 rule.  A point name
#: that is not in this registry never fires, so adding a hook means adding
#: its constant here first.
FAULT_POINT_STORE_PUT = "store.put"
FAULT_POINT_STORE_GET = "store.get"
FAULT_POINT_ENGINE_LEVEL = "engine.level"
FAULT_POINT_SERVICE_EXECUTE = "service.execute"
FAULT_POINT_FLEET_SEND = "fleet.send"
FAULT_POINT_FLEET_POLL = "fleet.poll"

FAULT_POINTS = (
    FAULT_POINT_STORE_PUT,
    FAULT_POINT_STORE_GET,
    FAULT_POINT_ENGINE_LEVEL,
    FAULT_POINT_SERVICE_EXECUTE,
    FAULT_POINT_FLEET_SEND,
    FAULT_POINT_FLEET_POLL,
)


def fault_points_help() -> str:
    """The canonical injection points, rendered for CLI ``--fault`` help."""
    return ", ".join(FAULT_POINTS)


class FaultInjected(RuntimeError):
    """An exception deliberately raised by a :class:`FaultPlan`.

    Components may catch it at their boundary and re-raise their native
    error type (the store raises ``CacheStoreError``); left uncaught it
    surfaces as a 500 like any other unexpected server-side crash.
    """


@dataclass
class FaultRule:
    """One line of a fault schedule.

    ``point`` is an ``fnmatch`` pattern over injection-point names
    (``store.*`` matches ``store.put`` and ``store.get``).  ``kind``
    picks the failure; ``probability`` gates each matching visit;
    ``after`` skips the first N matching visits; ``times`` caps how many
    faults the rule injects (``None`` = unlimited).  ``seconds`` sizes a
    ``latency`` fault, ``fraction`` sizes a ``torn_write`` (how much of
    the payload survives).
    """

    point: str
    kind: str
    probability: float = 1.0
    times: Optional[int] = None
    after: int = 0
    seconds: float = 0.05
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be within [0, 1]")
        if self.times is not None and self.times < 0:
            raise ValueError("fault times must be >= 0")
        if self.after < 0:
            raise ValueError("fault after must be >= 0")
        if self.seconds < 0:
            raise ValueError("fault seconds must be >= 0")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fault fraction must be within [0, 1]")

    def spec(self) -> str:
        """The compact spec string this rule round-trips to."""
        parts = [f"p={self.probability:g}"]
        if self.times is not None:
            parts.append(f"times={self.times}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.kind == "latency":
            parts.append(f"seconds={self.seconds:g}")
        if self.kind == "torn_write":
            parts.append(f"fraction={self.fraction:g}")
        return f"{self.point}:{self.kind}:{','.join(parts)}"


@dataclass
class _RuleState:
    rule: FaultRule
    seen: int = 0
    injected: int = 0


class FaultPlan:
    """A seeded, thread-safe schedule of injected faults.

    Components call :meth:`visit` at their injection points; the plan
    matches rules in order and applies the first one that fires.  All
    randomness comes from one seeded generator, so identical call
    sequences replay identically.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        *,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        kill: Optional[Callable[[], None]] = None,
    ) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._states = [_RuleState(rule) for rule in rules]
        self._lock = threading.Lock()
        self._sleep = sleep
        self._kill = kill if kill is not None else self._default_kill
        self._injected: Dict[Tuple[str, str], int] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_specs(
        cls, specs: Sequence[str], *, seed: int = 0, **kwargs: object
    ) -> "FaultPlan":
        """Build a plan from ``point:kind:key=value,...`` spec strings."""
        return cls(
            [parse_fault_spec(spec) for spec in specs], seed=seed, **kwargs
        )

    # -- the hook -------------------------------------------------------

    def visit(self, point: str) -> Optional[float]:
        """Apply the first matching armed rule at ``point``.

        Returns ``None`` for no fault or a latency fault (which sleeps
        in place).  For a ``torn_write`` fault returns the surviving
        payload fraction — the caller is responsible for tearing its own
        write and raising its native error.  ``error`` raises
        :class:`FaultInjected`, ``reset`` raises
        :class:`ConnectionResetError`, ``kill`` terminates the process
        with ``os._exit(137)``.
        """
        with self._lock:
            fired: Optional[FaultRule] = None
            for state in self._states:
                rule = state.rule
                if rule.times is not None and state.injected >= rule.times:
                    continue
                if not fnmatch.fnmatchcase(point, rule.point):
                    continue
                state.seen += 1
                if state.seen <= rule.after:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                state.injected += 1
                key = (point, rule.kind)
                self._injected[key] = self._injected.get(key, 0) + 1
                fired = rule
                break
        if fired is None:
            return None
        return self._apply(point, fired)

    def _apply(self, point: str, rule: FaultRule) -> Optional[float]:
        if rule.kind == "latency":
            self._sleep(rule.seconds)
            return None
        if rule.kind == "error":
            raise FaultInjected(f"injected error at {point}")
        if rule.kind == "reset":
            raise ConnectionResetError(f"injected connection reset at {point}")
        if rule.kind == "torn_write":
            return rule.fraction
        # kill
        print(f"fault plan: killing process at {point}", file=sys.stderr, flush=True)
        self._kill()
        return None  # pragma: no cover - unreachable with a real kill

    @staticmethod
    def _default_kill() -> None:  # pragma: no cover - kills the process
        sys.stderr.flush()
        os._exit(137)

    # -- introspection --------------------------------------------------

    def injected(self) -> Dict[Tuple[str, str], int]:
        """``{(point, kind): count}`` of faults injected so far."""
        with self._lock:
            return dict(self._injected)

    def injected_total(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def rules(self) -> List[FaultRule]:
        return [state.rule for state in self._states]

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly snapshot (seed, rules, injected counters)."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [state.rule.spec() for state in self._states],
                "injected": {
                    f"{point}:{kind}": count
                    for (point, kind), count in sorted(self._injected.items())
                },
            }


def parse_fault_spec(spec: str) -> FaultRule:
    """Parse ``point:kind[:key=value,...]`` into a :class:`FaultRule`."""
    parts = spec.split(":", 2)
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise ValueError(
            f"bad fault spec {spec!r}; expected 'point:kind[:key=value,...]'"
        )
    point, kind = parts[0], parts[1]
    kwargs: Dict[str, object] = {}
    if len(parts) == 3 and parts[2]:
        for item in parts[2].split(","):
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault option {item!r} in {spec!r}")
            key, value = item.split("=", 1)
            key = key.strip()
            if key in ("p", "probability"):
                kwargs["probability"] = float(value)
            elif key == "times":
                kwargs["times"] = int(value)
            elif key == "after":
                kwargs["after"] = int(value)
            elif key == "seconds":
                kwargs["seconds"] = float(value)
            elif key == "fraction":
                kwargs["fraction"] = float(value)
            else:
                raise ValueError(f"unknown fault option {key!r} in {spec!r}")
    try:
        return FaultRule(point=point, kind=kind, **kwargs)  # type: ignore[arg-type]
    except ValueError as exc:
        raise ValueError(f"bad fault spec {spec!r}: {exc}") from exc


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS``/``REPRO_FAULT_SEED``, if any.

    ``REPRO_FAULTS`` holds ``;``-separated spec strings.  Returns
    ``None`` when unset or empty, so callers can pass the result
    straight through as their ``faults`` parameter.
    """
    env = environ if environ is not None else os.environ
    raw = env.get(ENV_FAULTS, "").strip()
    if not raw:
        return None
    specs = [item.strip() for item in raw.split(";") if item.strip()]
    if not specs:
        return None
    seed = int(env.get(ENV_FAULT_SEED, "0") or "0")
    return FaultPlan.from_specs(specs, seed=seed)


def resolve_fault_plan(
    specs: Sequence[str] = (),
    seed: Optional[int] = None,
    environ: Optional[Dict[str, str]] = None,
) -> Optional[FaultPlan]:
    """The plan a CLI should run: ``--fault`` flags merged with the env.

    CLI specs come first (they fire before env rules at the same point);
    an explicit ``seed`` (the ``--fault-seed`` flag) beats
    ``REPRO_FAULT_SEED``, which beats 0.  Returns ``None`` when neither
    source names a rule.
    """
    env = environ if environ is not None else os.environ
    raw = env.get(ENV_FAULTS, "").strip()
    merged = [item.strip() for item in specs if item and item.strip()]
    merged.extend(item.strip() for item in raw.split(";") if item.strip())
    if not merged:
        return None
    if seed is None:
        seed = int(env.get(ENV_FAULT_SEED, "0") or "0")
    return FaultPlan.from_specs(merged, seed=int(seed))
