"""The serving layer: many relations, many callers, one process.

The unified API (PR 1) gave every front end one execution path and the
partition substrate (PR 2) made it fast; this package makes it *servable*:

* :func:`~repro.serve.fingerprint.relation_fingerprint` — content digests
  that recognise the same relation across independent objects and callers;
* :class:`~repro.serve.pool.SessionPool` — fingerprint → pooled
  :class:`~repro.api.Profiler` sessions with LRU eviction and byte-budgeted
  memory accounting;
* :class:`~repro.serve.service.DiscoveryService` — the facade that
  deduplicates identical in-flight requests and executes batches
  concurrently over ``concurrent.futures``, with the per-session locking in
  ``Profiler`` guaranteeing each shared structure is built exactly once;
* :class:`~repro.serve.store.CacheStore` — the versioned persistent store
  that lets sessions survive process restarts: pools spill evicted sessions
  into it and warm-start admitted ones from it, so multiple workers share
  one warm substrate (``repro-discover --cache-dir``).

The pool's eviction is cost-aware — the cheapest-to-rebuild session
(observed build cost, LRU tiebreak) goes first.  The CLI's ``repro-discover
--batch``, the experiment runner's pooled sweeps and sampling-based
discovery all route through here; see DESIGN.md for the locking discipline,
the store format and the eviction policy.

The network front end lives in :mod:`repro.serve.http` (imported lazily —
``python -m repro.serve.http`` runs the ``repro-serve`` command): an
asyncio HTTP/1.1 server bridging coroutines onto this thread-pool substrate,
with admission control, per-request deadlines, Prometheus ``/metrics`` and
graceful drain.

Chaos tooling lives in :mod:`repro.serve.faults`: a deterministic, seeded
:class:`~repro.serve.faults.FaultPlan` threaded through every layer above
(``--fault`` flags / ``REPRO_FAULTS``), driving the circuit breakers, the
crash-safe store recovery and the checkpointed discovery runs under test.
"""

from repro.serve.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    parse_fault_spec,
    plan_from_env,
    resolve_fault_plan,
)
from repro.serve.fingerprint import relation_fingerprint
from repro.serve.pool import SessionPool
from repro.serve.service import DiscoveryService, RelationRef
from repro.serve.store import CacheStore, StoreEntry

__all__ = [
    "CacheStore",
    "DiscoveryService",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "RelationRef",
    "SessionPool",
    "StoreEntry",
    "parse_fault_spec",
    "plan_from_env",
    "relation_fingerprint",
    "resolve_fault_plan",
]
